package rootcause

import (
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/metrics"
)

var epoch = time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)

func growthSeries(perSecond float64, n int) []metrics.Point {
	pts := make([]metrics.Point, n)
	for i := range pts {
		pts[i] = metrics.Point{
			T: epoch.Add(time.Duration(i) * 30 * time.Second),
			V: perSecond * 30 * float64(i),
		}
	}
	return pts
}

func flatSeries(v float64, n int) []metrics.Point {
	pts := make([]metrics.Point, n)
	for i := range pts {
		pts[i] = metrics.Point{T: epoch.Add(time.Duration(i) * 30 * time.Second), V: v}
	}
	return pts
}

// fig5Data mirrors the paper's four-component experiment: A and B leak
// equally at high usage, C leaks slower, D never fires.
func fig5Data() []ComponentData {
	return []ComponentData{
		{Name: "A", Consumption: 40e6, Usage: 20000, Series: growthSeries(11000, 120)},
		{Name: "B", Consumption: 39e6, Usage: 19500, Series: growthSeries(10800, 120)},
		{Name: "C", Consumption: 12e6, Usage: 6000, Series: growthSeries(3300, 120)},
		{Name: "D", Consumption: 2e3, Usage: 40, Series: flatSeries(2e3, 120)},
	}
}

func TestPaperMapFig5Ordering(t *testing.T) {
	r := PaperMap{}.Rank("memory", fig5Data())
	want := []string{"A", "B", "C", "D"}
	for i, name := range want {
		if r.Entries[i].Name != name {
			t.Fatalf("rank %d = %s, want %s\n%s", i+1, r.Entries[i].Name, name, r)
		}
	}
	if top, ok := r.Top(); !ok || top.Name != "A" {
		t.Fatalf("Top = %+v", top)
	}
	if r.Position("D") != 4 || r.Position("ghost") != 0 {
		t.Fatalf("positions wrong: D=%d", r.Position("D"))
	}
}

func TestPaperMapZones(t *testing.T) {
	r := PaperMap{}.Rank("memory", fig5Data())
	zones := map[string]Zone{}
	for _, e := range r.Entries {
		zones[e.Name] = e.Zone
	}
	if zones["A"] != ZoneSuspect || zones["B"] != ZoneSuspect {
		t.Fatalf("A/B zones = %v/%v, want suspect", zones["A"], zones["B"])
	}
	if zones["D"] != ZoneQuiet {
		t.Fatalf("D zone = %v, want quiet", zones["D"])
	}
}

// fig7Data mirrors the mixed-size experiment: C leaks 1MB per injection
// and overtakes A (100KB) despite lower usage; B (10KB) trails; D is
// unused.
func fig7Data() []ComponentData {
	return []ComponentData{
		{Name: "A", Consumption: 40e6, Usage: 20000, Series: growthSeries(11000, 120)},
		{Name: "B", Consumption: 4e6, Usage: 19500, Series: growthSeries(1100, 120)},
		{Name: "C", Consumption: 120e6, Usage: 6000, Series: growthSeries(33000, 120)},
		{Name: "D", Consumption: 2e3, Usage: 40, Series: flatSeries(2e3, 120)},
	}
}

func TestPaperMapFig7Ordering(t *testing.T) {
	r := PaperMap{}.Rank("memory", fig7Data())
	want := []string{"C", "A", "B", "D"}
	for i, name := range want {
		if r.Entries[i].Name != name {
			t.Fatalf("rank %d = %s, want %s\n%s", i+1, r.Entries[i].Name, name, r)
		}
	}
}

func TestPaperMapEmptyAndZero(t *testing.T) {
	r := PaperMap{}.Rank("memory", nil)
	if _, ok := r.Top(); ok {
		t.Fatal("empty ranking has a top")
	}
	r = PaperMap{}.Rank("memory", []ComponentData{{Name: "A"}, {Name: "B"}})
	if len(r.Entries) != 2 {
		t.Fatal("zero-data components dropped")
	}
	for _, e := range r.Entries {
		if e.Score != 0 || e.Zone != ZoneQuiet {
			t.Fatalf("zero data scored: %+v", e)
		}
	}
}

func TestPaperMapUsageBreaksTies(t *testing.T) {
	data := []ComponentData{
		{Name: "busy", Consumption: 10e6, Usage: 10000},
		{Name: "idle", Consumption: 10e6, Usage: 10},
	}
	r := PaperMap{}.Rank("memory", data)
	if r.Entries[0].Name != "busy" {
		t.Fatalf("equal consumption: busier should rank first\n%s", r)
	}
}

func TestTrendStrategyGatesFlatComponents(t *testing.T) {
	r := Trend{}.Rank("memory", fig5Data())
	if r.Entries[0].Name != "A" {
		t.Fatalf("trend top = %s", r.Entries[0].Name)
	}
	if pos := r.Position("D"); pos != 4 {
		t.Fatalf("D at %d", pos)
	}
	for _, e := range r.Entries {
		if e.Name == "D" && e.Score != 0 {
			t.Fatalf("flat component scored %v", e.Score)
		}
	}
}

func TestTrendStrategyIgnoresStaticBloat(t *testing.T) {
	// A huge but constant footprint must not outrank a growing one.
	data := []ComponentData{
		{Name: "bloated", Consumption: 500e6, Usage: 100, Series: flatSeries(500e6, 60)},
		{Name: "leaking", Consumption: 5e6, Usage: 100, Series: growthSeries(10000, 60)},
	}
	r := Trend{}.Rank("memory", data)
	if r.Entries[0].Name != "leaking" {
		t.Fatalf("trend ranked static bloat first\n%s", r)
	}
	// The paper map, by contrast, ranks by accumulated consumption —
	// that contrast is the ablation's point.
	pm := PaperMap{}.Rank("memory", data)
	if pm.Entries[0].Name != "bloated" {
		t.Fatalf("paper map should rank accumulated footprint first\n%s", pm)
	}
}

func TestBlackBoxCannotLocalize(t *testing.T) {
	r := BlackBox{}.Rank("memory", fig5Data())
	for _, e := range r.Entries {
		if e.Score != 1 {
			t.Fatalf("black box differentiates: %+v", e)
		}
	}
}

func TestRankingString(t *testing.T) {
	r := PaperMap{}.Rank("memory", fig5Data())
	s := r.String()
	if s == "" || r.Strategy != "paper-map" {
		t.Fatal("ranking string empty")
	}
}

func TestZoneString(t *testing.T) {
	for z, want := range map[Zone]string{
		ZoneQuiet: "quiet", ZoneHighUsage: "high-usage",
		ZoneHighConsume: "high-consumption", ZoneSuspect: "suspect",
		Zone(9): "unknown",
	} {
		if z.String() != want {
			t.Fatalf("Zone(%d) = %q", z, z.String())
		}
	}
}

type keyedArg struct{ id int }

func (k *keyedArg) TraceKey() any { return k }

func TestTraceCollector(t *testing.T) {
	tc := NewTraceCollector(0)
	w := aspect.NewWeaver(nil)
	if err := w.Register(tc.Aspect()); err != nil {
		t.Fatal(err)
	}
	flow := &keyedArg{}
	dao := w.WeaveDepth("dao.X", "Get", func(args ...any) (any, error) { return nil, nil })
	servlet := w.WeaveDepth("svc.A", "Service", func(args ...any) (any, error) {
		return dao(1, flow)
	})
	if _, err := servlet(0, flow); err != nil {
		t.Fatal(err)
	}
	traces := tc.Traces()
	if len(traces) != 1 {
		t.Fatalf("traces = %d", len(traces))
	}
	tr := traces[0]
	if len(tr.Components) != 2 || tr.Components[0] != "svc.A" || tr.Components[1] != "dao.X" {
		t.Fatalf("path = %v", tr.Components)
	}
	if tr.Failed {
		t.Fatal("successful request marked failed")
	}
}

func TestTraceCollectorFailuresAndDedupe(t *testing.T) {
	tc := NewTraceCollector(0)
	w := aspect.NewWeaver(nil)
	if err := w.Register(tc.Aspect()); err != nil {
		t.Fatal(err)
	}
	flow := &keyedArg{}
	boom := func(args ...any) (any, error) { return nil, errFail }
	dao := w.WeaveDepth("dao.X", "Get", func(args ...any) (any, error) { return nil, nil })
	servlet := w.WeaveDepth("svc.A", "Service", func(args ...any) (any, error) {
		dao(1, flow)
		dao(1, flow) // second call dedupes in the trace
		return boom(flow)
	})
	servlet(0, flow)
	tr := tc.Traces()[0]
	if !tr.Failed {
		t.Fatal("failed request not marked")
	}
	if len(tr.Components) != 2 {
		t.Fatalf("dedupe failed: %v", tr.Components)
	}
	tc.Reset()
	if tc.Len() != 0 {
		t.Fatal("Reset kept traces")
	}
}

func TestTraceCollectorCapacity(t *testing.T) {
	tc := NewTraceCollector(5)
	w := aspect.NewWeaver(nil)
	if err := w.Register(tc.Aspect()); err != nil {
		t.Fatal(err)
	}
	fn := w.WeaveDepth("svc.A", "Service", func(args ...any) (any, error) { return nil, nil })
	for i := 0; i < 20; i++ {
		fn(0, &keyedArg{id: i})
	}
	if tc.Len() != 5 {
		t.Fatalf("capacity not enforced: %d", tc.Len())
	}
}

func TestTraceCollectorIgnoresKeylessFlows(t *testing.T) {
	tc := NewTraceCollector(0)
	w := aspect.NewWeaver(nil)
	if err := w.Register(tc.Aspect()); err != nil {
		t.Fatal(err)
	}
	fn := w.WeaveDepth("svc.A", "Service", func(args ...any) (any, error) { return nil, nil })
	fn(0, "not keyed")
	if tc.Len() != 0 {
		t.Fatal("keyless flow produced a trace")
	}
}

var errFail = errorString("injected failure")

type errorString string

func (e errorString) Error() string { return string(e) }

func TestPinpointFindsFaultyComponent(t *testing.T) {
	var traces []Trace
	// svc.B fails half the time; svc.A never fails.
	for i := 0; i < 100; i++ {
		traces = append(traces, Trace{Components: []string{"svc.A", "dao.X"}})
		traces = append(traces, Trace{Components: []string{"svc.B", "dao.X"}, Failed: i%2 == 0})
	}
	r := Pinpoint{}.Analyze(traces)
	if r.Entries[0].Name != "svc.B" {
		t.Fatalf("pinpoint top = %s\n%s", r.Entries[0].Name, r)
	}
}

func TestPinpointCoupledComponentsTie(t *testing.T) {
	// The blind spot from the paper's related work: X and its
	// always-coupled callee Y get identical scores even though only X
	// is faulty.
	var traces []Trace
	for i := 0; i < 100; i++ {
		traces = append(traces, Trace{Components: []string{"svc.X", "svc.Y"}, Failed: i%4 == 0})
	}
	r := Pinpoint{}.Analyze(traces)
	if len(r.Entries) != 2 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	if r.Entries[0].Score != r.Entries[1].Score {
		t.Fatalf("coupled components should tie: %v vs %v",
			r.Entries[0].Score, r.Entries[1].Score)
	}
}

func TestPinpointEmpty(t *testing.T) {
	r := Pinpoint{}.Analyze(nil)
	if len(r.Entries) != 0 {
		t.Fatal("empty traces produced entries")
	}
}

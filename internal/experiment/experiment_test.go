package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/eb"
	"repro/internal/metrics"
	"repro/internal/rootcause"
	"repro/internal/tpcw"
)

// quickCfg runs shortened scenarios with a smaller population so the whole
// suite stays test-friendly; the full-scale runs live in cmd/experiments
// and the benchmarks.
var quickCfg = Config{TimeScale: 0.35, Seed: 42, EBs: 50, Items: 500, Customers: 300}

func TestTableI(t *testing.T) {
	r := TableI(quickCfg)
	if !r.Pass || !strings.Contains(r.Text, "MySQL") {
		t.Fatalf("TableI = %+v", r)
	}
}

func TestFig2(t *testing.T) {
	r := Fig2(quickCfg)
	if !r.Pass {
		t.Fatalf("Fig2 failed:\n%s", r)
	}
	if !strings.Contains(r.Text, "legend") {
		t.Fatal("Fig2 missing map rendering")
	}
}

func TestFig3(t *testing.T) {
	r := Fig3(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("Fig3 failed:\n%s", r)
	}
}

func TestFig4(t *testing.T) {
	r := Fig4(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("Fig4 failed:\n%s", r)
	}
}

func TestFig5(t *testing.T) {
	r := Fig5(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("Fig5 failed:\n%s", r)
	}
}

func TestFig6(t *testing.T) {
	r := Fig6(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("Fig6 failed:\n%s", r)
	}
}

func TestFig7(t *testing.T) {
	r := Fig7(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("Fig7 failed:\n%s", r)
	}
}

func TestE8(t *testing.T) {
	r := E8CPUThreadLeaks(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("E8 failed:\n%s", r)
	}
}

func TestE9(t *testing.T) {
	r := E9PinpointCoupled(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("E9 failed:\n%s", r)
	}
}

func TestE10(t *testing.T) {
	r := E10TimeToFailure(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("E10 failed:\n%s", r)
	}
}

func TestA1(t *testing.T) {
	r := A1MonitoringLevels(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("A1 failed:\n%s", r)
	}
}

func TestA2(t *testing.T) {
	r := A2SizingPolicies(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("A2 failed:\n%s", r)
	}
}

func TestStackInjectErrors(t *testing.T) {
	s, err := NewStack(StackConfig{Seed: 1, Scale: tpcw.Scale{Items: 50, Customers: 20, Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, err := s.InjectLeak("ghost", KB, 10, 1); err == nil {
		t.Fatal("leak into ghost servlet accepted")
	}
}

func TestScalePhases(t *testing.T) {
	in := []eb.Phase{{Duration: time.Hour, EBs: 50}}
	out := scalePhases(in, 0.5)
	if out[0].Duration != 30*time.Minute {
		t.Fatalf("scaled = %v", out[0].Duration)
	}
	// Floor of one minute.
	out = scalePhases(in, 0.0001)
	if out[0].Duration != time.Minute {
		t.Fatalf("floored = %v", out[0].Duration)
	}
	// Factor 1 and 0 return input as-is.
	if got := scalePhases(in, 1); got[0] != in[0] {
		t.Fatal("identity scale changed phases")
	}
}

func TestRenderHelpers(t *testing.T) {
	tb := NewTable("a", "b").Row(1, 2.5).Row("x", "y")
	s := tb.String()
	if !strings.Contains(s, "2.50") || !strings.Contains(s, "x") {
		t.Fatalf("table = %s", s)
	}
	if sparkline(nil) != "" {
		t.Fatal("empty sparkline not empty")
	}
	if got := sparkline([]float64{0, 1}); len([]rune(got)) != 2 {
		t.Fatalf("sparkline = %q", got)
	}
	if fmtBytes(512) != "512B" || fmtBytes(2048) != "2.0KB" ||
		!strings.HasSuffix(fmtBytes(3*MB), "MB") || !strings.HasSuffix(fmtBytes(2<<30), "GB") {
		t.Fatal("fmtBytes wrong")
	}
	r := rootcause.PaperMap{}.Rank("memory", []rootcause.ComponentData{
		{Name: "svc.A", Consumption: 100, Usage: 10},
		{Name: "svc.B", Consumption: 10, Usage: 100},
	})
	m := quadrantMap(r, map[string]string{"svc.A": "A", "svc.B": "B"})
	if !strings.Contains(m, "legend") || !strings.Contains(m, "A=svc.A") {
		t.Fatalf("map = %s", m)
	}
	if got := downsample(nil, time.Second); got != nil {
		t.Fatal("downsample(nil) not nil")
	}
	pts := []metrics.Point{{T: time.Now(), V: 1}}
	if got := downsample(pts, time.Minute); len(got) != 1 {
		t.Fatalf("downsample single = %v", got)
	}
}

func TestResultRendering(t *testing.T) {
	r := Result{ID: "X", Title: "t", Expected: "e", Observed: "o", Pass: true, Text: "body"}
	if !strings.Contains(r.String(), "REPRODUCED") || !strings.Contains(r.String(), "body") {
		t.Fatal("Result.String incomplete")
	}
	r.Pass = false
	if !strings.Contains(r.Verdict(), "NOT REPRODUCED") {
		t.Fatal("failed verdict wrong")
	}
}

func TestE11(t *testing.T) {
	r := E11StrategyComparison(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("E11 failed:\n%s", r)
	}
}

func TestA3(t *testing.T) {
	r := A3MixSensitivity(quickCfg)
	t.Log(r.Verdict())
	if !r.Pass {
		t.Fatalf("A3 failed:\n%s", r)
	}
}

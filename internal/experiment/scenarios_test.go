package experiment

import (
	"strings"
	"testing"
)

// scenarioCfg shrinks the hour-long scenarios like benchCfg does for the
// figures; the seed is fixed so the verdicts are regression checks.
var scenarioCfg = Config{TimeScale: 0.35, Seed: 42, EBs: 50, Items: 500, Customers: 300}

// TestS1WorkloadShiftRaisesNoAlarm is the false-positive half of the
// detection contract: the request mix shifts twice (plus a population
// step) with no aging fault, and the run must end with zero detector
// alarms while the shift guard confirms it actually saw the mix move.
func TestS1WorkloadShiftRaisesNoAlarm(t *testing.T) {
	res := S1WorkloadShift(scenarioCfg)
	if !res.Pass {
		t.Fatalf("workload shift scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "0 alarms") {
		t.Fatalf("expected zero alarms, observed: %s", res.Observed)
	}
}

// TestS2TrueLeakAlarmsOnline is the true-positive half: a real leak must
// be flagged online, with the correct suspect, within the bounded number
// of sampling rounds the scenario encodes.
func TestS2TrueLeakAlarmsOnline(t *testing.T) {
	res := S2OnlineLeakDetection(scenarioCfg)
	if !res.Pass {
		t.Fatalf("online leak detection failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "suspect correct: true") {
		t.Fatalf("wrong suspect: %s", res.Observed)
	}
}

func TestS3DiurnalCycleRaisesNoAlarm(t *testing.T) {
	res := S3DiurnalCycle(scenarioCfg)
	if !res.Pass {
		t.Fatalf("diurnal scenario failed:\n%s", res)
	}
}

func TestS4BurstWithLeakStillDetects(t *testing.T) {
	res := S4BurstWithLeak(scenarioCfg)
	if !res.Pass {
		t.Fatalf("burst scenario failed:\n%s", res)
	}
}

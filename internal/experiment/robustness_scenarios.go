package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eb"
	"repro/internal/faultinject"
	"repro/internal/jmx"
	"repro/internal/rejuv"
	"repro/internal/sim"
)

// The robustness scenarios (S20-S22) turn the monitor on itself: the
// aging-RCA plane must survive its own failures. S20 kills the
// aggregator mid-leak and promotes the warm standby from the last
// shipped snapshot generation — the verdict must carry through the
// restore with bounded extra latency. S21 kills it at the worst moment,
// while a node is mid-drain, and the promoted controller must reconcile
// the orphaned actuation without ever double-rebooting. S22 floods the
// ingest surface with a phantom-publisher round storm — the admission
// gate must shed and count, and overload must degrade coverage, never
// correctness.

// standbyScenarioStack assembles an N-node cluster with the warm
// standby armed (and the rejuvenation controller, when rejuvCfg is
// non-nil), plus cluster-alarm and actuation logs.
func standbyScenarioStack(cfg Config, nodes int, rejuvCfg *rejuv.Config) (*ClusterStack, *alarmLog, *alarmLog, error) {
	cs, err := NewClusterStack(ClusterConfig{
		Nodes:   nodes,
		Seed:    cfg.Seed,
		Scale:   scenarioScale(cfg),
		Mix:     eb.Shopping,
		Detect:  scenarioDetectConfig(),
		Policy:  cluster.RoundRobin,
		Rejuv:   rejuvCfg,
		Standby: true,
	})
	if err != nil {
		return nil, nil, nil, err
	}
	alarms, actions := &alarmLog{}, &alarmLog{}
	cs.Server.AddListener(func(n jmx.Notification) {
		switch n.Type {
		case cluster.NotifClusterAlarm:
			alarms.events = append(alarms.events, n.Message)
		case rejuv.NotifRejuvAction:
			actions.events = append(actions.events, n.Message)
		}
	})
	return cs, alarms, actions, nil
}

// S20KillAggregatorMidLeak is the monitor-death litmus: the S5 topology
// (three balanced nodes, the paper's 100KB/N=100 leak in A on node2),
// but the aggregator is killed mid-detection — before any verdict — and
// the warm standby is promoted from the last shipped generation. The
// restored detector banks must carry their trend history through the
// failover: the verdict still names (node2, A), raised by the promoted
// plane, within the normal epoch bound plus a small failover allowance,
// with the healthy replicas clean and zero dropped requests.
func S20KillAggregatorMidLeak(cfg Config) Result {
	cfg = cfg.withDefaults()
	cs, log, _, err := standbyScenarioStack(cfg, 3, nil)
	if err != nil {
		return errorResult("S20", err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S20", err)
	}

	// Kill the active mid-epoch-7, after the leak's trend is in the
	// shipped detector state but before the earliest possible verdict
	// (MinSamples+Consecutive epochs in).
	var failErr error
	var failEpoch, shippedGens int64
	failedOver := false
	cs.Engine.Schedule(cs.Engine.Now().Add(13*cs.sampleInterval/2), func(time.Time) {
		failedOver = true
		failEpoch = cs.Aggregator.Epoch()
		shippedGens = cs.shipper.Shipped()
		failErr = cs.FailOver()
	})

	total := scaleDuration(time.Hour, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S20", err)
	}
	if failErr != nil {
		return errorResult("S20", failErr)
	}

	rep := cs.Aggregator.Report(core.ResourceMemory)
	var top cluster.ClusterVerdict
	var ok bool
	if rep != nil {
		top, ok = rep.Top()
	}
	// The failover window loses at most the partial epoch in flight;
	// allow a small allowance on top of the normal detection bound.
	bound := clusterEpochBound() + 4
	pairOK := ok && top.Pair() == "node2/"+ComponentA && !top.ClusterWide
	continuity := ok && top.FirstEpoch > failEpoch // raised by the promoted plane
	inTime := ok && top.FirstEpoch > 0 && top.FirstEpoch <= bound
	healthyClean := true
	for _, n := range []string{"node1", "node3"} {
		if nr := cs.Aggregator.NodeReport(n, core.ResourceMemory); nr == nil || len(nr.Alarms()) > 0 {
			healthyClean = false
		}
	}
	failed := cs.Driver.Failed()
	pass := failedOver && shippedGens >= 1 && pairOK && continuity && inTime &&
		healthyClean && failed == 0
	observed := fmt.Sprintf("failover at epoch %d after %d shipped generations (%d rounds lost in the window); top verdict %s at epoch %d (bound %d), healthy replicas clean: %v, %d failed requests, %d notifications",
		failEpoch, shippedGens, cs.lostRounds, pairLabel(top, ok), top.FirstEpoch, bound, healthyClean, failed, len(log.raised()))
	return Result{
		ID:       "S20",
		Title:    "Robustness — aggregator killed mid-leak, standby promoted from snapshot",
		Expected: fmt.Sprintf("the promoted plane's verdict names (node2, %s) within %d epochs despite the mid-detection failover; zero dropped requests", ComponentA, bound),
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep),
		Accuracy: &Accuracy{
			Truth:     []string{"node2/" + ComponentA},
			Flagged:   flaggedPairs(cs),
			TTDRounds: top.FirstEpoch, // injected at epoch 0
		},
	}
}

// S21FailoverMidDrain kills the monitoring plane at its most dangerous
// instant: node2 is draining when the aggregator and controller die.
// The promoted controller restores mid-cycle, reconciles the orphaned
// drain (re-asserted, never restarted) and completes the cycle: exactly
// one micro-reboot, a full drain/reboot/probation/re-admit chain across
// the failover, untouched bystanders and zero dropped requests.
func S21FailoverMidDrain(cfg Config) Result {
	cfg = cfg.withDefaults()
	rc := scenarioRejuvConfig()
	cs, _, actions, err := standbyScenarioStack(cfg, 3, rc)
	if err != nil {
		return errorResult("S21", err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S21", err)
	}

	// Poll at half the epoch cadence: the drain window is DrainEpochs
	// wide, so the kill always lands inside it.
	var failErr error
	failedOver := false
	stopPoll := cs.Engine.Every(cs.sampleInterval/2, func(time.Time) {
		if failedOver || cs.Rejuv.NodeState("node2") != rejuv.Draining {
			return
		}
		failedOver = true
		failErr = cs.FailOver()
	})

	total := scaleDuration(90*time.Minute, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	stopPoll()
	if err := cs.Sync(); err != nil {
		return errorResult("S21", err)
	}
	if failErr != nil {
		return errorResult("S21", failErr)
	}
	cs.FlushNotifications()

	// The restored controller carries the pre-failover history, so the
	// full cycle is visible in one place even though two controller
	// instances lived it.
	hist := cs.Rejuv.History()
	st := cs.Rejuv.Stats()
	chain, cycled := rejuvCycle(hist, "node2")
	rebooted := cs.Node("node2").Framework.RejuvenationCount()
	failed := cs.Driver.Failed()
	resumed := false
	for _, msg := range actions.events {
		if strings.Contains(msg, "after failover") {
			resumed = true
		}
	}
	bystandersClean := cs.Node("node1").Framework.RejuvenationCount() == 0 &&
		cs.Node("node3").Framework.RejuvenationCount() == 0
	for _, ev := range hist {
		if ev.Node != "node2" {
			bystandersClean = false
		}
	}

	var ttd, recovery int64
	if cycled {
		ttd = chain[0].Epoch - int64(rc.HoldDownEpochs)
		recovery = chain[3].Epoch
	}
	pass := failedOver && cycled && rebooted == 1 && resumed && bystandersClean &&
		st.ControlLost == 0 && failed == 0
	observed := fmt.Sprintf("failover during drain: %v (drain re-asserted: %v); node2 micro-reboots: %d (want exactly 1), full cycle: %v, control losses: %d, healthy replicas untouched: %v, %d failed requests",
		failedOver, resumed, rebooted, cycled, st.ControlLost, bystandersClean, failed)
	return Result{
		ID:       "S21",
		Title:    "Robustness — failover while a node is mid-drain (orphaned actuation reconciled)",
		Expected: "the promoted controller resumes the orphaned drain and completes the cycle with exactly one micro-reboot; bystanders untouched, zero dropped requests",
		Observed: observed,
		Pass:     pass,
		Text:     rejuvHistoryText(hist),
		Accuracy: &Accuracy{
			Truth:          []string{"node2/" + ComponentA},
			Flagged:        actuatedPairs(hist),
			TTDRounds:      ttd,
			RecoveryEpochs: recovery,
		},
	}
}

// S22RoundStormOverload floods the aggregator's ingest surface with a
// phantom-publisher round storm between two load phases, against a
// deliberately tiny admission bound. The contract is the overload
// tentpole's: every offered round is either ingested or shed — exact
// accounting, nothing unaccounted —, the phantoms are evicted once the
// storm passes, and the sick replica's verdict re-emerges untouched:
// overload degrades coverage, never correctness.
func S22RoundStormOverload(cfg Config) Result {
	cfg = cfg.withDefaults()
	cs, log, err := func() (*ClusterStack, *alarmLog, error) {
		cs, err := NewClusterStack(ClusterConfig{
			Nodes:          3,
			Seed:           cfg.Seed,
			Scale:          scenarioScale(cfg),
			Mix:            eb.Shopping,
			Detect:         scenarioDetectConfig(),
			Policy:         cluster.RoundRobin,
			IngestLanes:    1,
			LaneQueueDepth: 2,
			StaleEpochs:    2,
		})
		if err != nil {
			return nil, nil, err
		}
		log := &alarmLog{}
		cs.Server.AddListener(func(n jmx.Notification) {
			if n.Type == cluster.NotifClusterAlarm {
				log.events = append(log.events, n.Message)
			}
		})
		return cs, log, nil
	}()
	if err != nil {
		return errorResult("S22", err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S22", err)
	}

	// Phase A: the verdict establishes under clean load. The raise is
	// asserted on the alarm stream, not the final report — at full
	// TimeScale the saturating leak's verdict legitimately clears and
	// re-raises, so "raised at this exact instant" is not the contract.
	phase := scaleDuration(time.Hour, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: phase, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S22", err)
	}
	established := false
	for _, msg := range log.raised() {
		if strings.Contains(msg, "node2") {
			established = true
		}
	}
	var ttd int64
	if rep := cs.Aggregator.Report(core.ResourceMemory); rep != nil {
		if top, ok := rep.Top(); ok && top.Pair() == "node2/"+ComponentA {
			ttd = top.FirstEpoch // injected at epoch 0
		}
	}
	preFlagged := flaggedPairs(cs)
	preRaises := len(log.events)

	// The storm: 16 phantom publishers hammer the single depth-2 lane
	// concurrently. Whatever the interleaving sheds, the accounting must
	// be exact — offered = ingested + shed.
	preTotal, preShed := cs.Aggregator.TotalRounds(), cs.Aggregator.ShedRounds()
	base := cs.Engine.Now()
	storm := &faultinject.RoundStorm[cluster.Round]{
		Publishers: 16,
		Rounds:     12,
		Seed:       cfg.Seed,
		Make: func(_, p, i int, _ *sim.Stream) cluster.Round {
			seq := int64(i + 1)
			return cluster.Round{
				Node: fmt.Sprintf("phantom%02d", p),
				Seq:  seq,
				Time: base.Add(time.Duration(seq) * 30 * time.Second),
				Samples: []core.ComponentSample{{
					Component: "phantom", Size: 1000, SizeOK: true,
					Usage: 100 * seq, CPUSeconds: 0.1 * float64(seq), Threads: 2,
				}},
			}
		},
	}
	offered := storm.Fire(cs.Aggregator)
	ingested := cs.Aggregator.TotalRounds() - preTotal
	shed := cs.Aggregator.ShedRounds() - preShed
	accounted := ingested+shed == offered

	// Phase B: load resumes. The stale phantoms evict (the storm's
	// seq-driven epoch ratchet may even evict the idle real nodes — they
	// must rejoin), and the sick replica must be re-flagged.
	cs.Driver.Run([]eb.Phase{{Duration: scaleDuration(40*time.Minute, cfg.TimeScale), EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S22", err)
	}

	// The post-storm contract on the alarm stream: node2 is re-flagged
	// after the storm, and no raise — before or after — ever names
	// anything but the sick replica.
	reFlagged, falseAlarm := false, false
	for i, msg := range log.events {
		if strings.Contains(msg, "clears") || strings.Contains(msg, "cleared") {
			continue
		}
		if !strings.Contains(msg, "node2") || !strings.Contains(msg, ComponentA) {
			falseAlarm = true
		} else if i >= preRaises {
			reFlagged = true
		}
	}
	phantomsGone := true
	for _, s := range cs.Aggregator.Nodes() {
		if s.Active && strings.HasPrefix(s.Node, "phantom") {
			phantomsGone = false
		}
	}
	healthyClean := true
	for _, n := range []string{"node1", "node3"} {
		if nr := cs.Aggregator.NodeReport(n, core.ResourceMemory); nr == nil || len(nr.Alarms()) > 0 {
			healthyClean = false
		}
	}
	failed := cs.Driver.Failed()
	rep := cs.Aggregator.Report(core.ResourceMemory)
	flagged := map[string]bool{}
	for _, p := range preFlagged {
		flagged[p] = true
	}
	for _, p := range flaggedPairs(cs) {
		flagged[p] = true
	}
	pass := established && accounted && reFlagged && !falseAlarm && phantomsGone &&
		healthyClean && failed == 0
	observed := fmt.Sprintf("storm offered %d rounds: %d ingested + %d shed (accounted: %v, %d notifications dropped at the cap); phantoms evicted: %v; node2 flagged before: %v and re-flagged after: %v, false alarms: %v, healthy replicas clean: %v, %d failed requests",
		offered, ingested, shed, accounted, cs.Aggregator.DroppedNotifications(),
		phantomsGone, established, reFlagged, falseAlarm, healthyClean, failed)
	return Result{
		ID:       "S22",
		Title:    "Robustness — phantom round storm against the ingest admission gate",
		Expected: "every stormed round is ingested or shed (exact accounting), phantoms evict once stale, and the (node2, A) verdict survives the overload",
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep) + strings.Join(log.raised(), "\n"),
		Accuracy: &Accuracy{
			Truth:     []string{"node2/" + ComponentA},
			Flagged:   sortedSet(flagged),
			TTDRounds: ttd,
		},
	}
}

// Package experiment contains one runner per table and figure of the
// paper's evaluation (plus the extension and ablation studies listed in
// DESIGN.md). Each runner assembles the full system — TPC-W over the
// servlet container, emulated browsers, the monitoring framework — runs a
// deterministic virtual-time scenario, and reports the observed result
// against the paper's expectation.
package experiment

import (
	"fmt"
	"time"

	"repro/internal/aspect"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/faultinject"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
	"repro/internal/rootcause"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

// StackConfig sizes one experiment system.
type StackConfig struct {
	// Seed drives every random stream in the stack.
	Seed uint64
	// Scale sizes the TPC-W database.
	Scale tpcw.Scale
	// Monitored attaches the monitoring framework (AC + agents +
	// manager with sampling).
	Monitored bool
	// CollectTraces attaches the Pinpoint trace collector.
	CollectTraces bool
	// HeapBytes sizes the simulated JVM heap (1 GB default, as the
	// paper's Tomcat).
	HeapBytes int64
	// SampleInterval is the manager sampling period (default 30s).
	SampleInterval time.Duration
	// Mix is the EB workload mix (Shopping in all paper experiments).
	Mix eb.Mix
	// Detect attaches the streaming aging detectors to the manager's
	// sampling rounds (requires Monitored).
	Detect bool
	// DetectConfig tunes the detectors (defaults per detect.Config).
	DetectConfig detect.Config
}

// Stack is one fully assembled system under test.
type Stack struct {
	Engine    *sim.Engine
	Weaver    *aspect.Weaver
	DB        *sqldb.DB
	App       *tpcw.App
	Heap      *jvmheap.Heap
	Container *servlet.Container
	Framework *core.Framework    // nil when not monitored
	Detectors *core.DetectorBank // nil unless cfg.Detect
	Driver    *eb.Driver
	Traces    *rootcause.TraceCollector // nil unless collecting

	stopSampling func()
}

// NewStack builds and starts a system.
func NewStack(cfg StackConfig) (*Stack, error) {
	if cfg.Detect && !cfg.Monitored {
		return nil, fmt.Errorf("experiment: StackConfig.Detect requires Monitored (detectors ride the manager's sampling rounds)")
	}
	if cfg.HeapBytes <= 0 {
		cfg.HeapBytes = jvmheap.DefaultCapacity
	}
	if cfg.Scale.Seed == 0 {
		cfg.Scale.Seed = cfg.Seed + 1
	}
	engine := sim.NewEngine()
	weaver := aspect.NewWeaver(engine.Clock())
	db := sqldb.NewDB()
	app, err := tpcw.NewApp(db, weaver, engine.Clock(), cfg.Scale)
	if err != nil {
		return nil, err
	}
	heap := jvmheap.New(cfg.HeapBytes, engine.Clock())
	container := servlet.NewContainer(engine, weaver, db, heap, servlet.Config{})
	if err := app.DeployAll(container); err != nil {
		return nil, err
	}
	if err := container.Start(); err != nil {
		return nil, err
	}
	s := &Stack{
		Engine:    engine,
		Weaver:    weaver,
		DB:        db,
		App:       app,
		Heap:      heap,
		Container: container,
	}
	if cfg.Monitored {
		f, err := core.New(core.Options{
			Weaver:         weaver,
			Clock:          engine.Clock(),
			Heap:           heap,
			SampleInterval: cfg.SampleInterval,
		})
		if err != nil {
			return nil, err
		}
		for _, name := range tpcw.Interactions {
			servletObj, _ := app.Servlet(name)
			if err := f.InstrumentComponent(name, servletObj); err != nil {
				return nil, err
			}
		}
		s.Framework = f
		if cfg.Detect {
			bank, err := f.AttachDetectors(cfg.DetectConfig)
			if err != nil {
				return nil, err
			}
			s.Detectors = bank
		}
		s.stopSampling = f.StartSampling(engine)
	}
	if cfg.CollectTraces {
		s.Traces = rootcause.NewTraceCollector(0)
		if err := weaver.Register(s.Traces.Aspect()); err != nil {
			return nil, err
		}
	}
	s.Driver = eb.NewDriver(engine, container, eb.Config{
		Mix:       cfg.Mix,
		Seed:      cfg.Seed,
		Items:     cfg.Scale.Items,
		Customers: cfg.Scale.Customers,
	})
	return s, nil
}

// InjectLeak arms the paper's memory-leak error in a component and
// returns the injector for inspection.
func (s *Stack) InjectLeak(component string, size, n int, seed uint64) (*faultinject.MemoryLeak, error) {
	retainer, err := s.servletRetainer(component)
	if err != nil {
		return nil, err
	}
	leak := &faultinject.MemoryLeak{
		Component: component,
		Target:    retainer,
		Size:      size,
		N:         n,
		Heap:      s.Heap,
		Seed:      seed,
	}
	if err := s.Weaver.Register(leak.Aspect()); err != nil {
		return nil, err
	}
	return leak, nil
}

// servletRetainer resolves a component's servlet as an injection target.
func (s *Stack) servletRetainer(component string) (faultinject.Retainer, error) {
	target, ok := s.App.Servlet(component)
	if !ok {
		return nil, fmt.Errorf("experiment: no servlet %q", component)
	}
	retainer, ok := target.(faultinject.Retainer)
	if !ok {
		return nil, fmt.Errorf("experiment: servlet %q is not injectable", component)
	}
	return retainer, nil
}

// handleAgent resolves the handle agent the handle-based injectors
// report to (monitored stacks only).
func (s *Stack) handleAgent() (*monitor.HandleAgent, error) {
	if s.Framework == nil {
		return nil, fmt.Errorf("experiment: handle injection needs a monitored stack")
	}
	return s.Framework.HandleAgent(), nil
}

// InjectPoolExhaustion arms connection-pool exhaustion in a component:
// leaked pool handles on the handle agent plus growing queueing wait.
func (s *Stack) InjectPoolExhaustion(component string, n int, perHandleWait time.Duration, seed uint64) (*faultinject.PoolExhaustion, error) {
	agent, err := s.handleAgent()
	if err != nil {
		return nil, err
	}
	inj := &faultinject.PoolExhaustion{
		Component:     component,
		N:             n,
		PerHandleWait: perHandleWait,
		Agent:         agent,
		Seed:          seed,
	}
	if err := s.Weaver.Register(inj.Aspect()); err != nil {
		return nil, err
	}
	return inj, nil
}

// InjectHandleLeak arms a file-descriptor/session-handle leak in a
// component.
func (s *Stack) InjectHandleLeak(component string, n int, seed uint64) (*faultinject.HandleLeak, error) {
	agent, err := s.handleAgent()
	if err != nil {
		return nil, err
	}
	inj := &faultinject.HandleLeak{
		Component: component,
		N:         n,
		Agent:     agent,
		Heap:      s.Heap,
		Seed:      seed,
	}
	if err := s.Weaver.Register(inj.Aspect()); err != nil {
		return nil, err
	}
	return inj, nil
}

// InjectLockContention arms contention aging in a component: latency
// creeps one step per growth executions with no resource growth.
func (s *Stack) InjectLockContention(component string, step time.Duration, growth int, jitter time.Duration, seed uint64) (*faultinject.LockContention, error) {
	inj := &faultinject.LockContention{
		Component: component,
		Step:      step,
		Growth:    growth,
		Jitter:    jitter,
		Seed:      seed,
	}
	if err := s.Weaver.Register(inj.Aspect()); err != nil {
		return nil, err
	}
	return inj, nil
}

// InjectFragmentationBloat arms fragmentation-style slow bloat in a
// component: jitter-sized fragments retained every [0,N] requests.
func (s *Stack) InjectFragmentationBloat(component string, base, n int, seed uint64) (*faultinject.FragmentationBloat, error) {
	retainer, err := s.servletRetainer(component)
	if err != nil {
		return nil, err
	}
	inj := &faultinject.FragmentationBloat{
		Component: component,
		Target:    retainer,
		Base:      base,
		N:         n,
		Heap:      s.Heap,
		Seed:      seed,
	}
	if err := s.Weaver.Register(inj.Aspect()); err != nil {
		return nil, err
	}
	return inj, nil
}

// InjectStaleCacheDecay arms cache-decay aging in a component: the miss
// probability climbs to 1 over decay requests, each miss costing CPU.
func (s *Stack) InjectStaleCacheDecay(component string, missCost time.Duration, decay int, seed uint64) (*faultinject.StaleCacheDecay, error) {
	inj := &faultinject.StaleCacheDecay{
		Component: component,
		MissCost:  missCost,
		Decay:     decay,
		Seed:      seed,
	}
	if err := s.Weaver.Register(inj.Aspect()); err != nil {
		return nil, err
	}
	return inj, nil
}

// Close stops background sampling.
func (s *Stack) Close() {
	if s.stopSampling != nil {
		s.stopSampling()
	}
	s.Container.Stop()
}

// scalePhases multiplies every phase duration by factor (factor <= 0
// means 1), letting benchmarks run shortened versions of the paper's
// one-hour scenarios while cmd/experiments runs them at full length.
func scalePhases(phases []eb.Phase, factor float64) []eb.Phase {
	if factor <= 0 || factor == 1 {
		return phases
	}
	out := make([]eb.Phase, len(phases))
	for i, p := range phases {
		d := time.Duration(float64(p.Duration) * factor)
		if d < time.Minute {
			d = time.Minute
		}
		out[i] = eb.Phase{Duration: d, EBs: p.EBs}
	}
	return out
}

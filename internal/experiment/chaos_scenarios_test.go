package experiment

import (
	"strings"
	"testing"
)

// The chaos-catalog scenario tests pin the litmus contract at the quick
// scale: a verified steady phase (zero pre-injection alarms), a pinned
// verdict on the right indicator stream, and silence on the streams the
// fault must not touch. The full-scale runs live in
// TestChaosScenariosFullScale below.

func TestS9PoolExhaustionNamesAOnHandles(t *testing.T) {
	res := S9PoolExhaustion(scenarioCfg)
	if !res.Pass {
		t.Fatalf("pool-exhaustion scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "names "+ComponentA) {
		t.Fatalf("handle verdict does not name %s: %s", ComponentA, res.Observed)
	}
}

func TestS10HandleLeakNamesBOnHandles(t *testing.T) {
	res := S10HandleLeak(scenarioCfg)
	if !res.Pass {
		t.Fatalf("handle-leak scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "names "+ComponentB) {
		t.Fatalf("handle verdict does not name %s: %s", ComponentB, res.Observed)
	}
}

func TestS11LockContentionIsLatencyOnly(t *testing.T) {
	res := S11LockContention(scenarioCfg)
	if !res.Pass {
		t.Fatalf("lock-contention scenario failed:\n%s", res)
	}
	// The litmus half that matters most: every other stream stayed quiet.
	if !strings.Contains(res.Observed, "quiet streams clean: true") {
		t.Fatalf("latency-only fault disturbed another stream: %s", res.Observed)
	}
}

func TestS12FragmentationBloatNamesBOnMemory(t *testing.T) {
	res := S12FragmentationBloat(scenarioCfg)
	if !res.Pass {
		t.Fatalf("fragmentation-bloat scenario failed:\n%s", res)
	}
}

func TestS13StaleCacheDecayNamesAOnCPU(t *testing.T) {
	res := S13StaleCacheDecay(scenarioCfg)
	if !res.Pass {
		t.Fatalf("stale-cache-decay scenario failed:\n%s", res)
	}
}

func TestS14NodeKillRaisesNoAlarm(t *testing.T) {
	res := S14NodeKill(scenarioCfg)
	if !res.Pass {
		t.Fatalf("node-kill scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "0 alarms") {
		t.Fatalf("expected zero alarms: %s", res.Observed)
	}
}

func TestS15TransportPartitionEvictsAndRecovers(t *testing.T) {
	res := S15TransportPartition(scenarioCfg)
	if !res.Pass {
		t.Fatalf("transport-partition scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "evicted during partition: true") ||
		!strings.Contains(res.Observed, "rejoined after heal: true") {
		t.Fatalf("partition detection/recovery not observed: %s", res.Observed)
	}
}

func TestS16ClockSkewStillPinsNodeAndComponent(t *testing.T) {
	res := S16ClockSkew(scenarioCfg)
	if !res.Pass {
		t.Fatalf("clock-skew scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "node1/"+ComponentA) {
		t.Fatalf("verdict does not pin (node1, %s): %s", ComponentA, res.Observed)
	}
}

// TestChaosScenariosFullScale runs the whole catalog at the paper's full
// one-hour TimeScale — the acceptance contract requires both scales to
// hold. Skipped under -short like the cluster full-scale run.
func TestChaosScenariosFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale chaos scenarios skipped with -short")
	}
	cfg := scenarioCfg
	cfg.TimeScale = 1.0
	for _, run := range []func(Config) Result{
		S9PoolExhaustion, S10HandleLeak, S11LockContention,
		S12FragmentationBloat, S13StaleCacheDecay,
		S14NodeKill, S15TransportPartition, S16ClockSkew,
	} {
		if res := run(cfg); !res.Pass {
			t.Fatalf("full-scale chaos scenario failed:\n%s", res)
		}
	}
}

package experiment

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/eb"
	"repro/internal/metrics"
	"repro/internal/rootcause"
	"repro/internal/tpcw"
)

// Component roles of the paper's experiments: the paper calls them A-D;
// this reproduction maps them onto interactions whose natural usage
// frequencies produce the paper's behaviour under the shopping mix (A and
// B heavily used, C moderately, D rarely).
var (
	ComponentA = tpcw.CompHome
	ComponentB = tpcw.CompProductDetail
	ComponentC = tpcw.CompBestSellers
	ComponentD = tpcw.CompAdminConfirm
)

// roleLabels letter the map plots.
var roleLabels = map[string]string{
	tpcw.CompHome:          "A",
	tpcw.CompProductDetail: "B",
	tpcw.CompBestSellers:   "C",
	tpcw.CompAdminConfirm:  "D",
}

// KB and MB are the paper's injection sizes.
const (
	KB = 1 << 10
	MB = 1 << 20
)

// TableI reproduces Table I: the testbed description — necessarily the
// simulated equivalents, per the substitution rules in DESIGN.md.
func TableI(cfg Config) Result {
	cfg = cfg.withDefaults()
	t := NewTable("role", "paper (Table I)", "this reproduction")
	t.Row("Clients", "2-way Intel XEON 2.4GHz, 2GB, Linux 2.6.8, TPC-W clients",
		"internal/eb emulated browsers on a virtual-time engine")
	t.Row("Application server", "4-way Intel XEON 1.4GHz, 2GB, Linux 2.6.15, Tomcat 5.5.26",
		"internal/servlet container (worker pool + sessions + weaving)")
	t.Row("JVM", "jdk1.5 with 1GB heap",
		"internal/jvmheap simulated 1GB heap with GC and OOM")
	t.Row("Database server", "2-way Intel XEON 2.4GHz, 2GB, Linux 2.6.8, MySQL 5.0.67",
		"internal/sqldb in-memory engine with cost accounting")
	t.Row("Monitoring", "AspectJ load-time weaving + JMX",
		"internal/aspect weaver + internal/jmx MBean server")
	return Result{
		ID:       "T1",
		Title:    "Table I — machine description",
		Expected: "three-machine 2010 testbed",
		Observed: "simulated testbed with equivalent roles (see substitution table)",
		Pass:     true,
		Text:     t.String(),
	}
}

// Fig2 reproduces the theoretic map of §III.C with the section's worked
// example: A and B leak 100KB per injection, C and D leak 10KB; A is used
// more than B, C more than D.
func Fig2(cfg Config) Result {
	data := []rootcause.ComponentData{
		{Name: "A", Consumption: 100 * KB * 200, Usage: 20000},
		{Name: "B", Consumption: 100 * KB * 120, Usage: 12000},
		{Name: "C", Consumption: 10 * KB * 180, Usage: 18000},
		{Name: "D", Consumption: 10 * KB * 90, Usage: 9000},
	}
	ranking := rootcause.PaperMap{}.Rank(core.ResourceMemory, data)
	labels := map[string]string{"A": "A", "B": "B", "C": "C", "D": "D"}
	text := quadrantMap(ranking, labels) + "\n" + ranking.String()
	pass := ranking.Position("A") == 1 && ranking.Position("B") == 2 &&
		ranking.Position("C") == 3 && ranking.Position("D") == 4
	return Result{
		ID:       "F2",
		Title:    "Fig. 2 — theoretic consumption × usage map",
		Expected: "A most suspicious (high consumption, high usage), then B, then C, then D",
		Observed: fmt.Sprintf("ranking %v", names(ranking)),
		Pass:     pass,
		Text:     text,
	}
}

// Fig3 reproduces the overhead experiment: the dynamic 50→100→200 EB
// schedule run twice, with and without monitoring; the paper reports ~5%
// overhead with all components monitored.
func Fig3(cfg Config) Result {
	cfg = cfg.withDefaults()
	phases := scalePhases(eb.Fig3Schedule(), cfg.TimeScale)

	type runOut struct {
		wips      []metrics.Point
		completed int64
		meanRT    float64
	}
	run := func(monitored bool) (runOut, error) {
		s, err := NewStack(StackConfig{
			Seed:      cfg.Seed,
			Scale:     tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1},
			Monitored: monitored,
			Mix:       eb.Shopping,
		})
		if err != nil {
			return runOut{}, err
		}
		defer s.Close()
		s.Driver.Run(phases)
		return runOut{
			wips:      s.Driver.WIPS().Points(),
			completed: s.Driver.Completed(),
			meanRT:    s.Container.ResponseTimes().Mean(),
		}, nil
	}
	orig, err := run(false)
	if err != nil {
		return errResult("F3", err)
	}
	mon, err := run(true)
	if err != nil {
		return errResult("F3", err)
	}

	rtOverhead := (mon.meanRT - orig.meanRT) / orig.meanRT * 100
	thrDelta := math.Abs(float64(mon.completed)-float64(orig.completed)) /
		float64(orig.completed) * 100

	step := time.Duration(float64(2*time.Minute) * cfg.TimeScale)
	if step < 30*time.Second {
		step = 30 * time.Second
	}
	o := downsample(orig.wips, step)
	m := downsample(mon.wips, step)
	text := seriesTable(step, func(v float64) string { return fmt.Sprintf("%.1f", v) },
		[]string{"original WIPS", "monitored WIPS"}, o, m)
	text += fmt.Sprintf("\noriginal:  completed=%d  mean service=%.2fms  shape %s\n",
		orig.completed, orig.meanRT*1000, sparkline(values(o)))
	text += fmt.Sprintf("monitored: completed=%d  mean service=%.2fms  shape %s\n",
		mon.completed, mon.meanRT*1000, sparkline(values(m)))
	text += fmt.Sprintf("\nservice-time overhead: %.1f%%   throughput delta: %.2f%%\n", rtOverhead, thrDelta)
	text += "(with 7s think times the system is demand-bound, so the per-request\n" +
		"overhead surfaces in service time; the throughput curves overlap, as in\n" +
		"the paper's figure)\n"

	pass := rtOverhead > 0 && rtOverhead < 10 && thrDelta < 3
	return Result{
		ID:       "F3",
		Title:    "Fig. 3 — TPC-W throughput, original vs monitored (dynamic workload)",
		Expected: "both curves step with 50→100→200 EBs; monitoring costs ~5%",
		Observed: fmt.Sprintf("service-time overhead %.1f%%, throughput delta %.2f%%", rtOverhead, thrDelta),
		Pass:     pass,
		Text:     text,
	}
}

// leakSpec arms one component for the multi-leak figures.
type leakSpec struct {
	component string
	size      int
}

// runLeakScenario is the shared body of Figs. 4-7: a monitored one-hour
// (scaled) shopping run with the given leaks at N=100.
func runLeakScenario(cfg Config, leaks []leakSpec) (*Stack, error) {
	s, err := NewStack(StackConfig{
		Seed:      cfg.Seed,
		Scale:     tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1},
		Monitored: true,
		Mix:       eb.Shopping,
	})
	if err != nil {
		return nil, err
	}
	for i, l := range leaks {
		if _, err := s.InjectLeak(l.component, l.size, 100, cfg.Seed+uint64(i)*31); err != nil {
			s.Close()
			return nil, err
		}
	}
	phases := scalePhases([]eb.Phase{{Duration: time.Hour, EBs: cfg.EBs}}, cfg.TimeScale)
	s.Driver.Run(phases)
	return s, nil
}

// sizeReport renders the per-component size series like the paper's
// figures (size over time per component).
func sizeReport(s *Stack, comps []string) string {
	step := 5 * time.Minute
	var series [][]metrics.Point
	var names []string
	for _, c := range comps {
		pts := downsample(s.Framework.Manager().SizeSeries(c), step)
		series = append(series, pts)
		label := c
		if l, ok := roleLabels[c]; ok {
			label = l + "=" + c
		}
		names = append(names, label)
	}
	out := seriesTable(step, fmtBytes, names, series...)
	out += "\nshapes: "
	for i, c := range comps {
		out += fmt.Sprintf("%s %s  ", roleLabels[c], sparkline(values(series[i])))
	}
	return out + "\n"
}

// Fig4 reproduces the single-leak experiment: 100KB with N=100 injected
// into component A only; A grows from KBs to MBs while every other
// component stays flat, so A carries 100% of the blame.
func Fig4(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := runLeakScenario(cfg, []leakSpec{{ComponentA, 100 * KB}})
	if err != nil {
		return errResult("F4", err)
	}
	defer s.Close()

	ranking := s.Framework.Manager().Map(core.ResourceMemory)
	data, _ := s.Framework.Manager().Data(core.ResourceMemory)
	growthA, maxOther := consumptionSplit(data, ComponentA)

	text := sizeReport(s, []string{ComponentA, ComponentB, ComponentC, ComponentD})
	text += "\n" + ranking.String()
	top, _ := ranking.Top()
	pass := top.Name == ComponentA &&
		growthA > float64(1*MB) &&
		maxOther < growthA/10
	return Result{
		ID:    "F4",
		Title: "Fig. 4 — injection in component A (100KB, N=100)",
		Expected: "A grows from KBs to MBs; all other components flat; " +
			"A is 100% responsible",
		Observed: fmt.Sprintf("A grew %s, next-largest component %s, top suspect %s",
			fmtBytes(growthA), fmtBytes(maxOther), top.Name),
		Pass: pass,
		Text: text,
	}
}

// Fig5 reproduces the four-component equal-size experiment: 100KB, N=100
// in A, B, C and D; growth rates track usage frequency (A ≈ B ≫ C; D
// never fires).
func Fig5(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := runLeakScenario(cfg, []leakSpec{
		{ComponentA, 100 * KB}, {ComponentB, 100 * KB},
		{ComponentC, 100 * KB}, {ComponentD, 100 * KB},
	})
	if err != nil {
		return errResult("F5", err)
	}
	defer s.Close()

	data, _ := s.Framework.Manager().Data(core.ResourceMemory)
	byName := dataByName(data)
	a, b, c, d := byName[ComponentA], byName[ComponentB], byName[ComponentC], byName[ComponentD]

	text := sizeReport(s, []string{ComponentA, ComponentB, ComponentC, ComponentD})
	ratioAB := ratio(a.Consumption, b.Consumption)
	pass := a.Consumption > 2*c.Consumption && // A well above C
		b.Consumption > c.Consumption && // B above C
		ratioAB < 2.5 && // A and B comparable
		c.Consumption > 8*d.Consumption && // C well above D
		d.Consumption < float64(1*MB) // D essentially flat
	observed := fmt.Sprintf("A=%s B=%s C=%s D=%s (A/B ratio %.2f)",
		fmtBytes(a.Consumption), fmtBytes(b.Consumption),
		fmtBytes(c.Consumption), fmtBytes(d.Consumption), ratioAB)
	return Result{
		ID:       "F5",
		Title:    "Fig. 5 — injection in four components (100KB, N=100)",
		Expected: "A and B grow similarly and fastest, C slower, D flat (too rarely used)",
		Observed: observed,
		Pass:     pass,
		Text:     text,
	}
}

// Fig6 reproduces the manager-composed map for the Fig. 5 scenario.
func Fig6(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := runLeakScenario(cfg, []leakSpec{
		{ComponentA, 100 * KB}, {ComponentB, 100 * KB},
		{ComponentC, 100 * KB}, {ComponentD, 100 * KB},
	})
	if err != nil {
		return errResult("F6", err)
	}
	defer s.Close()

	ranking := s.Framework.Manager().Map(core.ResourceMemory)
	text := quadrantMap(ranking, roleLabels) + "\n" + ranking.String()
	posA := ranking.Position(ComponentA)
	posB := ranking.Position(ComponentB)
	posC := ranking.Position(ComponentC)
	posD := ranking.Position(ComponentD)
	pass := posA <= 2 && posB <= 2 && posC == 3 && posD > 3
	return Result{
		ID:       "F6",
		Title:    "Fig. 6 — resource consumption × usage map composed by the Manager Agent",
		Expected: "{A,B} most suspicious, then C, then D",
		Observed: fmt.Sprintf("positions A=%d B=%d C=%d D=%d", posA, posB, posC, posD),
		Pass:     pass,
		Text:     text,
	}
}

// Fig7 reproduces the mixed-size experiment: A=100KB, B=10KB, C=1MB,
// D=1MB. The big leak promotes C to the top even though it is used less
// than A; B drops to third; D still never fires.
func Fig7(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := runLeakScenario(cfg, []leakSpec{
		{ComponentA, 100 * KB}, {ComponentB, 10 * KB},
		{ComponentC, 1 * MB}, {ComponentD, 1 * MB},
	})
	if err != nil {
		return errResult("F7", err)
	}
	defer s.Close()

	ranking := s.Framework.Manager().Map(core.ResourceMemory)
	data, _ := s.Framework.Manager().Data(core.ResourceMemory)
	byName := dataByName(data)
	text := sizeReport(s, []string{ComponentA, ComponentB, ComponentC, ComponentD})
	text += "\n" + quadrantMap(ranking, roleLabels) + "\n" + ranking.String()

	posA := ranking.Position(ComponentA)
	posC := ranking.Position(ComponentC)
	posB := ranking.Position(ComponentB)
	dFlat := byName[ComponentD].Consumption < 3*MB // at most a stray injection
	pass := posC == 1 && posA == 2 && posB == 3 && dFlat
	return Result{
		ID:    "F7",
		Title: "Fig. 7 — root cause determination under different injection sizes",
		Expected: "C (1MB) becomes most suspicious, A (100KB) second, B (10KB) third, " +
			"D flat despite its 1MB size because it is never used",
		Observed: fmt.Sprintf("positions C=%d A=%d B=%d, D consumption %s",
			posC, posA, posB, fmtBytes(byName[ComponentD].Consumption)),
		Pass: pass,
		Text: text,
	}
}

// Helpers shared by the runners.

func errResult(id string, err error) Result {
	return Result{ID: id, Observed: "runner error: " + err.Error()}
}

func names(r rootcause.Ranking) []string {
	out := make([]string, len(r.Entries))
	for i, e := range r.Entries {
		out[i] = e.Name
	}
	return out
}

func values(pts []metrics.Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

func dataByName(data []rootcause.ComponentData) map[string]rootcause.ComponentData {
	out := make(map[string]rootcause.ComponentData, len(data))
	for _, d := range data {
		out[d.Name] = d
	}
	return out
}

// consumptionSplit returns the consumption of the named component and the
// largest consumption among all others.
func consumptionSplit(data []rootcause.ComponentData, name string) (own, maxOther float64) {
	for _, d := range data {
		if d.Name == name {
			own = d.Consumption
		} else if d.Consumption > maxOther {
			maxOther = d.Consumption
		}
	}
	return own, maxOther
}

func ratio(a, b float64) float64 {
	if a < b {
		a, b = b, a
	}
	if b == 0 {
		return math.Inf(1)
	}
	return a / b
}

package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/jmx"
	"repro/internal/sim"
	"repro/internal/tpcw"
)

// The online-detection scenarios (S-series) exercise the streaming
// detectors of internal/detect against the workload shapes a production
// deployment sees: mix shifts, diurnal cycles and flash crowds — with and
// without an injected aging fault. Their pass criteria are the
// false-positive / detection-latency contract of the ISSUE: workload
// change alone must raise no alarm, a real leak must be flagged online
// with the right suspect before the run ends.

// scenarioDetectConfig is the fixed tuning the S-scenarios run with, so
// their verdicts are deterministic across time scales.
func scenarioDetectConfig() detect.Config {
	return detect.Config{Window: 20, MinSamples: 6, Consecutive: 3}
}

// scenarioStack assembles a monitored, detector-attached stack and an
// alarm-notification counter.
func scenarioStack(cfg Config, mix eb.Mix) (*Stack, *alarmLog, error) {
	s, err := NewStack(StackConfig{
		Seed:         cfg.Seed,
		Scale:        scenarioScale(cfg),
		Monitored:    true,
		Detect:       true,
		DetectConfig: scenarioDetectConfig(),
		Mix:          mix,
	})
	if err != nil {
		return nil, nil, err
	}
	log := &alarmLog{}
	s.Framework.Server().AddListener(func(n jmx.Notification) {
		if n.Type == core.NotifAlarm {
			log.events = append(log.events, n.Message)
		}
	})
	return s, log, nil
}

func scenarioScale(cfg Config) tpcw.Scale {
	return tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1}
}

// alarmLog collects aging.alarm notification messages. Listeners run on
// the sampling goroutine inside the single-threaded engine, so no lock is
// needed.
type alarmLog struct{ events []string }

func (l *alarmLog) raised() []string {
	var out []string
	for _, e := range l.events {
		if !strings.Contains(e, "clears") {
			out = append(out, e)
		}
	}
	return out
}

// S1WorkloadShift runs an hour in which the workload shifts twice —
// browsing → shopping → ordering, with a population step — while nothing
// ages. A static detector misfires here (Moura et al.); the shift guard
// must keep every alarm down while still registering that the mix moved.
func S1WorkloadShift(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, log, err := scenarioStack(cfg, eb.Browsing)
	if err != nil {
		return errorResult("S1", err)
	}
	defer s.Close()

	third := scaleDuration(20*time.Minute, cfg.TimeScale)
	s.Driver.RunMixed([]eb.MixedPhase{
		{Duration: third, EBs: cfg.EBs, Mix: eb.Browsing},
		{Duration: third, EBs: cfg.EBs, Mix: eb.Shopping},
		{Duration: third, EBs: cfg.EBs * 2, Mix: eb.Ordering},
	})

	alarms := log.raised()
	shiftSeen := false
	var b strings.Builder
	for _, res := range []string{core.ResourceMemory, core.ResourceCPU, core.ResourceThreads} {
		if rep := s.Detectors.Report(res); rep != nil {
			fmt.Fprintf(&b, "%s", rep)
			if rep.ShiftRounds > 0 {
				shiftSeen = true
			}
		}
	}
	pass := len(alarms) == 0 && shiftSeen
	observed := fmt.Sprintf("%d alarms across %d completed interactions; shift guard engaged: %v",
		len(alarms), s.Driver.Completed(), shiftSeen)
	if len(alarms) > 0 {
		fmt.Fprintf(&b, "\nraised: %s\n", strings.Join(alarms, "; "))
	}
	return Result{
		ID:       "S1",
		Title:    "Online detection under workload shift (no aging)",
		Expected: "zero alarms; the shift guard absorbs the mix changes",
		Observed: observed,
		Pass:     pass,
		Text:     b.String(),
		Accuracy: &Accuracy{
			Flagged:            flaggedComponents(s.Detectors),
			PreInjectionAlarms: len(alarms),
		},
	}
}

// S2OnlineLeakDetection injects the paper's 100KB/N=100 leak into
// component A under a steady shopping mix and requires the streaming
// detectors to flag A on memory while the run is still in flight, within
// a bounded number of sampling rounds of the earliest possible verdict.
func S2OnlineLeakDetection(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, log, err := scenarioStack(cfg, eb.Shopping)
	if err != nil {
		return errorResult("S2", err)
	}
	defer s.Close()
	if _, err := s.InjectLeak(ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S2", err)
	}

	total := scaleDuration(time.Hour, cfg.TimeScale)
	s.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})

	rep := s.Detectors.Report(core.ResourceMemory)
	var first int64
	suspectOK := false
	if rep != nil {
		for _, v := range rep.Components {
			if v.FirstAlarmRound > 0 && (first == 0 || v.FirstAlarmRound < first) {
				first = v.FirstAlarmRound
				suspectOK = v.Component == ComponentA
			}
		}
	}
	dcfg := scenarioDetectConfig()
	// The earliest a verdict can exist is MinSamples + Consecutive
	// rounds; allow twice that plus slack for the trend to clear the
	// significance bar.
	bound := int64(2*(dcfg.MinSamples+dcfg.Consecutive) + 6)
	pass := first > 0 && suspectOK && first <= bound && rep != nil && first < rep.Round
	observed := fmt.Sprintf("first alarm at round %d/%d (bound %d), suspect correct: %v, %d alarm notifications",
		first, reportRound(rep), bound, suspectOK, len(log.raised()))
	text := ""
	if rep != nil {
		text = rep.String()
	}
	return Result{
		ID:       "S2",
		Title:    "Online leak detection (100KB leak in A, steady mix)",
		Expected: fmt.Sprintf("A flagged online on memory within %d rounds", bound),
		Observed: observed,
		Pass:     pass,
		Text:     text,
		Accuracy: &Accuracy{
			Truth:     []string{ComponentA},
			Flagged:   flaggedComponents(s.Detectors),
			TTDRounds: first, // injected at round 0
		},
	}
}

// S3DiurnalCycle runs a day-shaped population swing (trough→peak→trough)
// with no fault: the load doubles and halves but the mix is constant, so
// neither the trend detectors (level/per-invocation series are
// load-invariant) nor the entropy detector may alarm.
func S3DiurnalCycle(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, log, err := scenarioStack(cfg, eb.Shopping)
	if err != nil {
		return errorResult("S3", err)
	}
	defer s.Close()

	total := scaleDuration(time.Hour, cfg.TimeScale)
	profile := sim.DiurnalProfile(float64(cfg.EBs), float64(cfg.EBs)/2, total)
	s.Driver.Run(eb.ProfileSchedule(profile, total, total/12))

	alarms := log.raised()
	pass := len(alarms) == 0
	return Result{
		ID:       "S3",
		Title:    "Online detection under a diurnal load cycle (no aging)",
		Expected: "zero alarms while the population swings sinusoidally",
		Observed: fmt.Sprintf("%d alarms, %d interactions, population %d±%d",
			len(alarms), s.Driver.Completed(), cfg.EBs, cfg.EBs/2),
		Pass: pass,
		Text: strings.Join(alarms, "\n"),
		Accuracy: &Accuracy{
			Flagged:            flaggedComponents(s.Detectors),
			PreInjectionAlarms: len(alarms),
		},
	}
}

// S4BurstWithLeak overlays a flash crowd (4× population for a tenth of
// the run) on a leaking component: the burst must not derail detection —
// the leak is still flagged with the right suspect.
func S4BurstWithLeak(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, log, err := scenarioStack(cfg, eb.Shopping)
	if err != nil {
		return errorResult("S4", err)
	}
	defer s.Close()
	if _, err := s.InjectLeak(ComponentB, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S4", err)
	}

	total := scaleDuration(time.Hour, cfg.TimeScale)
	profile := sim.BurstProfile(float64(cfg.EBs), float64(cfg.EBs)*4, total/3, total/10)
	s.Driver.Run(eb.ProfileSchedule(profile, total, total/30))

	rep := s.Detectors.Report(core.ResourceMemory)
	var first int64
	suspectOK := false
	if rep != nil {
		for _, v := range rep.Components {
			if v.FirstAlarmRound > 0 && (first == 0 || v.FirstAlarmRound < first) {
				first = v.FirstAlarmRound
				suspectOK = v.Component == ComponentB
			}
		}
	}
	pass := first > 0 && suspectOK
	return Result{
		ID:       "S4",
		Title:    "Online leak detection through a flash crowd (100KB leak in B)",
		Expected: "B flagged online on memory despite the burst",
		Observed: fmt.Sprintf("first alarm at round %d/%d, suspect correct: %v, %d alarm notifications",
			first, reportRound(rep), suspectOK, len(log.raised())),
		Pass: pass,
		Text: reportText(rep),
		Accuracy: &Accuracy{
			Truth:     []string{ComponentB},
			Flagged:   flaggedComponents(s.Detectors),
			TTDRounds: first, // injected at round 0
		},
	}
}

func reportRound(rep *detect.Report) int64 {
	if rep == nil {
		return 0
	}
	return rep.Round
}

func reportText(rep *detect.Report) string {
	if rep == nil {
		return ""
	}
	return rep.String()
}

func errorResult(id string, err error) Result {
	return Result{ID: id, Title: "scenario failed to assemble", Observed: err.Error()}
}

// scaleDuration multiplies d by factor (minimum one minute, like
// scalePhases).
func scaleDuration(d time.Duration, factor float64) time.Duration {
	if factor <= 0 {
		return d
	}
	scaled := time.Duration(float64(d) * factor)
	if scaled < time.Minute {
		return time.Minute
	}
	return scaled
}

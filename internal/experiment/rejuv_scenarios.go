package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/eb"
	"repro/internal/jmx"
	"repro/internal/rejuv"
)

// The actuation scenarios (S17-S19) close the loop the detection matrix
// opens: a verdict is only useful if acting on it is safe. S17 is the
// happy path — a sick replica drained, micro-rebooted and re-admitted
// under full load with zero dropped requests and no collateral actuation
// on healthy replicas. S18 and S19 are the two ways the loop can hurt:
// a flapping detector must be held by hysteresis (no actuation at all),
// and a lost control channel must degrade to a bounded timeout and a
// safe re-admission, never a node stuck out of rotation.

// scenarioRejuvConfig is the actuation tuning matched to
// scenarioDetectConfig: probation (6 epochs) is shorter than a fresh
// detection (MinSamples+Consecutive = 9 epochs after the post-reboot
// reset), so a successfully rebooted node completes probation before a
// re-armed leak can re-alarm it into a rollback. HealthyWeight is 1
// because the scenario balancers register every node at weight 1 —
// re-admitting above that would skew traffic and trip the shift guard.
func scenarioRejuvConfig() *rejuv.Config {
	return &rejuv.Config{
		HoldDownEpochs:  3,
		MaxConcurrent:   1,
		DrainEpochs:     2,
		RebootEpochs:    3,
		ProbationEpochs: 6,
		ProbationWeight: 1,
		HealthyWeight:   1,
		CooldownEpochs:  8,
	}
}

// rejuvScenarioStack assembles an N-node cluster with the rejuvenation
// controller wired in and an actuation-notification log. ctl, when
// non-nil, wraps the control channel (the chaos hook S19 uses to lose
// commands in flight).
func rejuvScenarioStack(cfg Config, nodes int, ctl func(rejuv.CommandSender) rejuv.CommandSender) (*ClusterStack, *alarmLog, error) {
	cs, err := NewClusterStack(ClusterConfig{
		Nodes:        nodes,
		Seed:         cfg.Seed,
		Scale:        scenarioScale(cfg),
		Mix:          eb.Shopping,
		Detect:       scenarioDetectConfig(),
		Policy:       cluster.RoundRobin,
		Rejuv:        scenarioRejuvConfig(),
		RejuvControl: ctl,
	})
	if err != nil {
		return nil, nil, err
	}
	log := &alarmLog{}
	cs.Server.AddListener(func(n jmx.Notification) {
		if n.Type == rejuv.NotifRejuvAction {
			log.events = append(log.events, n.Message)
		}
	})
	return cs, log, nil
}

// rejuvCycle scans a controller history for node's first full
// Draining → Rejuvenating → Probation → Healthy cycle, returning the
// four transition events in order.
func rejuvCycle(hist []rejuv.Event, node string) ([]rejuv.Event, bool) {
	want := []rejuv.State{rejuv.Draining, rejuv.Rejuvenating, rejuv.Probation, rejuv.Healthy}
	var chain []rejuv.Event
	for _, ev := range hist {
		if ev.Node != node || len(chain) == len(want) {
			continue
		}
		if ev.To == want[len(chain)] {
			chain = append(chain, ev)
		}
	}
	return chain, len(chain) == len(want)
}

// actuatedPairs lists the unique node/component pairs the controller
// decided to drain — the actuation plane's answer to "who was sick",
// scored against ground truth like the detection scenarios' verdicts.
func actuatedPairs(hist []rejuv.Event) []string {
	seen := make(map[string]bool)
	var out []string
	for _, ev := range hist {
		if ev.To != rejuv.Draining || ev.Component == "" {
			continue
		}
		p := ev.Node + "/" + ev.Component
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// rejuvHistoryText renders a transition history for Result.Text.
func rejuvHistoryText(hist []rejuv.Event) string {
	var b strings.Builder
	for _, ev := range hist {
		fmt.Fprintf(&b, "epoch %4d  %-7s %-12s -> %-12s %s\n",
			ev.Epoch, ev.Node, ev.From, ev.To, ev.Note)
	}
	return b.String()
}

// S17RejuvenateSickReplica is the closed-loop happy path: the S5
// topology (three balanced nodes, the paper's 100KB/N=100 leak in
// component A on node2) with the rejuvenation controller armed. The
// sick replica must be drained, micro-rebooted and re-admitted at full
// weight — a complete Healthy → Draining → Rejuvenating → Probation →
// Healthy cycle — while the driver drops zero requests and the healthy
// replicas are never touched (zero false rejuvenations).
func S17RejuvenateSickReplica(cfg Config) Result {
	cfg = cfg.withDefaults()
	rc := scenarioRejuvConfig()
	cs, log, err := rejuvScenarioStack(cfg, 3, nil)
	if err != nil {
		return errorResult("S17", err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S17", err)
	}

	// 90 minutes: detection needs up to clusterEpochBound() epochs, the
	// actuation cycle roughly HoldDown+Drain+Reboot+Probation more.
	total := scaleDuration(90*time.Minute, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S17", err)
	}
	cs.FlushNotifications()

	hist := cs.Rejuv.History()
	st := cs.Rejuv.Stats()
	chain, cycled := rejuvCycle(hist, "node2")
	failed := cs.Driver.Failed()
	rebooted := cs.Node("node2").Framework.RejuvenationCount()

	// Healthy replicas must be untouched: no micro-reboots, no
	// transitions — a false rejuvenation is an availability hit.
	bystandersClean := cs.Node("node1").Framework.RejuvenationCount() == 0 &&
		cs.Node("node3").Framework.RejuvenationCount() == 0
	for _, ev := range hist {
		if ev.Node != "node2" {
			bystandersClean = false
		}
	}

	drainBound := clusterEpochBound() + int64(rc.HoldDownEpochs) + 8
	var ttd, recovery int64
	inTime := false
	cycleDesc := "no full cycle"
	if cycled {
		ttd = chain[0].Epoch - int64(rc.HoldDownEpochs) // first epoch of the alarm streak
		recovery = chain[3].Epoch                       // injected at epoch 0
		inTime = chain[0].Epoch <= drainBound
		cycleDesc = fmt.Sprintf("drain@%d reboot@%d probation@%d healthy@%d (drain bound %d)",
			chain[0].Epoch, chain[1].Epoch, chain[2].Epoch, chain[3].Epoch, drainBound)
	}
	pass := cycled && inTime && failed == 0 && rebooted >= 1 && bystandersClean &&
		st.Rejuvenations >= 1 && st.ClusterWideVetoes == 0
	observed := fmt.Sprintf("%s; %d micro-reboots freed %d bytes, %d failed requests, healthy replicas untouched: %v, %d vetoes, %d actuation notifications",
		cycleDesc, st.Rejuvenations, st.FreedBytes, failed, bystandersClean, st.ClusterWideVetoes, len(log.raised()))
	return Result{
		ID:       "S17",
		Title:    "Actuation — sick replica drained, micro-rebooted, re-admitted under load",
		Expected: fmt.Sprintf("node2 completes a full drain/reboot/probation/re-admit cycle within %d epochs with zero dropped requests; node1/node3 never actuated", drainBound),
		Observed: observed,
		Pass:     pass,
		Text:     rejuvHistoryText(hist),
		Accuracy: &Accuracy{
			Truth:          []string{"node2/" + ComponentA},
			Flagged:        actuatedPairs(hist),
			TTDRounds:      ttd,
			RecoveryEpochs: recovery,
		},
	}
}

// probeBalancer and probeSender are the minimal actuation fakes S18
// drives the state machine with: no cluster, no clock — hysteresis is a
// pure function of the scripted verdict stream, so the scenario isolates
// the FSM from detection noise entirely.
type probeBalancer struct{ drains, readmits int }

func (b *probeBalancer) Drain(string) bool         { b.drains++; return true }
func (b *probeBalancer) CompleteDrain(string) int  { return 0 }
func (b *probeBalancer) Readmit(string, int) bool  { b.readmits++; return true }
func (b *probeBalancer) PinnedSessions(string) int { return 0 }
func (b *probeBalancer) Inflight(string) int       { return 0 }

type probeSender struct{ sent []cluster.ControlKind }

func (s *probeSender) SendControl(node string, kind cluster.ControlKind, component string, weight int, done func(cluster.ControlAck, error)) {
	s.sent = append(s.sent, kind)
	if done != nil {
		done(cluster.ControlAck{OK: true, Freed: int64(64 * KB)}, nil)
	}
}

// S18FlappingDetectorHeld is the hysteresis litmus: a detector that
// alarms every other epoch — the classic borderline-trend flap — must
// produce ZERO actuation, while the same alarm held continuously must
// produce exactly one cycle. The hold-down demands HoldDownEpochs
// consecutive alarming epochs and a single quiet epoch resets it, so a
// flapping verdict can never drain a node.
func S18FlappingDetectorHeld(cfg Config) Result {
	cfg = cfg.withDefaults()
	rc := *scenarioRejuvConfig()
	bal := &probeBalancer{}
	snd := &probeSender{}
	ctrl := rejuv.New(rc, bal, snd)
	ctrl.Track("node1", "node2", "node3")

	epoch := int64(0)
	step := func(alarming bool) {
		epoch++
		ev := cluster.EpochEvent{Epoch: epoch, Active: 3}
		if alarming {
			ev.Verdicts = []cluster.ClusterVerdict{{
				Resource: "memory", Component: ComponentA,
				Nodes: []string{"node2"}, ActiveNodes: 3, Score: 5,
			}}
		}
		ctrl.ObserveEpoch(ev)
	}

	// Phase 1 — flap: alarm, quiet, alarm, quiet for 30 epochs.
	for i := 0; i < 15; i++ {
		step(true)
		step(false)
	}
	flapTransitions := len(ctrl.History())
	flapSends := len(snd.sent)
	sustainedFrom := epoch

	// Phase 2 — the same alarm, sustained: exactly one cycle, proving the
	// controller was held by hysteresis, not dead.
	for i := 0; i < rc.HoldDownEpochs; i++ {
		step(true)
	}
	for i := 0; i < rc.ProbationEpochs+6; i++ {
		step(false) // reboot acked synchronously; probation runs out clean
	}

	hist := ctrl.History()
	st := ctrl.Stats()
	chain, cycled := rejuvCycle(hist, "node2")
	var ttd, recovery int64
	if cycled {
		ttd = chain[0].Epoch - sustainedFrom // sustained alarms begin at sustainedFrom+1
		recovery = chain[3].Epoch - sustainedFrom
	}
	pass := flapTransitions == 0 && flapSends == 0 && cycled &&
		st.Rejuvenations == 1 && bal.drains == 1 &&
		ctrl.NodeState("node2") == rejuv.Healthy
	observed := fmt.Sprintf("flap phase: %d transitions, %d control sends over 30 epochs; sustained phase: %d drains, %d rejuvenations, node2 ends %s",
		flapTransitions, flapSends, bal.drains, st.Rejuvenations, ctrl.NodeState("node2"))
	return Result{
		ID:       "S18",
		Title:    "Actuation — flapping detector held by hold-down hysteresis",
		Expected: "30 epochs of alternating alarm/quiet actuate nothing; the same alarm sustained actuates exactly once",
		Observed: observed,
		Pass:     pass,
		Text:     rejuvHistoryText(hist),
		Accuracy: &Accuracy{
			Truth:              []string{"node2/" + ComponentA},
			Flagged:            actuatedPairs(hist),
			TTDRounds:          ttd,
			PreInjectionAlarms: flapTransitions, // the flap phase IS the pre-injection window
			RecoveryEpochs:     recovery,
		},
	}
}

// lossyControl swallows rejuvenate commands in flight — delivered to
// nobody, acked by nobody — while passing drain/re-admit through. It
// wraps the control channel only: the verdict path, the balancer and
// the recording plane are untouched.
type lossyControl struct {
	inner rejuv.CommandSender
	mu    sync.Mutex
	lost  int
}

func (l *lossyControl) SendControl(node string, kind cluster.ControlKind, component string, weight int, done func(cluster.ControlAck, error)) {
	if kind == cluster.ControlRejuvenate {
		l.mu.Lock()
		l.lost++
		l.mu.Unlock()
		return
	}
	l.inner.SendControl(node, kind, component, weight, done)
}

func (l *lossyControl) swallowed() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lost
}

// S19ControlLossDuringDrain is the degraded-mode litmus: the sick
// replica drains, but every rejuvenate command is lost in flight. The
// controller must time the ack wait out within RebootEpochs, re-admit
// the node un-rebooted (it was healthy enough to serve), count the loss,
// and keep the cluster serving — a lost control channel degrades to a
// detection-only monitor, never to a node stuck out of rotation.
func S19ControlLossDuringDrain(cfg Config) Result {
	cfg = cfg.withDefaults()
	rc := scenarioRejuvConfig()
	loss := &lossyControl{}
	cs, log, err := rejuvScenarioStack(cfg, 3, func(inner rejuv.CommandSender) rejuv.CommandSender {
		loss.inner = inner
		return loss
	})
	if err != nil {
		return errorResult("S19", err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S19", err)
	}

	total := scaleDuration(90*time.Minute, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S19", err)
	}
	cs.FlushNotifications()

	hist := cs.Rejuv.History()
	st := cs.Rejuv.Stats()
	failed := cs.Driver.Failed()

	// Every Rejuvenating stint must end within the RebootEpochs bound
	// (+1 epoch of decision latency), via the control-lost fallback.
	bounded := true
	fellBack := false
	var rebootStart int64 = -1
	for _, ev := range hist {
		if ev.Node != "node2" {
			continue
		}
		switch ev.To {
		case rejuv.Rejuvenating:
			rebootStart = ev.Epoch
		case rejuv.Probation:
			if rebootStart >= 0 && ev.Epoch-rebootStart > int64(rc.RebootEpochs)+1 {
				bounded = false
			}
			rebootStart = -1
			if strings.Contains(ev.Note, "control lost") {
				fellBack = true
			}
		}
	}
	stuck := cs.Rejuv.NodeState("node2") == rejuv.Rejuvenating && rebootStart >= 0 &&
		cs.Rejuv.Epoch()-rebootStart > int64(rc.RebootEpochs)+1

	var ttd int64
	if first := firstDrainEpoch(hist, "node2"); first > 0 {
		ttd = first - int64(rc.HoldDownEpochs)
	}
	pass := loss.swallowed() >= 1 && st.ControlLost >= 1 && fellBack && bounded && !stuck &&
		failed == 0 && cs.Node("node2").Framework.RejuvenationCount() == 0
	observed := fmt.Sprintf("%d rejuvenate commands lost in flight, %d control losses counted, fallback within bound: %v, node2 micro-reboots: %d, %d failed requests, %d rollbacks, %d actuation notifications",
		loss.swallowed(), st.ControlLost, bounded && fellBack && !stuck,
		cs.Node("node2").Framework.RejuvenationCount(), failed, st.Rollbacks, len(log.raised()))
	return Result{
		ID:       "S19",
		Title:    "Actuation — control-channel loss during drain degrades safely",
		Expected: fmt.Sprintf("lost rejuvenate commands time out within %d epochs; node2 is re-admitted un-rebooted, the loss is counted, and no request is dropped", rc.RebootEpochs),
		Observed: observed,
		Pass:     pass,
		Text:     rejuvHistoryText(hist),
		Accuracy: &Accuracy{
			Truth:     []string{"node2/" + ComponentA},
			Flagged:   actuatedPairs(hist),
			TTDRounds: ttd,
		},
	}
}

// firstDrainEpoch is the epoch of node's first Healthy → Draining
// transition, zero if it never drained.
func firstDrainEpoch(hist []rejuv.Event, node string) int64 {
	for _, ev := range hist {
		if ev.Node == node && ev.From == rejuv.Healthy && ev.To == rejuv.Draining {
			return ev.Epoch
		}
	}
	return 0
}

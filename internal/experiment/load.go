package experiment

import (
	"fmt"
	"time"

	"repro/internal/aspect"
	"repro/internal/eb"
	"repro/internal/jvmheap"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

// LoadBackend selects what the load tier's sessions submit to.
type LoadBackend int

const (
	// BackendModel completes requests after deterministic hash-derived
	// service times (eb.ModelTarget): the contention-free backend for
	// scale benchmarks and the shards=1-vs-N golden runs.
	BackendModel LoadBackend = iota
	// BackendContainer builds a full application stack per shard — TPC-W
	// over the servlet container with its own DB, heap and weaver — so
	// the million-session tier exercises the real serve path. Shard
	// stacks are independent (one per core), so runs stay contention-free
	// but are only deterministic per shard count: sessions sharing a
	// container interact through its heap and caches.
	BackendContainer
)

// LoadConfig sizes the load tier: the million-session counterpart of
// StackConfig. The zero value of Arrival fields selects the closed-loop
// TPC-W discipline.
type LoadConfig struct {
	// Seed derives every session, lane and service stream.
	Seed uint64
	// Sessions is the closed-loop population.
	Sessions int
	// Shards is the per-process engine count (default 1).
	Shards int
	// Window is the bounded-lag pacing window (default 100ms).
	Window time.Duration
	// Mix is the TPC-W transition mix.
	Mix eb.Mix
	// OpenLoop switches to Poisson arrivals at Rate sessions/second.
	OpenLoop bool
	Rate     float64
	// MeanSessionLength / MaxSessions parameterise open-loop sessions
	// (defaults per eb.ShardedConfig).
	MeanSessionLength int
	MaxSessions       int
	// DriverIndex / DriverCount place this process in a K-way fleet
	// (defaults 0 of 1).
	DriverIndex int
	DriverCount int
	// Backend picks the target; Scale sizes the container backend's
	// database.
	Backend LoadBackend
	Scale   tpcw.Scale
}

// LoadStack is the assembled load tier of one process: a sharded driver
// and its per-shard backends.
type LoadStack struct {
	Driver *eb.ShardedDriver
	// Containers holds the per-shard application stacks
	// (BackendContainer only; empty for the model backend).
	Containers []*servlet.Container
}

// NewLoadStack assembles (but does not run) a load tier process.
func NewLoadStack(cfg LoadConfig) (*LoadStack, error) {
	if cfg.Scale.Seed == 0 {
		cfg.Scale.Seed = cfg.Seed + 1
	}
	ls := &LoadStack{}
	var factory eb.TargetFactory
	var buildErr error
	switch cfg.Backend {
	case BackendModel:
		factory = nil // ShardedDriver builds ModelTargets
	case BackendContainer:
		factory = func(_ int, engine *sim.Engine) eb.Target {
			weaver := aspect.NewWeaver(engine.Clock())
			db := sqldb.NewDB()
			app, err := tpcw.NewApp(db, weaver, engine.Clock(), cfg.Scale)
			if err != nil {
				buildErr = err
				return nil
			}
			heap := jvmheap.New(jvmheap.DefaultCapacity, engine.Clock())
			container := servlet.NewContainer(engine, weaver, db, heap, servlet.Config{})
			if err := app.DeployAll(container); err != nil {
				buildErr = err
				return nil
			}
			if err := container.Start(); err != nil {
				buildErr = err
				return nil
			}
			ls.Containers = append(ls.Containers, container)
			return container
		}
	default:
		return nil, fmt.Errorf("experiment: unknown load backend %d", cfg.Backend)
	}

	shardedCfg := eb.ShardedConfig{
		Shards:            cfg.Shards,
		Window:            cfg.Window,
		Seed:              cfg.Seed,
		Mix:               cfg.Mix,
		Items:             cfg.Scale.Items,
		Customers:         cfg.Scale.Customers,
		Sessions:          cfg.Sessions,
		Rate:              cfg.Rate,
		MeanSessionLength: cfg.MeanSessionLength,
		MaxSessions:       cfg.MaxSessions,
		DriverIndex:       cfg.DriverIndex,
		DriverCount:       cfg.DriverCount,
	}
	if cfg.OpenLoop {
		shardedCfg.Arrival = eb.OpenLoop
	}

	func() {
		defer func() {
			if r := recover(); r != nil && buildErr == nil {
				buildErr = fmt.Errorf("experiment: load stack: %v", r)
			}
		}()
		ls.Driver = eb.NewShardedDriver(shardedCfg, factory)
	}()
	if buildErr != nil {
		return nil, buildErr
	}
	return ls, nil
}

// Node wraps the stack as a wire-paced fleet member for the given run
// duration (the -role driver process of cmd/tpcwsim).
func (ls *LoadStack) Node(duration time.Duration) *eb.DriverNode {
	return eb.NodeForDriver(ls.Driver, duration)
}

// Run drives the whole load locally (single-process mode).
func (ls *LoadStack) Run(duration time.Duration) {
	ls.Driver.Run(duration, nil)
}

// PeakWIPS returns the maximum per-second completion count of the run.
func (ls *LoadStack) PeakWIPS() uint32 {
	var peak uint32
	for _, v := range ls.Driver.WIPSBuckets() {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Close stops the per-shard containers (no-op for the model backend).
func (ls *LoadStack) Close() {
	for _, c := range ls.Containers {
		c.Stop()
	}
}

package experiment

import (
	"fmt"
	"net"
	"time"

	"repro/internal/aspect"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/faultinject"
	"repro/internal/jvmheap"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

// LoadBackend selects what the load tier's sessions submit to.
type LoadBackend int

const (
	// BackendModel completes requests after deterministic hash-derived
	// service times (eb.ModelTarget): the contention-free backend for
	// scale benchmarks and the shards=1-vs-N golden runs.
	BackendModel LoadBackend = iota
	// BackendContainer builds a full application stack per shard — TPC-W
	// over the servlet container with its own DB, heap and weaver — so
	// the million-session tier exercises the real serve path. Shard
	// stacks are independent (one per core), so runs stay contention-free
	// but are only deterministic per shard count: sessions sharing a
	// container interact through its heap and caches.
	BackendContainer
)

// LoadConfig sizes the load tier: the million-session counterpart of
// StackConfig. The zero value of Arrival fields selects the closed-loop
// TPC-W discipline.
type LoadConfig struct {
	// Seed derives every session, lane and service stream.
	Seed uint64
	// Sessions is the closed-loop population.
	Sessions int
	// Shards is the per-process engine count (default 1).
	Shards int
	// Window is the bounded-lag pacing window (default 100ms).
	Window time.Duration
	// Mix is the TPC-W transition mix.
	Mix eb.Mix
	// OpenLoop switches to Poisson arrivals at Rate sessions/second.
	OpenLoop bool
	Rate     float64
	// MeanSessionLength / MaxSessions parameterise open-loop sessions
	// (defaults per eb.ShardedConfig).
	MeanSessionLength int
	MaxSessions       int
	// DriverIndex / DriverCount place this process in a K-way fleet
	// (defaults 0 of 1).
	DriverIndex int
	DriverCount int
	// Backend picks the target; Scale sizes the container backend's
	// database.
	Backend LoadBackend
	Scale   tpcw.Scale
	// Container sizes each shard's servlet container. The zero value
	// takes the servlet defaults (50 workers, 500-deep accept queue) —
	// sized for the paper's testbed, not for fleet-scale populations:
	// at hundreds of thousands of sessions per shard the offered load
	// is tens of thousands of requests/s, and an unsized container
	// sheds almost all of it.
	Container servlet.Config

	// Monitor attaches the aggregation plane to the container backend:
	// every shard stack gets its own monitoring framework (weaver
	// instrumentation over the TPC-W servlets, sampling each
	// MonitorInterval of virtual time) forwarding rounds into one shared
	// cluster Aggregator under names "shard01", "shard02", ... — so the
	// aggregator ingests real rounds concurrently from every shard
	// goroutine while the driver holds the session population. Requires
	// BackendContainer.
	Monitor bool
	// MonitorInterval is the per-shard sampling period (default 30s
	// virtual). With S shards it is also the cluster epoch cadence.
	MonitorInterval time.Duration
	// Detect tunes the aggregator's per-shard detector banks.
	Detect detect.Config
	// MonitorWire ships rounds over per-shard binary net.Pipe wires with
	// the v5 BATCH flush policy instead of in-process calls;
	// MonitorBatchRounds sets the rounds-per-frame flush count (default
	// 8). The aggregator's staleness window is widened past the batch
	// so a shard flushing a full frame never evicts its peers.
	MonitorWire        bool
	MonitorBatchRounds int
	// IngestLanes and FoldWorkers tune the aggregator's sharded ingest
	// plane (0 = defaults).
	IngestLanes int
	FoldWorkers int
}

// LoadShard is one shard's full application stack (BackendContainer
// only), with its monitoring attachment when LoadConfig.Monitor is set.
type LoadShard struct {
	Name      string
	Container *servlet.Container
	App       *tpcw.App
	Weaver    *aspect.Weaver
	Heap      *jvmheap.Heap
	Framework *core.Framework // nil unless monitored

	transport    cluster.Transport
	forwarder    *cluster.Forwarder
	flushWire    func() error
	stopSampling func()
}

// LoadStack is the assembled load tier of one process: a sharded driver
// and its per-shard backends, plus the aggregation plane when monitored.
type LoadStack struct {
	Driver *eb.ShardedDriver
	// Containers holds the per-shard application stacks
	// (BackendContainer only; empty for the model backend).
	Containers []*servlet.Container
	// Shards holds the per-shard stacks behind Containers, in shard
	// order (BackendContainer only).
	Shards []*LoadShard
	// Aggregator is the shared cluster aggregator ingesting every
	// shard's sampling rounds (nil unless LoadConfig.Monitor).
	Aggregator *cluster.Aggregator
}

// NewLoadStack assembles (but does not run) a load tier process.
func NewLoadStack(cfg LoadConfig) (*LoadStack, error) {
	if cfg.Scale.Seed == 0 {
		cfg.Scale.Seed = cfg.Seed + 1
	}
	if cfg.MonitorInterval <= 0 {
		cfg.MonitorInterval = 30 * time.Second
	}
	if cfg.MonitorBatchRounds <= 0 {
		cfg.MonitorBatchRounds = 8
	}
	ls := &LoadStack{}
	if cfg.Monitor {
		if cfg.Backend != BackendContainer {
			return nil, fmt.Errorf("experiment: LoadConfig.Monitor requires BackendContainer")
		}
		stale := 0
		if cfg.MonitorWire && cfg.MonitorBatchRounds > 1 {
			// A shard flushing a full BATCH frame runs MonitorBatchRounds
			// epochs ahead of peers still buffering; widen the staleness
			// window so that never reads as a dead shard.
			stale = 2 * cfg.MonitorBatchRounds
		}
		ls.Aggregator = cluster.New(cluster.Config{
			Detect:      cfg.Detect,
			StaleEpochs: stale,
			IngestLanes: cfg.IngestLanes,
			FoldWorkers: cfg.FoldWorkers,
		})
	}
	var factory eb.TargetFactory
	var buildErr error
	switch cfg.Backend {
	case BackendModel:
		factory = nil // ShardedDriver builds ModelTargets
	case BackendContainer:
		factory = func(shard int, engine *sim.Engine) eb.Target {
			weaver := aspect.NewWeaver(engine.Clock())
			db := sqldb.NewDB()
			app, err := tpcw.NewApp(db, weaver, engine.Clock(), cfg.Scale)
			if err != nil {
				buildErr = err
				return nil
			}
			heap := jvmheap.New(jvmheap.DefaultCapacity, engine.Clock())
			container := servlet.NewContainer(engine, weaver, db, heap, cfg.Container)
			if err := app.DeployAll(container); err != nil {
				buildErr = err
				return nil
			}
			if err := container.Start(); err != nil {
				buildErr = err
				return nil
			}
			sh := &LoadShard{
				Name:      fmt.Sprintf("shard%02d", shard+1),
				Container: container,
				App:       app,
				Weaver:    weaver,
				Heap:      heap,
			}
			if cfg.Monitor {
				if err := ls.monitorShard(sh, cfg, engine); err != nil {
					buildErr = err
					return nil
				}
			}
			ls.Containers = append(ls.Containers, container)
			ls.Shards = append(ls.Shards, sh)
			return container
		}
	default:
		return nil, fmt.Errorf("experiment: unknown load backend %d", cfg.Backend)
	}

	shardedCfg := eb.ShardedConfig{
		Shards:            cfg.Shards,
		Window:            cfg.Window,
		Seed:              cfg.Seed,
		Mix:               cfg.Mix,
		Items:             cfg.Scale.Items,
		Customers:         cfg.Scale.Customers,
		Sessions:          cfg.Sessions,
		Rate:              cfg.Rate,
		MeanSessionLength: cfg.MeanSessionLength,
		MaxSessions:       cfg.MaxSessions,
		DriverIndex:       cfg.DriverIndex,
		DriverCount:       cfg.DriverCount,
	}
	if cfg.OpenLoop {
		shardedCfg.Arrival = eb.OpenLoop
	}

	func() {
		defer func() {
			if r := recover(); r != nil && buildErr == nil {
				buildErr = fmt.Errorf("experiment: load stack: %v", r)
			}
		}()
		ls.Driver = eb.NewShardedDriver(shardedCfg, factory)
	}()
	if buildErr != nil {
		return nil, buildErr
	}
	if ls.Aggregator != nil {
		// Pre-register the shard membership so epoch alignment is a pure
		// function of the rounds, independent of shard-window timing.
		names := make([]string, len(ls.Shards))
		for i, sh := range ls.Shards {
			names[i] = sh.Name
		}
		ls.Aggregator.Expect(names...)
	}
	return ls, nil
}

// monitorShard attaches one shard stack to the aggregation plane: its
// own monitoring framework over the shard's servlets, a transport into
// the shared aggregator, and periodic sampling on the shard's engine —
// so rounds publish from the shard's goroutine at window pace, which is
// exactly the concurrent fan-in the sharded ingest lanes absorb.
func (ls *LoadStack) monitorShard(sh *LoadShard, cfg LoadConfig, engine *sim.Engine) error {
	f, err := core.New(core.Options{
		Weaver:         sh.Weaver,
		Clock:          engine.Clock(),
		Heap:           sh.Heap,
		SampleInterval: cfg.MonitorInterval,
		Node:           sh.Name,
	})
	if err != nil {
		return err
	}
	for _, comp := range tpcw.Interactions {
		servletObj, _ := sh.App.Servlet(comp)
		if err := f.InstrumentComponent(comp, servletObj); err != nil {
			return err
		}
	}
	if cfg.MonitorWire {
		client, server := net.Pipe()
		go func() { _ = ls.Aggregator.ServeBinaryConn(server) }()
		bw := cluster.NewBinaryWire(client)
		if cfg.MonitorBatchRounds > 1 {
			// Count-triggered flushes only: a real-time flush deadline has
			// no meaning on a virtual-time engine that runs hours in
			// seconds, and SyncMonitor flushes the tail.
			if err := bw.SetBatch(cfg.MonitorBatchRounds, 0); err != nil {
				return err
			}
			sh.flushWire = bw.Flush
		}
		sh.transport = bw
	} else {
		sh.transport = cluster.NewInProc(ls.Aggregator)
	}
	sh.Framework = f
	sh.forwarder = cluster.Attach(f, sh.transport)
	sh.stopSampling = f.StartSampling(engine)
	return nil
}

// InjectLeak arms the paper's memory-leak error in one component of one
// shard's stack — the sick-shard topology for fleet-scale verdict runs.
func (ls *LoadStack) InjectLeak(shard int, component string, size, n int, seed uint64) (*faultinject.MemoryLeak, error) {
	if shard < 0 || shard >= len(ls.Shards) {
		return nil, fmt.Errorf("experiment: no shard %d", shard)
	}
	sh := ls.Shards[shard]
	target, ok := sh.App.Servlet(component)
	if !ok {
		return nil, fmt.Errorf("experiment: no servlet %q on %s", component, sh.Name)
	}
	retainer, ok := target.(faultinject.Retainer)
	if !ok {
		return nil, fmt.Errorf("experiment: servlet %q is not injectable", component)
	}
	leak := &faultinject.MemoryLeak{
		Component: component,
		Target:    retainer,
		Size:      size,
		N:         n,
		Heap:      sh.Heap,
		Seed:      seed,
	}
	if err := sh.Weaver.Register(leak.Aspect()); err != nil {
		return nil, err
	}
	return leak, nil
}

// SyncMonitor flushes any partial BATCH frames and blocks until the
// aggregator has ingested every round the shard forwarders published —
// the monitored-run counterpart of ClusterStack.Sync. No-op when the
// stack is unmonitored.
func (ls *LoadStack) SyncMonitor() error {
	if ls.Aggregator == nil {
		return nil
	}
	var want int64
	for _, sh := range ls.Shards {
		if sh.flushWire != nil {
			_ = sh.flushWire() // a broken wire fails loudly at the deadline below
		}
		if sh.forwarder != nil {
			want += sh.forwarder.Rounds() - sh.forwarder.Errors()
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for ls.Aggregator.TotalRounds() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("experiment: aggregator ingested %d of %d shard rounds",
				ls.Aggregator.TotalRounds(), want)
		}
		time.Sleep(time.Millisecond)
	}
	return nil
}

// Node wraps the stack as a wire-paced fleet member for the given run
// duration (the -role driver process of cmd/tpcwsim).
func (ls *LoadStack) Node(duration time.Duration) *eb.DriverNode {
	return eb.NodeForDriver(ls.Driver, duration)
}

// Run drives the whole load locally (single-process mode).
func (ls *LoadStack) Run(duration time.Duration) {
	ls.Driver.Run(duration, nil)
}

// PeakWIPS returns the maximum per-second completion count of the run.
func (ls *LoadStack) PeakWIPS() uint32 {
	var peak uint32
	for _, v := range ls.Driver.WIPSBuckets() {
		if v > peak {
			peak = v
		}
	}
	return peak
}

// Close stops shard sampling and transports, then the per-shard
// containers (no-op for the model backend).
func (ls *LoadStack) Close() {
	for _, sh := range ls.Shards {
		if sh.stopSampling != nil {
			sh.stopSampling()
		}
		if sh.transport != nil {
			_ = sh.transport.Close()
		}
	}
	for _, c := range ls.Containers {
		c.Stop()
	}
}

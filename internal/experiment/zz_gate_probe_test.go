package experiment

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/eb"
)

func TestGateProbe(t *testing.T) {
	cfg := scenarioCfg
	cfg.TimeScale = 1.0
	cc := ClusterConfig{WireTransport: true, WireCodec: cluster.CodecBinary,
		WireBatchRounds: 4, WireBatchDelay: 2 * time.Millisecond, StaleEpochs: 8,
		IngestLanes: 8, FoldWorkers: 4}
	cc.Nodes = 3
	cc.Seed = cfg.Seed
	cc.Scale = scenarioScale(cfg)
	cc.Mix = eb.Shopping
	cc.Detect = scenarioDetectConfig()
	cc.Policy = cluster.RoundRobin
	cs, err := NewClusterStack(cc)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	cs.Driver.Run([]eb.Phase{{Duration: scaleDuration(time.Hour, cfg.TimeScale), EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	e0 := cs.Aggregator.Epoch()
	time.Sleep(500 * time.Millisecond)
	e1 := cs.Aggregator.Epoch()
	var tops []int64
	for _, n := range cs.Aggregator.Nodes() {
		tops = append(tops, n.Epoch)
	}
	t.Logf("epoch after Sync=%d, after 500ms=%d, rounds=%d, nodeEpochs=%v", e0, e1, cs.Aggregator.TotalRounds(), tops)
}

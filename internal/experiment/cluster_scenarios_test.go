package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eb"
)

func TestS5SingleNodeLeakNamesNodeAndComponent(t *testing.T) {
	res := S5SingleNodeLeak(scenarioCfg)
	if !res.Pass {
		t.Fatalf("single-node-leak scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "node2/"+ComponentA) {
		t.Fatalf("verdict does not name (node2, %s): %s", ComponentA, res.Observed)
	}
}

func TestS6UniformLeakIsClusterWide(t *testing.T) {
	res := S6UniformLeak(scenarioCfg)
	if !res.Pass {
		t.Fatalf("uniform-leak scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "cluster-wide=true") {
		t.Fatalf("verdict not promoted to cluster-wide: %s", res.Observed)
	}
}

func TestS7NodeChurnRaisesNoAlarm(t *testing.T) {
	res := S7NodeChurn(scenarioCfg)
	if !res.Pass {
		t.Fatalf("node-churn scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "0 alarms") {
		t.Fatalf("expected zero alarms: %s", res.Observed)
	}
}

func TestS8SkewedBalancerRaisesNoAlarm(t *testing.T) {
	res := S8SkewedBalancer(scenarioCfg)
	if !res.Pass {
		t.Fatalf("skewed-balancer scenario failed:\n%s", res)
	}
}

// TestClusterScenariosFullScale runs S5-S8 at the paper's full one-hour
// TimeScale — the acceptance contract requires both scales to hold.
// Skipped under -short; the four runs cost a few seconds of wall time.
func TestClusterScenariosFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale cluster scenarios skipped with -short")
	}
	cfg := scenarioCfg
	cfg.TimeScale = 1.0
	for _, run := range []func(Config) Result{
		S5SingleNodeLeak, S6UniformLeak, S7NodeChurn, S8SkewedBalancer,
	} {
		if res := run(cfg); !res.Pass {
			t.Fatalf("full-scale scenario failed:\n%s", res)
		}
	}
}

// TestClusterTransportParity is the transport-independence contract: the
// same three-node leak scenario over the in-process transport, over
// gob-on-net-pipes and over the delta-encoded binary codec must produce
// identical cluster and per-node verdicts.
func TestClusterTransportParity(t *testing.T) {
	type outcome struct {
		clusterReports map[string]cluster.ClusterReport
		nodeVerdicts   map[string]any
	}
	run := func(wire bool, codec cluster.WireCodec) outcome {
		cs, _, err := clusterScenarioStack(scenarioCfg, 3, 0, cluster.RoundRobin, wire, codec)
		if err != nil {
			t.Fatal(err)
		}
		defer cs.Close()
		if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, scenarioCfg.Seed); err != nil {
			t.Fatal(err)
		}
		cs.Driver.Run([]eb.Phase{{Duration: scaleDuration(time.Hour, scenarioCfg.TimeScale), EBs: scenarioCfg.EBs}})
		if err := cs.Sync(); err != nil {
			t.Fatal(err)
		}
		out := outcome{
			clusterReports: make(map[string]cluster.ClusterReport),
			nodeVerdicts:   make(map[string]any),
		}
		for _, res := range core.DetectorResources {
			if rep := cs.Aggregator.Report(res); rep != nil {
				c := *rep
				c.Time = time.Time{} // merged-timeline stamps may differ by clamp millis
				out.clusterReports[res] = c
			}
			for _, n := range []string{"node1", "node2", "node3"} {
				if nr := cs.Aggregator.NodeReport(n, res); nr != nil {
					// Clone: node reports are recycled ring buffers.
					out.nodeVerdicts[n+"/"+res] = nr.Clone().Components
				}
			}
		}
		return out
	}

	inproc := run(false, cluster.CodecGob)
	for _, codec := range []cluster.WireCodec{cluster.CodecGob, cluster.CodecBinary} {
		wired := run(true, codec)
		if !reflect.DeepEqual(inproc.clusterReports, wired.clusterReports) {
			t.Fatalf("cluster reports differ between in-proc and %v wire:\ninproc: %+v\nwire:   %+v",
				codec, inproc.clusterReports, wired.clusterReports)
		}
		if !reflect.DeepEqual(inproc.nodeVerdicts, wired.nodeVerdicts) {
			t.Fatalf("per-node verdicts differ between in-proc and %v wire", codec)
		}
	}
	// And the scenario's point holds everywhere: the sick pair is named.
	memRep := inproc.clusterReports[core.ResourceMemory]
	top, ok := (&memRep).Top()
	if !ok || top.Pair() != "node2/"+ComponentA {
		t.Fatalf("parity run lost the verdict: %+v", top)
	}
}

package experiment

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eb"
)

func TestS5SingleNodeLeakNamesNodeAndComponent(t *testing.T) {
	res := S5SingleNodeLeak(scenarioCfg)
	if !res.Pass {
		t.Fatalf("single-node-leak scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "node2/"+ComponentA) {
		t.Fatalf("verdict does not name (node2, %s): %s", ComponentA, res.Observed)
	}
}

func TestS6UniformLeakIsClusterWide(t *testing.T) {
	res := S6UniformLeak(scenarioCfg)
	if !res.Pass {
		t.Fatalf("uniform-leak scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "cluster-wide=true") {
		t.Fatalf("verdict not promoted to cluster-wide: %s", res.Observed)
	}
}

func TestS7NodeChurnRaisesNoAlarm(t *testing.T) {
	res := S7NodeChurn(scenarioCfg)
	if !res.Pass {
		t.Fatalf("node-churn scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "0 alarms") {
		t.Fatalf("expected zero alarms: %s", res.Observed)
	}
}

func TestS8SkewedBalancerRaisesNoAlarm(t *testing.T) {
	res := S8SkewedBalancer(scenarioCfg)
	if !res.Pass {
		t.Fatalf("skewed-balancer scenario failed:\n%s", res)
	}
}

// TestClusterScenariosFullScale runs S5-S8 at the paper's full one-hour
// TimeScale — the acceptance contract requires both scales to hold.
// Skipped under -short; the four runs cost a few seconds of wall time.
func TestClusterScenariosFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale cluster scenarios skipped with -short")
	}
	cfg := scenarioCfg
	cfg.TimeScale = 1.0
	for _, run := range []func(Config) Result{
		S5SingleNodeLeak, S6UniformLeak, S7NodeChurn, S8SkewedBalancer,
	} {
		if res := run(cfg); !res.Pass {
			t.Fatalf("full-scale scenario failed:\n%s", res)
		}
	}
}

// parityOutcome is everything a parity run compares: final cluster
// reports (times stripped — the merged timeline's stamp may differ by
// clamp millis) and per-node verdict components.
type parityOutcome struct {
	clusterReports map[string]cluster.ClusterReport
	nodeVerdicts   map[string]any
}

// runParityScenario drives the three-node sick-replica scenario on a
// cluster assembled from cc (scenario scale/detect tuning applied on
// top) and returns the outcome.
func runParityScenario(t *testing.T, cfg Config, cc ClusterConfig) parityOutcome {
	t.Helper()
	cc.Nodes = 3
	cc.Seed = cfg.Seed
	cc.Scale = scenarioScale(cfg)
	cc.Mix = eb.Shopping
	cc.Detect = scenarioDetectConfig()
	cc.Policy = cluster.RoundRobin
	cs, err := NewClusterStack(cc)
	if err != nil {
		t.Fatal(err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		t.Fatal(err)
	}
	cs.Driver.Run([]eb.Phase{{Duration: scaleDuration(time.Hour, cfg.TimeScale), EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		t.Fatal(err)
	}
	out := parityOutcome{
		clusterReports: make(map[string]cluster.ClusterReport),
		nodeVerdicts:   make(map[string]any),
	}
	for _, res := range core.DetectorResources {
		if rep := cs.Aggregator.Report(res); rep != nil {
			c := *rep
			c.Time = time.Time{} // merged-timeline stamps may differ by clamp millis
			out.clusterReports[res] = c
		}
		for _, n := range []string{"node1", "node2", "node3"} {
			if nr := cs.Aggregator.NodeReport(n, res); nr != nil {
				out.nodeVerdicts[n+"/"+res] = nr.Components
			}
		}
	}
	return out
}

// parityVariants is the transport × aggregator-plane matrix every parity
// run must agree across: the serial reference aggregator in-process,
// then the sharded/parallel-fold aggregator over every transport —
// in-process, gob on net pipes, the delta-encoded binary codec, and the
// binary codec with the v5 BATCH flush policy (4 rounds per frame with a
// short deadline).
var parityVariants = []struct {
	name string
	cc   ClusterConfig
}{
	{"inproc-sharded", ClusterConfig{IngestLanes: 8, FoldWorkers: 4}},
	{"gob-sharded", ClusterConfig{WireTransport: true, IngestLanes: 8, FoldWorkers: 4}},
	{"binary-sharded", ClusterConfig{WireTransport: true, WireCodec: cluster.CodecBinary, IngestLanes: 8, FoldWorkers: 4}},
	// Batching lets the flushing node run WireBatchRounds epochs ahead,
	// so the staleness window widens with it (StaleEpochs > batch) — the
	// deployment rule ClusterConfig documents. Eviction never fires in
	// any parity run, so the widened window changes no verdict.
	{"binary-batched-sharded", ClusterConfig{WireTransport: true, WireCodec: cluster.CodecBinary,
		WireBatchRounds: 4, WireBatchDelay: 2 * time.Millisecond, StaleEpochs: 8,
		IngestLanes: 8, FoldWorkers: 4}},
}

// TestClusterTransportParity is the transport- and plane-independence
// contract: the same three-node leak scenario must produce identical
// cluster and per-node verdicts whatever carries the rounds (in-process
// calls, gob frames, binary v5 frames, batched binary v5 frames) and
// whatever folds them (the serial reference aggregator or the sharded
// ingest plane with a parallel fold pool).
func TestClusterTransportParity(t *testing.T) {
	serial := runParityScenario(t, scenarioCfg, ClusterConfig{IngestLanes: 1, FoldWorkers: 1})
	for _, v := range parityVariants {
		got := runParityScenario(t, scenarioCfg, v.cc)
		if !reflect.DeepEqual(serial.clusterReports, got.clusterReports) {
			t.Fatalf("cluster reports differ between serial in-proc and %s:\nserial: %+v\ngot:    %+v",
				v.name, serial.clusterReports, got.clusterReports)
		}
		if !reflect.DeepEqual(serial.nodeVerdicts, got.nodeVerdicts) {
			t.Fatalf("per-node verdicts differ between serial in-proc and %s", v.name)
		}
	}
	// And the scenario's point holds everywhere: the sick pair is named.
	memRep := serial.clusterReports[core.ResourceMemory]
	top, ok := (&memRep).Top()
	if !ok || top.Pair() != "node2/"+ComponentA {
		t.Fatalf("parity run lost the verdict: %+v", top)
	}
}

// TestClusterTransportParityFullScale re-runs the parity contract at the
// paper's full one-hour TimeScale against the deployment-shaped variant
// (sharded aggregator, batched binary wire). Skipped under -short.
func TestClusterTransportParityFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale parity skipped with -short")
	}
	cfg := scenarioCfg
	cfg.TimeScale = 1.0
	serial := runParityScenario(t, cfg, ClusterConfig{IngestLanes: 1, FoldWorkers: 1})
	batched := runParityScenario(t, cfg, parityVariants[len(parityVariants)-1].cc)
	if !reflect.DeepEqual(serial.clusterReports, batched.clusterReports) {
		t.Fatalf("full-scale cluster reports differ:\nserial:  %+v\nbatched: %+v",
			serial.clusterReports, batched.clusterReports)
	}
	if !reflect.DeepEqual(serial.nodeVerdicts, batched.nodeVerdicts) {
		t.Fatal("full-scale per-node verdicts differ")
	}
}

package experiment

import (
	"strings"
	"testing"
)

func TestS20KillAggregatorMidLeakVerdictSurvives(t *testing.T) {
	res := S20KillAggregatorMidLeak(scenarioCfg)
	if !res.Pass {
		t.Fatalf("aggregator-kill scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "0 failed requests") {
		t.Fatalf("requests were dropped during failover: %s", res.Observed)
	}
	if res.Accuracy == nil || res.Accuracy.TTDRounds == 0 {
		t.Fatal("S20 carries no detection latency")
	}
}

func TestS21FailoverMidDrainSingleReboot(t *testing.T) {
	res := S21FailoverMidDrain(scenarioCfg)
	if !res.Pass {
		t.Fatalf("mid-drain failover scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "micro-reboots: 1") {
		t.Fatalf("node2 was not rebooted exactly once: %s", res.Observed)
	}
	if !strings.Contains(res.Observed, "0 failed requests") {
		t.Fatalf("requests were dropped across the failover: %s", res.Observed)
	}
}

func TestS22RoundStormExactAccounting(t *testing.T) {
	res := S22RoundStormOverload(scenarioCfg)
	if !res.Pass {
		t.Fatalf("round-storm scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "accounted: true") {
		t.Fatalf("storm accounting did not balance: %s", res.Observed)
	}
}

// TestRobustnessScenariosFullScale re-runs the failover and overload
// litmus at the paper's full TimeScale — the acceptance contract
// requires S20-S22 to hold at both scales. Skipped under -short.
func TestRobustnessScenariosFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale robustness scenarios skipped with -short")
	}
	cfg := scenarioCfg
	cfg.TimeScale = 1.0
	for _, run := range []func(Config) Result{
		S20KillAggregatorMidLeak, S21FailoverMidDrain, S22RoundStormOverload,
	} {
		if res := run(cfg); !res.Pass {
			t.Fatalf("full-scale robustness scenario failed:\n%s", res)
		}
	}
}

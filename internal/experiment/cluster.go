package experiment

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/faultinject"
	"repro/internal/jmx"
	"repro/internal/jvmheap"
	"repro/internal/rejuv"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

// ClusterConfig sizes a simulated cluster: N full application-server
// nodes (servlet container + TPC-W + monitoring framework) behind a
// balancer, reporting to one aggregator.
type ClusterConfig struct {
	// Nodes is the initial cluster size (minimum 1).
	Nodes int
	// Spares is how many extra nodes to build but keep out of the
	// cluster (no balancer membership, no sampling) so a scenario can
	// Join them mid-run.
	Spares int
	// Seed drives every random stream.
	Seed uint64
	// Scale sizes each node's TPC-W database (identical replicas).
	Scale tpcw.Scale
	// HeapBytes sizes each node's simulated JVM heap.
	HeapBytes int64
	// SampleInterval is the per-node manager sampling period (default
	// 30s), which is also the cluster epoch cadence.
	SampleInterval time.Duration
	// Mix is the EB workload mix.
	Mix eb.Mix
	// Detect tunes the aggregator's per-node detector banks.
	Detect detect.Config
	// Policy selects the balancer's assignment policy.
	Policy cluster.Policy
	// Quorum overrides the aggregator's cluster-wide quorum fraction.
	Quorum float64
	// WireTransport ships rounds over net.Pipe connections instead of
	// in-process calls, exercising a real serialisation path; verdicts
	// must not depend on the choice.
	WireTransport bool
	// WireCodec selects the serialisation when WireTransport is set:
	// gob (the default) or the delta-encoded binary codec.
	WireCodec cluster.WireCodec
	// WireBatchRounds, when > 1 with the binary codec, buffers that many
	// rounds per BATCH frame on each node's wire (the fleet fan-in flush
	// policy). Verdicts must not depend on it — Sync flushes partial
	// batches before its round barrier. A node that flushes a full batch
	// runs up to WireBatchRounds epochs ahead of peers still buffering,
	// so StaleEpochs must exceed the batch or laggards evict spuriously.
	WireBatchRounds int
	// WireBatchDelay bounds how long a partial batch may wait for its
	// count trigger (0: only the count and Sync flush).
	WireBatchDelay time.Duration
	// StaleEpochs overrides the aggregator's laggard-eviction window
	// (0 = its default). Size it above WireBatchRounds when batching.
	StaleEpochs int
	// IngestLanes and FoldWorkers tune the aggregator's sharded ingest
	// plane (0 = defaults; 1/1 = the serial reference configuration).
	// Verdicts must not depend on either.
	IngestLanes int
	FoldWorkers int
	// Rejuv, when non-nil, closes the loop: a rejuvenation controller
	// subscribes to the aggregator's epoch verdicts and drives the
	// drain / micro-reboot / probation / re-admit cycle against the
	// balancer and the nodes' frameworks (wire control frames under
	// WireTransport+CodecBinary, synchronous local handlers otherwise).
	Rejuv *rejuv.Config
	// RejuvControl, when set with Rejuv, wraps the controller's command
	// channel — the hook chaos scenarios use to lose or delay actuation
	// commands without touching the verdict path.
	RejuvControl func(rejuv.CommandSender) rejuv.CommandSender
	// Chaos, when non-nil, may wrap each node's monitoring transport
	// (e.g. in a faultinject.ChaosTransport for partition or clock-skew
	// faults). It is applied above the framing codec, per the chaos
	// transport's loss-discipline contract. Returning the transport
	// unchanged leaves the node untouched.
	Chaos func(node string, tr cluster.Transport) cluster.Transport
	// Standby arms warm-standby failover: the aggregator's durable
	// state — and the rejuvenation controller's, when Rejuv is set —
	// ships over a v6 SNAPSHOT stream (a real net.Pipe wire) to a
	// standby receiver after every epoch, and FailOver kills the active
	// plane and promotes the standby mid-run. Requires the in-process
	// round transport (the per-node wire rebind is a deployment concern
	// the simulation does not model).
	Standby bool
	// LaneQueueDepth and NotifCap pass through to the aggregator's
	// overload protection (0 = defaults): the per-lane ingest admission
	// bound and the pending-notification cap.
	LaneQueueDepth int
	NotifCap       int
}

// ClusterNode is one application-server node of a ClusterStack.
type ClusterNode struct {
	Name      string
	Weaver    *aspect.Weaver
	DB        *sqldb.DB
	App       *tpcw.App
	Heap      *jvmheap.Heap
	Container *servlet.Container
	Framework *core.Framework

	transport    cluster.Transport
	forwarder    *cluster.Forwarder
	flushWire    func() error // ships a partial BATCH now (nil when unbatched)
	stopSampling func()
	inCluster    bool
	// Failover plumbing (Standby stacks only): the swappable transport
	// the forwarder publishes through, and the node's control handler
	// for re-binding on the promoted aggregator.
	retarget *retargetTransport
	control  cluster.ControlHandler
}

// Forwarder exposes the node's round forwarder, whose publish/error/drop
// counters are the node-side half of the wire accounting (the aggregator
// holds the ingest/shed half).
func (n *ClusterNode) Forwarder() *cluster.Forwarder { return n.forwarder }

// retargetTransport lets FailOver repoint a node's publish stream at the
// promoted aggregator without touching the forwarder above it — the
// simulation's stand-in for a node reconnecting to the standby's
// address.
type retargetTransport struct {
	mu    sync.Mutex
	inner cluster.Transport
}

func (t *retargetTransport) Publish(r cluster.Round) error {
	t.mu.Lock()
	tr := t.inner
	t.mu.Unlock()
	return tr.Publish(r)
}

func (t *retargetTransport) Close() error {
	t.mu.Lock()
	tr := t.inner
	t.mu.Unlock()
	return tr.Close()
}

func (t *retargetTransport) set(tr cluster.Transport) {
	t.mu.Lock()
	t.inner = tr
	t.mu.Unlock()
}

// ClusterStack is a fully assembled simulated cluster: the nodes, the
// balancer fronting their containers, the aggregator merging their
// sampling rounds, a cluster-plane MBeanServer carrying the aggregator
// bean and its notifications, and an EB driver aimed at the balancer.
type ClusterStack struct {
	Engine     *sim.Engine
	Nodes      []*ClusterNode
	Balancer   *cluster.Balancer
	Aggregator *cluster.Aggregator
	Server     *jmx.Server // cluster management plane
	Driver     *eb.Driver
	Rejuv      *rejuv.Controller // nil unless ClusterConfig.Rejuv was set

	sampleInterval time.Duration
	stopPump       func()

	// Failover state (Standby stacks only). aggCfg/rejuvCfg/rejuvWrap
	// are retained so a promotion builds the standby plane with the
	// exact configuration the snapshots' Restore validates against.
	aggCfg     cluster.Config
	rejuvCfg   *rejuv.Config
	rejuvWrap  func(rejuv.CommandSender) rejuv.CommandSender
	shipper    *cluster.StandbyShipper
	standby    *cluster.StandbyReceiver
	standbyErr chan error
	// lostRounds counts rounds the dead active ingested after its last
	// shipped generation — lost with it, excluded from Sync's barrier.
	lostRounds int64
}

// NewClusterStack builds and starts a cluster.
func NewClusterStack(cfg ClusterConfig) (*ClusterStack, error) {
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("experiment: ClusterConfig.Nodes must be >= 1")
	}
	if cfg.HeapBytes <= 0 {
		cfg.HeapBytes = jvmheap.DefaultCapacity
	}
	if cfg.SampleInterval <= 0 {
		cfg.SampleInterval = 30 * time.Second
	}
	if cfg.Scale.Seed == 0 {
		cfg.Scale.Seed = cfg.Seed + 1
	}
	if cfg.Standby && cfg.WireTransport {
		return nil, fmt.Errorf("experiment: Standby failover requires the in-process transport")
	}
	engine := sim.NewEngine()
	aggCfg := cluster.Config{
		Detect:         cfg.Detect,
		Quorum:         cfg.Quorum,
		StaleEpochs:    cfg.StaleEpochs,
		IngestLanes:    cfg.IngestLanes,
		FoldWorkers:    cfg.FoldWorkers,
		LaneQueueDepth: cfg.LaneQueueDepth,
		NotifCap:       cfg.NotifCap,
	}
	agg := cluster.New(aggCfg)
	clusterServer := jmx.NewServer(engine.Clock())
	if err := clusterServer.Register(cluster.AggregatorName(), agg.Bean()); err != nil {
		return nil, err
	}
	balancer := cluster.NewBalancer(cfg.Policy)

	cs := &ClusterStack{
		Engine:         engine,
		Balancer:       balancer,
		Aggregator:     agg,
		Server:         clusterServer,
		sampleInterval: cfg.SampleInterval,
		aggCfg:         aggCfg,
		rejuvCfg:       cfg.Rejuv,
		rejuvWrap:      cfg.RejuvControl,
	}

	total := cfg.Nodes + cfg.Spares
	var initial []string
	for i := 1; i <= total; i++ {
		name := fmt.Sprintf("node%d", i)
		node, err := cs.buildNode(name, cfg)
		if err != nil {
			cs.Close()
			return nil, err
		}
		cs.Nodes = append(cs.Nodes, node)
		if i <= cfg.Nodes {
			initial = append(initial, name)
		}
	}
	// Pre-register the initial membership so epoch alignment is a pure
	// function of the rounds, independent of transport timing.
	cs.Aggregator.Expect(initial...)
	for _, node := range cs.Nodes[:cfg.Nodes] {
		cs.activate(node)
	}

	if cfg.Rejuv != nil {
		var sender rejuv.CommandSender = agg
		if cfg.RejuvControl != nil {
			sender = cfg.RejuvControl(sender)
		}
		ctrl := rejuv.New(*cfg.Rejuv, balancer, sender)
		ctrl.SetDetectorReset(agg)
		ctrl.Track(initial...)
		agg.SubscribeEpochs(ctrl.ObserveEpoch)
		if err := clusterServer.Register(rejuv.Name(), ctrl.Bean()); err != nil {
			cs.Close()
			return nil, err
		}
		cs.Rejuv = ctrl
	}

	if cfg.Standby {
		// Ship after the controller's subscription, so a generation
		// reflects the controller's post-epoch state — the pairing the
		// SNAPSHOT frame makes atomic.
		cs.armStandby()
	}

	// The notification pump turns queued aggregator transitions into
	// cluster-plane JMX notifications once per sampling period.
	cs.stopPump = engine.Every(cfg.SampleInterval, func(time.Time) {
		cs.FlushNotifications()
	})

	cs.Driver = eb.NewDriver(engine, balancer, eb.Config{
		Mix:       cfg.Mix,
		Seed:      cfg.Seed,
		Items:     cfg.Scale.Items,
		Customers: cfg.Scale.Customers,
	})
	return cs, nil
}

// buildNode assembles one full application-server node with its own
// weaver, database replica, heap, container and monitoring framework.
func (cs *ClusterStack) buildNode(name string, cfg ClusterConfig) (*ClusterNode, error) {
	engine := cs.Engine
	weaver := aspect.NewWeaver(engine.Clock())
	db := sqldb.NewDB()
	app, err := tpcw.NewApp(db, weaver, engine.Clock(), cfg.Scale)
	if err != nil {
		return nil, err
	}
	heap := jvmheap.New(cfg.HeapBytes, engine.Clock())
	container := servlet.NewContainer(engine, weaver, db, heap, servlet.Config{})
	if err := app.DeployAll(container); err != nil {
		return nil, err
	}
	if err := container.Start(); err != nil {
		return nil, err
	}
	f, err := core.New(core.Options{
		Weaver:         weaver,
		Clock:          engine.Clock(),
		Heap:           heap,
		SampleInterval: cfg.SampleInterval,
		Node:           name,
	})
	if err != nil {
		return nil, err
	}
	for _, comp := range tpcw.Interactions {
		servletObj, _ := app.Servlet(comp)
		if err := f.InstrumentComponent(comp, servletObj); err != nil {
			return nil, err
		}
	}

	var tr cluster.Transport
	var flushWire func() error
	wireControl := false
	if cfg.WireTransport {
		client, server := net.Pipe()
		switch cfg.WireCodec {
		case cluster.CodecBinary:
			go func() { _ = cs.Aggregator.ServeBinaryConn(server) }()
			bw := cluster.NewBinaryWire(client)
			if cfg.WireBatchRounds > 1 {
				if err := bw.SetBatch(cfg.WireBatchRounds, cfg.WireBatchDelay); err != nil {
					return nil, err
				}
				// Keep the raw wire in hand: Chaos may wrap the transport,
				// but Sync's barrier still needs to flush partial batches.
				flushWire = bw.Flush
			}
			// The actuation direction of the same connection: control
			// frames in, ACK frames out, interleaved with BATCH frames.
			go func() { _ = bw.ServeControl(cluster.FrameworkControlHandler(f)) }()
			wireControl = true
			tr = bw
		default:
			go func() { _ = cs.Aggregator.ServeConn(server) }()
			tr = cluster.NewWire(client)
		}
	} else {
		tr = cluster.NewInProc(cs.Aggregator)
	}
	var control cluster.ControlHandler
	if !wireControl {
		// Gob and in-process streams carry no control frames; actuation
		// reaches the framework through a synchronous local binding.
		control = cluster.FrameworkControlHandler(f)
		cs.Aggregator.BindLocalControl(name, control)
	}
	if cfg.Chaos != nil {
		tr = cfg.Chaos(name, tr)
	}
	var retarget *retargetTransport
	if cfg.Standby {
		retarget = &retargetTransport{inner: tr}
		tr = retarget
	}
	node := &ClusterNode{
		Name:      name,
		Weaver:    weaver,
		DB:        db,
		App:       app,
		Heap:      heap,
		Container: container,
		Framework: f,
		transport: tr,
		flushWire: flushWire,
		forwarder: cluster.Attach(f, tr),
		retarget:  retarget,
		control:   control,
	}
	if err := cs.Server.Register(cluster.ForwarderName(name), node.forwarder.Bean()); err != nil {
		return nil, err
	}
	return node, nil
}

// activate puts a node into service: balancer membership plus periodic
// sampling (whose rounds flow to the aggregator via the forwarder).
func (cs *ClusterStack) activate(node *ClusterNode) {
	if node.inCluster {
		return
	}
	node.inCluster = true
	cs.Balancer.AddNode(node.Name, node.Container, 1)
	node.stopSampling = node.Framework.StartSampling(cs.Engine)
}

// Node returns a node by name (nil when unknown).
func (cs *ClusterStack) Node(name string) *ClusterNode {
	for _, n := range cs.Nodes {
		if n.Name == name {
			return n
		}
	}
	return nil
}

// Join puts a spare node into service mid-run: it starts receiving new
// sessions from the balancer and reporting sampling rounds, and the
// aggregator folds it in with the churn hold-down.
func (cs *ClusterStack) Join(name string) error {
	node := cs.Node(name)
	if node == nil {
		return fmt.Errorf("experiment: no node %q", name)
	}
	cs.activate(node)
	if cs.Rejuv != nil {
		cs.Rejuv.Track(name)
	}
	return nil
}

// Leave takes a node out of service mid-run: the balancer unpins its
// sessions, sampling stops, and the aggregator marks it inactive.
func (cs *ClusterStack) Leave(name string) error {
	node := cs.Node(name)
	if node == nil {
		return fmt.Errorf("experiment: no node %q", name)
	}
	if !node.inCluster {
		return fmt.Errorf("experiment: node %q is not in the cluster", name)
	}
	node.inCluster = false
	cs.Balancer.RemoveNode(name)
	if node.stopSampling != nil {
		node.stopSampling()
		node.stopSampling = nil
	}
	// Drain rounds already in flight on a wire transport before marking
	// the node gone, so a frame decoded after Leave cannot rejoin it.
	if err := cs.Sync(); err != nil {
		return err
	}
	cs.Aggregator.Leave(name)
	return nil
}

// InjectLeak arms the paper's memory-leak error in one component on one
// node — the "sick replica" topology a single-process deployment cannot
// express.
func (cs *ClusterStack) InjectLeak(nodeName, component string, size, n int, seed uint64) (*faultinject.MemoryLeak, error) {
	node := cs.Node(nodeName)
	if node == nil {
		return nil, fmt.Errorf("experiment: no node %q", nodeName)
	}
	target, ok := node.App.Servlet(component)
	if !ok {
		return nil, fmt.Errorf("experiment: no servlet %q on %s", component, nodeName)
	}
	retainer, ok := target.(faultinject.Retainer)
	if !ok {
		return nil, fmt.Errorf("experiment: servlet %q is not injectable", component)
	}
	leak := &faultinject.MemoryLeak{
		Component: component,
		Target:    retainer,
		Size:      size,
		N:         n,
		Heap:      node.Heap,
		Seed:      seed,
	}
	if err := node.Weaver.Register(leak.Aspect()); err != nil {
		return nil, err
	}
	return leak, nil
}

// Sync blocks until every published round has been ingested — a no-op
// for the in-process transport, and the wire transports' drain barrier
// (gob decoding happens on reader goroutines, so the engine can finish a
// schedule a few rounds before the aggregator does). Batched binary
// wires flush their partial frames first, so a buffered round cannot
// stall the barrier.
func (cs *ClusterStack) Sync() error {
	var want int64
	for _, n := range cs.Nodes {
		if n.flushWire != nil {
			// A flush error means the wire is broken; its lost rounds
			// surface as forwarder errors on later publishes, and the
			// barrier below already tolerates what never arrived only via
			// the deadline — fail loudly there with the ingest count.
			_ = n.flushWire()
		}
		if n.forwarder != nil {
			want += n.forwarder.Rounds() - n.forwarder.Errors()
		}
	}
	// Rounds that died with a failed-over aggregator can never arrive.
	want -= cs.lostRounds
	deadline := time.Now().Add(10 * time.Second)
	for cs.Aggregator.TotalRounds() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("experiment: aggregator ingested %d of %d rounds",
				cs.Aggregator.TotalRounds(), want)
		}
		time.Sleep(time.Millisecond)
	}
	// Rounds are counted before the folds they complete publish; fold to
	// the final watermark before callers read reports.
	cs.Aggregator.SyncFolds()
	cs.FlushNotifications()
	return nil
}

// FlushNotifications emits any queued aggregator notifications without
// Sync's round barrier — the barrier counts every round the forwarders
// handed to their transports, which a deliberately lossy chaos transport
// (partition faults) would stall forever.
func (cs *ClusterStack) FlushNotifications() {
	for _, n := range cs.Aggregator.DrainNotifications() {
		cs.Server.Emit(n)
	}
	if cs.Rejuv != nil {
		for _, n := range cs.Rejuv.DrainNotifications() {
			cs.Server.Emit(n)
		}
	}
}

// armStandby wires a fresh standby receiver to the current aggregator
// over a v6 SNAPSHOT pipe, shipping every epoch.
func (cs *ClusterStack) armStandby() {
	shipConn, recvConn := net.Pipe()
	cs.standby = cluster.NewStandbyReceiver()
	cs.standbyErr = make(chan error, 1)
	recv, errs := cs.standby, cs.standbyErr
	go func() { errs <- recv.Serve(recvConn) }()
	var ctl cluster.Snapshotter
	if cs.Rejuv != nil {
		ctl = cs.Rejuv
	}
	cs.shipper = cluster.NewStandbyShipper(shipConn, cs.Aggregator, ctl, 1)
	cs.Aggregator.SubscribeEpochs(cs.shipper.ObserveEpoch)
}

// FailOver kills the active monitoring plane mid-run — the aggregator
// and, when armed, its rejuvenation controller die together — and
// promotes the warm standby from the last shipped SNAPSHOT generation.
// Every node's publish stream and control binding is repointed at the
// promoted aggregator; the promoted controller reconciles any actuation
// the dead plane left in flight; a fresh standby is armed so a later
// failover remains possible. Rounds the dead active absorbed after its
// last ship are lost with it (the failover window), and Sync's barrier
// accounts for them.
func (cs *ClusterStack) FailOver() error {
	if cs.shipper == nil {
		return fmt.Errorf("experiment: stack built without Standby")
	}
	_ = cs.shipper.Close()
	if err := <-cs.standbyErr; err != nil {
		return fmt.Errorf("experiment: standby stream: %w", err)
	}
	latest, ok := cs.standby.Latest()
	if !ok {
		return fmt.Errorf("experiment: no snapshot generation shipped before failover")
	}

	promoted := cluster.New(cs.aggCfg)
	if err := promoted.Restore(latest.Aggregator); err != nil {
		return fmt.Errorf("experiment: promote aggregator: %w", err)
	}

	// Account for the failover window before any new round arrives.
	var published int64
	for _, n := range cs.Nodes {
		if n.forwarder != nil {
			published += n.forwarder.Rounds() - n.forwarder.Errors()
		}
	}
	cs.lostRounds += published - promoted.TotalRounds()

	// Repoint every node at the promoted plane.
	for _, n := range cs.Nodes {
		if n.retarget != nil {
			n.retarget.set(cluster.NewInProc(promoted))
		}
		if n.control != nil {
			promoted.BindLocalControl(n.Name, n.control)
		}
	}
	// The dead active keeps no wires; its epoch subscribers (the old
	// controller, the old shipper) die with it.
	cs.Aggregator = promoted
	_ = cs.Server.Unregister(cluster.AggregatorName())
	if err := cs.Server.Register(cluster.AggregatorName(), promoted.Bean()); err != nil {
		return err
	}

	// The controller's twin restores from the same generation, then
	// reconciles whatever actuation the dead plane left orphaned.
	if cs.Rejuv != nil {
		var sender rejuv.CommandSender = promoted
		if cs.rejuvWrap != nil {
			sender = cs.rejuvWrap(sender)
		}
		ctrl := rejuv.New(*cs.rejuvCfg, cs.Balancer, sender)
		if err := ctrl.Restore(latest.Controller); err != nil {
			return fmt.Errorf("experiment: promote controller: %w", err)
		}
		ctrl.SetDetectorReset(promoted)
		promoted.SubscribeEpochs(ctrl.ObserveEpoch)
		cs.Rejuv = ctrl
		_ = cs.Server.Unregister(rejuv.Name())
		if err := cs.Server.Register(rejuv.Name(), ctrl.Bean()); err != nil {
			return err
		}
		ctrl.ReconcileOrphans()
	}

	cs.armStandby()
	return nil
}

// Close stops sampling, the notification pump, the transports and the
// containers.
func (cs *ClusterStack) Close() {
	if cs.stopPump != nil {
		cs.stopPump()
	}
	if cs.shipper != nil {
		_ = cs.shipper.Close()
	}
	for _, n := range cs.Nodes {
		if n.stopSampling != nil {
			n.stopSampling()
		}
		if n.transport != nil {
			_ = n.transport.Close()
		}
		if n.Container != nil {
			n.Container.Stop()
		}
	}
}

package experiment

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/rootcause"
)

// The accuracy harness closes the loop the ISSUE's litmus catalog opens:
// every S-series scenario injects a known fault (or deliberately none)
// and records what the detection plane named, so the full matrix can be
// scored as precision/recall against fault-injected ground truth — with
// time-to-detect calibration — and gated in CI against a committed
// baseline (scripts/scenariomatrix.sh vs ACCURACY_baseline.json).

// Accuracy is one scenario's ground truth and detection outcome.
type Accuracy struct {
	// Truth lists the injected suspects — bare component names for the
	// single-process scenarios, "node/component" pairs for cluster ones,
	// "cluster/component" for uniform faults. Empty means no fault was
	// injected and the detection plane had to stay quiet.
	Truth []string
	// Flagged lists what the detection plane had named by the end of the
	// run, in the same vocabulary as Truth.
	Flagged []string
	// TTDRounds is the time to detect, in sampling rounds (cluster
	// epochs) from the injection instant to the first correct alarm;
	// zero when nothing was (or had to be) detected.
	TTDRounds int64
	// PreInjectionAlarms counts alarms raised while no fault was armed —
	// the steady-state hypothesis requires zero.
	PreInjectionAlarms int
	// RecoveryEpochs is the time to recover, in cluster epochs from the
	// injection instant to the sick node's re-admission at full weight
	// (actuation scenarios only); zero when nothing was rejuvenated.
	RecoveryEpochs int64
}

// ScenarioAccuracy is one scored matrix row.
type ScenarioAccuracy struct {
	ID                 string
	Passed             bool
	Truth              []string
	Flagged            []string
	TP, FP, FN         int
	Precision          float64
	Recall             float64
	TTDRounds          int64
	PreInjectionAlarms int
	RecoveryEpochs     int64
}

// AccuracyReport is the machine-readable matrix artifact
// (accuracy_report.json).
type AccuracyReport struct {
	Scale     float64
	Seed      uint64
	Scenarios []ScenarioAccuracy
	// TP/FP/FN and Precision/Recall are micro-averaged over the matrix.
	TP, FP, FN int
	Precision  float64
	Recall     float64
	// MeanTTDRounds averages TTD over the scenarios that detected.
	MeanTTDRounds float64
	// MeanRecoveryEpochs averages recovery-to-readmit over the scenarios
	// that rejuvenated.
	MeanRecoveryEpochs float64
	// PreInjectionAlarms sums the steady-state violations (must be 0).
	PreInjectionAlarms int
}

// BuildAccuracyReport scores every result that carries ground truth.
// Results without an Accuracy record (tables, figures, ablations) are
// skipped, so the caller can hand over a full experiment run.
func BuildAccuracyReport(cfg Config, results []Result) AccuracyReport {
	cfg = cfg.withDefaults()
	rep := AccuracyReport{Scale: cfg.TimeScale, Seed: cfg.Seed}
	var ttdSum, recSum float64
	var ttdN, recN int
	for _, r := range results {
		if r.Accuracy == nil {
			continue
		}
		a := r.Accuracy
		tp, fp, fn, p, rc := rootcause.PrecisionRecall(a.Flagged, a.Truth)
		rep.Scenarios = append(rep.Scenarios, ScenarioAccuracy{
			ID: r.ID, Passed: r.Pass,
			Truth: a.Truth, Flagged: a.Flagged,
			TP: tp, FP: fp, FN: fn,
			Precision: p, Recall: rc,
			TTDRounds: a.TTDRounds, PreInjectionAlarms: a.PreInjectionAlarms,
			RecoveryEpochs: a.RecoveryEpochs,
		})
		rep.TP += tp
		rep.FP += fp
		rep.FN += fn
		rep.PreInjectionAlarms += a.PreInjectionAlarms
		if a.TTDRounds > 0 {
			ttdSum += float64(a.TTDRounds)
			ttdN++
		}
		if a.RecoveryEpochs > 0 {
			recSum += float64(a.RecoveryEpochs)
			recN++
		}
	}
	rep.Precision, rep.Recall = 1, 1
	if rep.TP+rep.FP > 0 {
		rep.Precision = float64(rep.TP) / float64(rep.TP+rep.FP)
	}
	if rep.TP+rep.FN > 0 {
		rep.Recall = float64(rep.TP) / float64(rep.TP+rep.FN)
	}
	if ttdN > 0 {
		rep.MeanTTDRounds = ttdSum / float64(ttdN)
	}
	if recN > 0 {
		rep.MeanRecoveryEpochs = recSum / float64(recN)
	}
	return rep
}

// JSON renders the report as the committed-artifact form.
func (r AccuracyReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the human-readable matrix table.
func (r AccuracyReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "scenario matrix accuracy (scale %.2f, seed %d)\n", r.Scale, r.Seed)
	t := NewTable("scenario", "pass", "truth", "flagged", "P", "R", "TTD", "TTR", "pre-inj")
	for _, s := range r.Scenarios {
		t.Row(s.ID, s.Passed, setLabel(s.Truth), setLabel(s.Flagged),
			fmt.Sprintf("%.2f", s.Precision), fmt.Sprintf("%.2f", s.Recall),
			s.TTDRounds, s.RecoveryEpochs, s.PreInjectionAlarms)
	}
	b.WriteString(t.String())
	fmt.Fprintf(&b, "overall: precision %.3f (%d TP, %d FP), recall %.3f (%d FN), mean TTD %.1f rounds, mean TTR %.1f epochs, %d pre-injection alarms\n",
		r.Precision, r.TP, r.FP, r.Recall, r.FN, r.MeanTTDRounds, r.MeanRecoveryEpochs, r.PreInjectionAlarms)
	return b.String()
}

func setLabel(set []string) string {
	if len(set) == 0 {
		return "(none)"
	}
	return strings.Join(set, "+")
}

package experiment

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/aspect"
	"repro/internal/core"
	"repro/internal/eb"
	"repro/internal/faultinject"
	"repro/internal/objsize"
	"repro/internal/rootcause"
	"repro/internal/tpcw"
)

// E8CPUThreadLeaks covers the paper's future work: applying the framework
// to CPU and thread leaks. A CPU hog is injected into search_results and a
// thread leak into buy_confirm; the CPU and thread maps must point at the
// right components.
func E8CPUThreadLeaks(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := NewStack(StackConfig{
		Seed:      cfg.Seed,
		Scale:     tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1},
		Monitored: true,
		Mix:       eb.Shopping,
	})
	if err != nil {
		return errResult("E8", err)
	}
	defer s.Close()

	hog := &faultinject.CPUHog{
		Component: tpcw.CompSearchResults,
		Extra:     40 * time.Millisecond,
		EveryN:    1,
	}
	if err := s.Weaver.Register(hog.Aspect()); err != nil {
		return errResult("E8", err)
	}
	tl := &faultinject.ThreadLeak{
		Component: tpcw.CompBuyConfirm,
		N:         10,
		Agent:     s.Framework.ThreadAgent(),
		Heap:      s.Heap,
		Seed:      cfg.Seed,
	}
	if err := s.Weaver.Register(tl.Aspect()); err != nil {
		return errResult("E8", err)
	}

	phases := scalePhases([]eb.Phase{{Duration: 30 * time.Minute, EBs: cfg.EBs}}, cfg.TimeScale)
	s.Driver.Run(phases)

	cpuRank := s.Framework.Manager().Rank(core.ResourceCPU, rootcause.Trend{})
	thrRank := s.Framework.Manager().Map(core.ResourceThreads)
	cpuTop, _ := cpuRank.Top()
	thrTop, _ := thrRank.Top()

	text := "CPU ranking (trend strategy over per-component CPU time):\n" + cpuRank.String()
	text += "\nThread ranking (paper map over live threads):\n" + thrRank.String()
	text += fmt.Sprintf("\nhog slowed %d requests; %d threads leaked\n", hog.Hits(), tl.Leaked())

	// The hog makes search_results dominate CPU growth; note every busy
	// component's CPU grows with load, which is why the trend strategy
	// alone is not enough — the paper's future work asks for smarter
	// decision makers, and the reproduction surfaces the same need.
	pass := thrTop.Name == tpcw.CompBuyConfirm && tl.Leaked() > 0 &&
		cpuRank.Position(tpcw.CompSearchResults) <= 2 && cpuTop.Score > 0
	return Result{
		ID:    "E8",
		Title: "Extension — CPU hog and thread leak determination (paper future work)",
		Expected: "thread map names buy_confirm; CPU trend ranks the hogged " +
			"search_results at or near the top",
		Observed: fmt.Sprintf("thread top=%s, cpu position of search_results=%d",
			thrTop.Name, cpuRank.Position(tpcw.CompSearchResults)),
		Pass: pass,
		Text: text,
	}
}

// E9PinpointCoupled demonstrates the related-work claim: the home servlet
// always invokes the Promo service, home both leaks memory and fails
// intermittently; Pinpoint's failure correlation cannot split the pair,
// while the resource-component map can.
func E9PinpointCoupled(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := NewStack(StackConfig{
		Seed:          cfg.Seed,
		Scale:         tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1},
		Monitored:     true,
		CollectTraces: true,
		Mix:           eb.Shopping,
	})
	if err != nil {
		return errResult("E9", err)
	}
	defer s.Close()
	// The promo service becomes a first-class monitored component.
	if err := s.Framework.InstrumentComponent(tpcw.CompPromoSvc, s.App.Promo); err != nil {
		return errResult("E9", err)
	}
	if _, err := s.InjectLeak(tpcw.CompHome, 100*KB, 50, cfg.Seed); err != nil {
		return errResult("E9", err)
	}
	// The aging component fails intermittently (every 25th request).
	var reqCount int64
	agingErr := errors.New("injected aging failure")
	fail := &aspect.Aspect{
		Name:     "inject.fail." + tpcw.CompHome,
		Order:    90,
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", tpcw.CompHome)),
		Around: func(jp *aspect.JoinPoint, proceed aspect.Proceed) (any, error) {
			res, err := proceed()
			reqCount++
			if err == nil && reqCount%25 == 0 {
				return nil, agingErr
			}
			return res, err
		},
	}
	if err := s.Weaver.Register(fail); err != nil {
		return errResult("E9", err)
	}

	phases := scalePhases([]eb.Phase{{Duration: 30 * time.Minute, EBs: cfg.EBs}}, cfg.TimeScale)
	s.Driver.Run(phases)

	pinpoint := rootcause.Pinpoint{}.Analyze(s.Traces.Traces())
	mapRank := s.Framework.Manager().Map(core.ResourceMemory)

	pHome := pinpoint.Position(tpcw.CompHome)
	pPromo := pinpoint.Position(tpcw.CompPromoSvc)
	var scoreHome, scorePromo float64
	for _, e := range pinpoint.Entries {
		switch e.Name {
		case tpcw.CompHome:
			scoreHome = e.Score
		case tpcw.CompPromoSvc:
			scorePromo = e.Score
		}
	}
	tied := math.Abs(scoreHome-scorePromo) < 1e-9
	mapSeparates := mapRank.Position(tpcw.CompHome) == 1 &&
		mapRank.Position(tpcw.CompPromoSvc) > 2

	text := "Pinpoint failure-correlation ranking:\n" + pinpoint.String()
	text += "\nResource-component map (memory):\n" + mapRank.String()
	text += fmt.Sprintf("\npinpoint scores: home=%.4f promo=%.4f (positions %d,%d)\n",
		scoreHome, scorePromo, pHome, pPromo)
	return Result{
		ID:    "E9",
		Title: "Extension — coupled components: Pinpoint baseline vs resource map (§II claim)",
		Expected: "Pinpoint gives identical scores to home and its always-coupled " +
			"Promo callee; the resource map isolates home",
		Observed: fmt.Sprintf("pinpoint tie=%v, map isolates home=%v", tied, mapSeparates),
		Pass:     tied && mapSeparates,
		Text:     text,
	}
}

// Recovery model constants for E10 (documented in DESIGN.md): a full
// Tomcat restart vs a targeted micro-reboot, following the micro-reboot
// motivation the paper cites.
const (
	fullRestartMTTR = 60 * time.Second
	microRebootMTTR = 500 * time.Millisecond
)

// E10TimeToFailure exercises the rejuvenation motivation: with a small
// heap and an aggressive leak, the manager extrapolates time to
// exhaustion, and a micro-reboot of the guilty component reclaims the
// leaked memory at a fraction of a full restart's downtime while keeping
// every session alive.
func E10TimeToFailure(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := NewStack(StackConfig{
		Seed:      cfg.Seed,
		Scale:     tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1},
		Monitored: true,
		HeapBytes: 256 * MB,
		Mix:       eb.Shopping,
	})
	if err != nil {
		return errResult("E10", err)
	}
	defer s.Close()
	if _, err := s.InjectLeak(tpcw.CompHome, 1*MB, 20, cfg.Seed); err != nil {
		return errResult("E10", err)
	}
	phases := scalePhases([]eb.Phase{{Duration: 30 * time.Minute, EBs: cfg.EBs}}, cfg.TimeScale)
	s.Driver.Run(phases)

	tte := s.Framework.Manager().TimeToExhaustion()
	suspect, _ := s.Framework.Manager().Map(core.ResourceMemory).Top()
	retainedBefore := s.Heap.Stats().Retained
	sessionsBefore := s.Container.Sessions().Live()
	freed := s.Framework.MicroReboot(suspect.Name)
	retainedAfter := s.Heap.Stats().Retained
	sessionsAfter := s.Container.Sessions().Live()

	t := NewTable("metric", "value")
	t.Row("top suspect", suspect.Name)
	t.Row("time to heap exhaustion", tte.Truncate(time.Second).String())
	t.Row("retained before micro-reboot", fmtBytes(float64(retainedBefore)))
	t.Row("bytes freed by micro-reboot", fmtBytes(float64(freed)))
	t.Row("retained after micro-reboot", fmtBytes(float64(retainedAfter)))
	t.Row("live sessions preserved", fmt.Sprintf("%d of %d", sessionsAfter, sessionsBefore))
	t.Row("micro-reboot MTTR (model)", microRebootMTTR.String())
	t.Row("full restart MTTR (model)", fullRestartMTTR.String())
	t.Row("MTTR improvement", fmt.Sprintf("%.0fx", float64(fullRestartMTTR)/float64(microRebootMTTR)))

	finite := tte < time.Duration(math.MaxInt64)
	pass := finite && suspect.Name == tpcw.CompHome && freed > 0 &&
		retainedAfter < retainedBefore && sessionsAfter == sessionsBefore
	return Result{
		ID:    "E10",
		Title: "Extension — time-to-exhaustion estimate and micro-reboot recovery",
		Expected: "finite exhaustion ETA; micro-rebooting the suspect reclaims its " +
			"leak without losing sessions",
		Observed: fmt.Sprintf("ETA %s, freed %s, sessions kept %v",
			tte.Truncate(time.Second), fmtBytes(float64(freed)), sessionsAfter == sessionsBefore),
		Pass: pass,
		Text: t.String(),
	}
}

// A1MonitoringLevels is the ablation over §III.B.3's runtime activation:
// full monitoring vs selective (two components) vs none, measured by mean
// service time under identical load.
func A1MonitoringLevels(cfg Config) Result {
	cfg = cfg.withDefaults()
	phases := scalePhases([]eb.Phase{{Duration: 10 * time.Minute, EBs: cfg.EBs}}, cfg.TimeScale)

	type level struct {
		name      string
		monitored bool
		selective bool
	}
	levels := []level{
		{"unmonitored", false, false},
		{"selective (2 ACs)", true, true},
		{"full (all ACs)", true, false},
	}
	t := NewTable("level", "completed", "mean service (ms)", "overhead vs unmonitored")
	var base float64
	var ordered []float64
	for _, lv := range levels {
		s, err := NewStack(StackConfig{
			Seed:      cfg.Seed,
			Scale:     tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1},
			Monitored: lv.monitored,
			Mix:       eb.Shopping,
		})
		if err != nil {
			return errResult("A1", err)
		}
		if lv.selective {
			// Deactivate every AC except the two suspects under watch —
			// the paper's "focus the monitoring over a set of determined
			// objects".
			for _, name := range tpcw.Interactions {
				if name != ComponentA && name != ComponentB {
					s.Weaver.SetComponentEnabled(name, false)
				}
			}
		}
		s.Driver.Run(phases)
		mean := s.Container.ResponseTimes().Mean() * 1000
		if base == 0 {
			base = mean
		}
		overhead := (mean - base) / base * 100
		ordered = append(ordered, mean)
		t.Row(lv.name, s.Driver.Completed(), fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%+.1f%%", overhead))
		s.Close()
	}
	pass := ordered[0] < ordered[1] && ordered[1] < ordered[2]
	return Result{
		ID:       "A1",
		Title:    "Ablation — monitoring level vs overhead (runtime AC activation)",
		Expected: "overhead grows with monitoring coverage: none < selective < full",
		Observed: fmt.Sprintf("mean service %.3f < %.3f < %.3f ms = %v",
			ordered[0], ordered[1], ordered[2], pass),
		Pass: pass,
		Text: t.String(),
	}
}

// A2SizingPolicies is the ablation over the object-size measurement
// policy of §IV.B.2: accuracy and cost of Shallow / OneLevel / TwoLevel /
// Transitive on a realistically leaky component.
func A2SizingPolicies(cfg Config) Result {
	type leaky struct {
		faultinject.LeakStore
		cache map[string][]byte
	}
	comp := &leaky{cache: make(map[string][]byte)}
	comp.Retain(10 * MB)
	for i := 0; i < 64; i++ {
		comp.cache[fmt.Sprintf("entry-%d", i)] = make([]byte, 4*KB)
	}
	truth := objsize.New(objsize.Transitive).Of(comp)

	t := NewTable("policy", "measured", "of transitive", "ns/op")
	var oneLevelShare float64
	for _, p := range []objsize.Policy{
		objsize.Shallow, objsize.OneLevel, objsize.TwoLevel, objsize.Transitive,
	} {
		sizer := objsize.New(p)
		start := time.Now()
		const reps = 50
		var measured int64
		for i := 0; i < reps; i++ {
			measured = sizer.Of(comp)
		}
		perOp := time.Since(start).Nanoseconds() / reps
		share := float64(measured) / float64(truth) * 100
		if p == objsize.OneLevel {
			oneLevelShare = share
		}
		t.Row(p.String(), fmtBytes(float64(measured)), fmt.Sprintf("%.1f%%", share), perOp)
	}
	// The paper's one-level policy must capture the dominant leak (a
	// flat buffer) while staying cheaper than a full walk.
	pass := oneLevelShare > 90
	return Result{
		ID:    "A2",
		Title: "Ablation — object sizing policy (the paper's one-level rule)",
		Expected: "one level of references captures the leak (>90% of the " +
			"transitive size) without walking the whole graph",
		Observed: fmt.Sprintf("one-level measures %.1f%% of transitive", oneLevelShare),
		Pass:     pass,
		Text:     t.String(),
	}
}

// E11StrategyComparison quantifies what the paper leaves qualitative: the
// localisation accuracy of the determination strategies against the known
// fault set of the Fig. 5 scenario, with the black-box monitor class as
// the floor. Ground truth is the set of components whose leaks actually
// manifest (A, B, C; D's leak never fires, so no strategy can — or
// should — flag it).
func E11StrategyComparison(cfg Config) Result {
	cfg = cfg.withDefaults()
	s, err := runLeakScenario(cfg, []leakSpec{
		{ComponentA, 100 * KB}, {ComponentB, 100 * KB},
		{ComponentC, 100 * KB}, {ComponentD, 100 * KB},
	})
	if err != nil {
		return errResult("E11", err)
	}
	defer s.Close()

	truth := []string{ComponentA, ComponentB, ComponentC}
	strategies := []rootcause.Strategy{
		rootcause.PaperMap{},
		rootcause.Trend{},
		rootcause.BlackBox{},
	}
	t := NewTable("strategy", "top-1 correct", "reciprocal rank", "precision@3")
	evals := make(map[string]rootcause.Evaluation, len(strategies))
	for _, strat := range strategies {
		ranking := s.Framework.Manager().Rank(core.ResourceMemory, strat)
		ev := rootcause.Evaluate(ranking, truth, 3)
		evals[strat.Name()] = ev
		t.Row(strat.Name(), ev.TopHit,
			fmt.Sprintf("%.3f", ev.ReciprocalRank),
			fmt.Sprintf("%.3f", ev.PrecisionAtK))
	}
	// The delta-based resource (the paper's per-invocation before/after
	// measurement) is evaluated as a fourth row.
	deltaRank := s.Framework.Manager().Rank(core.ResourceMemoryDelta, rootcause.PaperMap{})
	deltaEv := rootcause.Evaluate(deltaRank, truth, 3)
	t.Row("paper-map over heap deltas", deltaEv.TopHit,
		fmt.Sprintf("%.3f", deltaEv.ReciprocalRank),
		fmt.Sprintf("%.3f", deltaEv.PrecisionAtK))

	pm, tr, bb := evals["paper-map"], evals["trend"], evals["black-box"]
	pass := pm.TopHit && pm.PrecisionAtK == 1 &&
		tr.TopHit && tr.PrecisionAtK == 1 &&
		bb.PrecisionAtK < 1 &&
		deltaEv.TopHit
	return Result{
		ID:    "E11",
		Title: "Extension — strategy localisation accuracy on the Fig. 5 scenario",
		Expected: "paper map and trend strategies localise perfectly " +
			"(precision@3 = 1); the black-box floor cannot",
		Observed: fmt.Sprintf("paper-map P@3=%.2f, trend P@3=%.2f, black-box P@3=%.2f, delta top-hit=%v",
			pm.PrecisionAtK, tr.PrecisionAtK, bb.PrecisionAtK, deltaEv.TopHit),
		Pass: pass,
		Text: t.String(),
	}
}

// A3MixSensitivity checks that root-cause determination is not an
// artifact of the shopping mix the paper evaluates on: the Fig. 4 leak is
// localised under all three TPC-W mixes, even though the leaking
// component's usage share shifts with the mix.
func A3MixSensitivity(cfg Config) Result {
	cfg = cfg.withDefaults()
	phases := scalePhases([]eb.Phase{{Duration: 30 * time.Minute, EBs: cfg.EBs}}, cfg.TimeScale)
	t := NewTable("mix", "completed", "home consumption", "top suspect", "score")
	allLocalised := true
	for _, mix := range []eb.Mix{eb.Browsing, eb.Shopping, eb.Ordering} {
		s, err := NewStack(StackConfig{
			Seed:      cfg.Seed,
			Scale:     tpcw.Scale{Items: cfg.Items, Customers: cfg.Customers, Seed: cfg.Seed + 1},
			Monitored: true,
			Mix:       mix,
		})
		if err != nil {
			return errResult("A3", err)
		}
		if _, err := s.InjectLeak(tpcw.CompHome, 100*KB, 100, cfg.Seed); err != nil {
			s.Close()
			return errResult("A3", err)
		}
		s.Driver.Run(phases)
		ranking := s.Framework.Manager().Map(core.ResourceMemory)
		top, _ := ranking.Top()
		data, _ := s.Framework.Manager().Data(core.ResourceMemory)
		var homeBytes float64
		for _, d := range data {
			if d.Name == tpcw.CompHome {
				homeBytes = d.Consumption
			}
		}
		if top.Name != tpcw.CompHome {
			allLocalised = false
		}
		t.Row(mix.String(), s.Driver.Completed(), fmtBytes(homeBytes),
			top.Name, fmt.Sprintf("%.3f", top.Score))
		s.Close()
	}
	return Result{
		ID:       "A3",
		Title:    "Ablation — determination accuracy across TPC-W workload mixes",
		Expected: "the leaking component tops the map under browsing, shopping and ordering mixes",
		Observed: fmt.Sprintf("home localised under all mixes: %v", allLocalised),
		Pass:     allLocalised,
		Text:     t.String(),
	}
}

// All runs every experiment at the given configuration, in DESIGN.md
// order.
func All(cfg Config) []Result {
	return []Result{
		TableI(cfg),
		Fig2(cfg),
		Fig3(cfg),
		Fig4(cfg),
		Fig5(cfg),
		Fig6(cfg),
		Fig7(cfg),
		E8CPUThreadLeaks(cfg),
		E9PinpointCoupled(cfg),
		E10TimeToFailure(cfg),
		E11StrategyComparison(cfg),
		A1MonitoringLevels(cfg),
		A2SizingPolicies(cfg),
		A3MixSensitivity(cfg),
		S1WorkloadShift(cfg),
		S2OnlineLeakDetection(cfg),
		S3DiurnalCycle(cfg),
		S4BurstWithLeak(cfg),
		S5SingleNodeLeak(cfg),
		S6UniformLeak(cfg),
		S7NodeChurn(cfg),
		S8SkewedBalancer(cfg),
		S9PoolExhaustion(cfg),
		S10HandleLeak(cfg),
		S11LockContention(cfg),
		S12FragmentationBloat(cfg),
		S13StaleCacheDecay(cfg),
		S14NodeKill(cfg),
		S15TransportPartition(cfg),
		S16ClockSkew(cfg),
		S17RejuvenateSickReplica(cfg),
		S18FlappingDetectorHeld(cfg),
		S19ControlLossDuringDrain(cfg),
		S20KillAggregatorMidLeak(cfg),
		S21FailoverMidDrain(cfg),
		S22RoundStormOverload(cfg),
	}
}

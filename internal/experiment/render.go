package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/rootcause"
)

// Table renders aligned text tables for the reports.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// Row appends one row; values are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// sparkline renders values as a compact unicode bar series, normalised to
// the series maximum.
func sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	var max float64
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(levels)-1))
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}

// fmtBytes renders a byte count human-readably.
func fmtBytes(v float64) string {
	switch {
	case v >= 1<<30:
		return fmt.Sprintf("%.2fGB", v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%.2fMB", v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%.1fKB", v/(1<<10))
	default:
		return fmt.Sprintf("%.0fB", v)
	}
}

// seriesTable renders several downsampled series side by side, one row
// per bucket, values formatted with format.
func seriesTable(step time.Duration, format func(float64) string, names []string, series ...[]metrics.Point) string {
	t := NewTable(append([]string{"t(min)"}, names...)...)
	maxLen := 0
	for _, s := range series {
		if len(s) > maxLen {
			maxLen = len(s)
		}
	}
	for i := 0; i < maxLen; i++ {
		cells := make([]any, 0, len(series)+1)
		var label string
		for _, s := range series {
			if i < len(s) {
				label = fmt.Sprintf("%.0f", s[i].T.Sub(sparkEpoch(s)).Minutes())
				break
			}
		}
		cells = append(cells, label)
		for _, s := range series {
			if i < len(s) {
				cells = append(cells, format(s[i].V))
			} else {
				cells = append(cells, "")
			}
		}
		t.Row(cells...)
	}
	return t.String()
}

func sparkEpoch(s []metrics.Point) time.Time {
	if len(s) == 0 {
		return time.Time{}
	}
	return s[0].T
}

// downsample reduces points to one value per step bucket (keeping the
// bucket's last observation).
func downsample(points []metrics.Point, step time.Duration) []metrics.Point {
	if len(points) == 0 {
		return nil
	}
	s := metrics.NewSeries("tmp")
	for _, p := range points {
		s.Append(p.T, p.V)
	}
	return s.Downsample(step)
}

// quadrantMap renders the paper's Fig. 2/6 consumption × usage map as an
// ASCII grid: x grows with usage, y grows with consumption, so the most
// suspicious components land in the top-right.
func quadrantMap(r rootcause.Ranking, labels map[string]string) string {
	const width, height = 52, 14
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for _, e := range r.Entries {
		x := int(e.NormUsage * float64(width-1))
		y := int(e.NormConsumption * float64(height-1))
		row := height - 1 - y
		label := labels[e.Name]
		if label == "" {
			label = string(e.Name[len(e.Name)-1])
		}
		grid[row][x] = label[0]
	}
	var b strings.Builder
	b.WriteString("consumption\n")
	for i, row := range grid {
		marker := "|"
		if i == height/2 {
			marker = "+" // threshold line
		}
		fmt.Fprintf(&b, "  %s%s\n", marker, string(row))
	}
	fmt.Fprintf(&b, "  +%s usage\n", strings.Repeat("-", width))
	b.WriteString("  legend: ")
	for _, e := range r.Entries {
		label := labels[e.Name]
		if label == "" {
			label = string(e.Name[len(e.Name)-1])
		}
		fmt.Fprintf(&b, "%s=%s(%s) ", label, e.Name, e.Zone)
	}
	b.WriteByte('\n')
	return b.String()
}

package experiment

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/tpcw"
)

func TestLoadStackModelBackend(t *testing.T) {
	ls, err := NewLoadStack(LoadConfig{
		Seed:     5,
		Sessions: 300,
		Shards:   2,
		Mix:      eb.Shopping,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	ls.Run(2 * time.Minute)
	if ls.Driver.Completed() == 0 {
		t.Fatal("model-backed load tier completed nothing")
	}
	if ls.PeakWIPS() == 0 {
		t.Fatal("no WIPS recorded")
	}
	if len(ls.Containers) != 0 {
		t.Fatalf("model backend built %d containers", len(ls.Containers))
	}
}

// TestLoadStackContainerBackend drives the session table against full
// per-shard application stacks: the load tier exercising the real TPC-W
// serve path, one container per core.
func TestLoadStackContainerBackend(t *testing.T) {
	ls, err := NewLoadStack(LoadConfig{
		Seed:     5,
		Sessions: 120,
		Shards:   2,
		Mix:      eb.Shopping,
		Backend:  BackendContainer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if len(ls.Containers) != 2 {
		t.Fatalf("built %d containers, want one per shard", len(ls.Containers))
	}
	ls.Run(2 * time.Minute)
	if ls.Driver.Completed() == 0 {
		t.Fatal("container-backed load tier completed nothing")
	}
	if ls.Driver.Failed() != 0 {
		t.Fatalf("%d of %d interactions failed against the real stack",
			ls.Driver.Failed(), ls.Driver.Completed())
	}
}

// TestLoadStackMonitoredCluster closes the ROADMAP gap at test scale:
// the sharded driver's sessions hammer per-shard container stacks while
// each shard's monitoring framework forwards real sampling rounds over
// batched binary wires into one sharded-ingest aggregator, which must
// name the one sick shard. The million-session run in docs uses the
// same wiring with the population turned up.
func TestLoadStackMonitoredCluster(t *testing.T) {
	ls, err := NewLoadStack(LoadConfig{
		Seed:     5,
		Sessions: 240,
		Shards:   4,
		Mix:      eb.Shopping,
		Backend:  BackendContainer,
		Scale:    tpcw.Scale{Items: 500, Customers: 300},

		Monitor:            true,
		MonitorInterval:    30 * time.Second,
		Detect:             detect.Config{Window: 20, MinSamples: 6, Consecutive: 3},
		MonitorWire:        true,
		MonitorBatchRounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if len(ls.Shards) != 4 || ls.Aggregator == nil {
		t.Fatalf("monitored stack incomplete: %d shards, aggregator=%v", len(ls.Shards), ls.Aggregator != nil)
	}
	if _, err := ls.InjectLeak(1, ComponentA, 100*KB, 100, 5); err != nil {
		t.Fatal(err)
	}
	const duration = 30 * time.Minute // 60 epochs at the 30s cadence
	ls.Run(duration)
	if err := ls.SyncMonitor(); err != nil {
		t.Fatal(err)
	}
	if ls.Driver.Completed() == 0 || ls.Driver.Failed() != 0 {
		t.Fatalf("load tier: %d completed, %d failed", ls.Driver.Completed(), ls.Driver.Failed())
	}
	epochs := int64(duration / (30 * time.Second))
	if got := ls.Aggregator.Epoch(); got != epochs {
		t.Fatalf("aggregator folded %d epochs, want %d", got, epochs)
	}
	if got := ls.Aggregator.TotalRounds(); got != epochs*int64(len(ls.Shards)) {
		t.Fatalf("aggregator ingested %d rounds, want %d", got, epochs*int64(len(ls.Shards)))
	}
	rep := ls.Aggregator.Report(core.ResourceMemory)
	if rep == nil || !rep.Alarming() {
		t.Fatalf("no memory verdict from the monitored load tier: %+v", rep)
	}
	top, _ := rep.Top()
	if top.Pair() != "shard02/"+ComponentA {
		t.Fatalf("top verdict = %q, want shard02/%s", top.Pair(), ComponentA)
	}
	if last, max := ls.Aggregator.FoldLatency(); last <= 0 || max < last {
		t.Fatalf("fold latency not recorded: last=%v max=%v", last, max)
	}
}

// TestLoadStackOpenLoop smoke-tests Poisson arrivals through the
// experiment-layer configuration surface.
func TestLoadStackOpenLoop(t *testing.T) {
	ls, err := NewLoadStack(LoadConfig{
		Seed:     9,
		OpenLoop: true,
		Rate:     30,
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	ls.Run(time.Minute)
	if ls.Driver.Completed() == 0 {
		t.Fatal("open-loop load tier completed nothing")
	}
}

package experiment

import (
	"testing"
	"time"

	"repro/internal/eb"
)

func TestLoadStackModelBackend(t *testing.T) {
	ls, err := NewLoadStack(LoadConfig{
		Seed:     5,
		Sessions: 300,
		Shards:   2,
		Mix:      eb.Shopping,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	ls.Run(2 * time.Minute)
	if ls.Driver.Completed() == 0 {
		t.Fatal("model-backed load tier completed nothing")
	}
	if ls.PeakWIPS() == 0 {
		t.Fatal("no WIPS recorded")
	}
	if len(ls.Containers) != 0 {
		t.Fatalf("model backend built %d containers", len(ls.Containers))
	}
}

// TestLoadStackContainerBackend drives the session table against full
// per-shard application stacks: the load tier exercising the real TPC-W
// serve path, one container per core.
func TestLoadStackContainerBackend(t *testing.T) {
	ls, err := NewLoadStack(LoadConfig{
		Seed:     5,
		Sessions: 120,
		Shards:   2,
		Mix:      eb.Shopping,
		Backend:  BackendContainer,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	if len(ls.Containers) != 2 {
		t.Fatalf("built %d containers, want one per shard", len(ls.Containers))
	}
	ls.Run(2 * time.Minute)
	if ls.Driver.Completed() == 0 {
		t.Fatal("container-backed load tier completed nothing")
	}
	if ls.Driver.Failed() != 0 {
		t.Fatalf("%d of %d interactions failed against the real stack",
			ls.Driver.Failed(), ls.Driver.Completed())
	}
}

// TestLoadStackOpenLoop smoke-tests Poisson arrivals through the
// experiment-layer configuration surface.
func TestLoadStackOpenLoop(t *testing.T) {
	ls, err := NewLoadStack(LoadConfig{
		Seed:     9,
		OpenLoop: true,
		Rate:     30,
		Shards:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ls.Close()
	ls.Run(time.Minute)
	if ls.Driver.Completed() == 0 {
		t.Fatal("open-loop load tier completed nothing")
	}
}

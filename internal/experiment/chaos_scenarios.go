package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/detect"
	"repro/internal/eb"
	"repro/internal/faultinject"
	"repro/internal/jmx"
)

// The aging-chaos scenarios (S9-S16) are the litmus-style catalog the
// ISSUE asks for: each run first verifies a steady-state hypothesis (the
// unfaulted system raises no alarm), then injects one fault from the
// catalog — a non-heap aging fault on a single node (S9-S13) or an
// infrastructure chaos event on a cluster (S14-S16) — and verifies
// detection and attribution: the right indicator stream names the right
// (node, component) pair within a bounded number of rounds, while the
// streams the fault must NOT touch stay quiet. Every scenario records
// its ground truth in Result.Accuracy so the full S1-S16 matrix can be
// scored as precision/recall/time-to-detect (accuracy.go).

// firstAlarm returns the earliest first-alarm round in a report and the
// component that raised it (0, "" when nothing alarmed).
func firstAlarm(rep *detect.Report) (int64, string) {
	if rep == nil {
		return 0, ""
	}
	var first int64
	var comp string
	for _, v := range rep.Components {
		if v.FirstAlarmRound > 0 && (first == 0 || v.FirstAlarmRound < first) {
			first, comp = v.FirstAlarmRound, v.Component
		}
	}
	return first, comp
}

// flaggedComponents lists every component with an alarm on record on any
// detector stream — the detection plane's suspect set for the accuracy
// matrix.
func flaggedComponents(bank *core.DetectorBank) []string {
	set := map[string]bool{}
	for _, res := range core.DetectorResources {
		rep := bank.Report(res)
		if rep == nil {
			continue
		}
		for _, v := range rep.Components {
			if v.FirstAlarmRound > 0 {
				set[v.Component] = true
			}
		}
	}
	return sortedSet(set)
}

// flaggedPairs lists every (node, component) pair the aggregator is
// currently flagging across all resources, cluster-wide verdicts as
// "cluster/component".
func flaggedPairs(cs *ClusterStack) []string {
	set := map[string]bool{}
	for _, res := range core.DetectorResources {
		rep := cs.Aggregator.Report(res)
		if rep == nil {
			continue
		}
		for _, v := range rep.Verdicts {
			if v.ClusterWide {
				set["cluster/"+v.Component] = true
				continue
			}
			for _, n := range v.Nodes {
				set[n+"/"+v.Component] = true
			}
		}
	}
	return sortedSet(set)
}

func sortedSet(set map[string]bool) []string {
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// agingChaosSpec parameterises one single-node catalog scenario.
type agingChaosSpec struct {
	id, title string
	// component is the injection target, resource the stream that must
	// carry the verdict.
	component, resource string
	// quiet lists the streams the fault must not disturb.
	quiet    []string
	expected string
	// arm registers the injector on the steady stack.
	arm func(*Stack) error
}

// runAgingChaos is the two-phase litmus runner shared by S9-S13: a
// steady phase verifies the no-alarm hypothesis, then the fault is armed
// and the injected phase must produce the pinned verdict within the
// S2-style round bound, with the untouched streams staying clean.
func runAgingChaos(cfg Config, spec agingChaosSpec) Result {
	cfg = cfg.withDefaults()
	s, log, err := scenarioStack(cfg, eb.Shopping)
	if err != nil {
		return errorResult(spec.id, err)
	}
	defer s.Close()

	steady := scaleDuration(20*time.Minute, cfg.TimeScale)
	s.Driver.Run([]eb.Phase{{Duration: steady, EBs: cfg.EBs}})
	preAlarms := len(log.raised())
	preRounds := reportRound(s.Detectors.Report(spec.resource))

	if err := spec.arm(s); err != nil {
		return errorResult(spec.id, err)
	}
	injected := scaleDuration(40*time.Minute, cfg.TimeScale)
	s.Driver.Run([]eb.Phase{{Duration: injected, EBs: cfg.EBs}})

	rep := s.Detectors.Report(spec.resource)
	first, suspect := firstAlarm(rep)
	dcfg := scenarioDetectConfig()
	bound := preRounds + int64(2*(dcfg.MinSamples+dcfg.Consecutive)+6)
	var noisy []string
	for _, res := range spec.quiet {
		if qr := s.Detectors.Report(res); qr != nil && len(qr.Alarms()) > 0 {
			noisy = append(noisy, res)
		}
	}
	steadyOK := preAlarms == 0
	suspectOK := suspect == spec.component
	detectedInTime := first > preRounds && first <= bound
	pass := steadyOK && suspectOK && detectedInTime && len(noisy) == 0

	var ttd int64
	if first > preRounds {
		ttd = first - preRounds
	}
	suspectLabel := suspect
	if suspectLabel == "" {
		suspectLabel = "(none)"
	}
	observed := fmt.Sprintf(
		"steady %d rounds, %d alarms; first %s alarm at round %d (injected after %d, bound %d) names %s; quiet streams clean: %v",
		preRounds, preAlarms, spec.resource, first, preRounds, bound, suspectLabel, len(noisy) == 0)
	text := reportText(rep)
	if len(noisy) > 0 {
		text += "\nstreams that should have stayed quiet but alarmed: " + strings.Join(noisy, ", ") + "\n"
	}
	return Result{
		ID:       spec.id,
		Title:    spec.title,
		Expected: spec.expected,
		Observed: observed,
		Pass:     pass,
		Text:     text,
		Accuracy: &Accuracy{
			Truth:              []string{spec.component},
			Flagged:            flaggedComponents(s.Detectors),
			TTDRounds:          ttd,
			PreInjectionAlarms: preAlarms,
		},
	}
}

// S9PoolExhaustion injects connection-pool exhaustion into component A
// after a verified steady phase: leaked pool handles climb on the handle
// stream (the verdict carrier) while requests queue behind the shrunken
// pool; memory, CPU and threads must stay quiet.
func S9PoolExhaustion(cfg Config) Result {
	cfg = cfg.withDefaults()
	return runAgingChaos(cfg, agingChaosSpec{
		id:        "S9",
		title:     "Chaos — connection-pool exhaustion in A (handles + queueing latency)",
		component: ComponentA,
		resource:  core.ResourceHandles,
		quiet:     []string{core.ResourceMemory, core.ResourceCPU, core.ResourceThreads},
		expected:  "zero steady-phase alarms; the handle stream names A within the round bound; memory/CPU/threads stay quiet",
		arm: func(s *Stack) error {
			_, err := s.InjectPoolExhaustion(ComponentA, 30, 2*time.Millisecond, cfg.Seed)
			return err
		},
	})
}

// S10HandleLeak injects a file-descriptor-style handle leak into
// component B: the live-handle level climbs with nothing else moving but
// the tiny per-handle buffer.
func S10HandleLeak(cfg Config) Result {
	cfg = cfg.withDefaults()
	return runAgingChaos(cfg, agingChaosSpec{
		id:        "S10",
		title:     "Chaos — fd/session-handle leak in B",
		component: ComponentB,
		resource:  core.ResourceHandles,
		quiet:     []string{core.ResourceCPU, core.ResourceThreads},
		expected:  "zero steady-phase alarms; the handle stream names B within the round bound; CPU/threads stay quiet",
		arm: func(s *Stack) error {
			_, err := s.InjectHandleLeak(ComponentB, 30, cfg.Seed)
			return err
		},
	})
}

// S11LockContention injects the catalog's pure-latency fault into
// component A: the critical section creeps, response times degrade, and
// NO resource level grows — only the latency-trend stream may (and must)
// name the component.
func S11LockContention(cfg Config) Result {
	cfg = cfg.withDefaults()
	return runAgingChaos(cfg, agingChaosSpec{
		id:        "S11",
		title:     "Chaos — lock-contention aging in A (latency-only)",
		component: ComponentA,
		resource:  core.ResourceLatency,
		quiet: []string{core.ResourceMemory, core.ResourceCPU,
			core.ResourceThreads, core.ResourceHandles},
		expected: "zero steady-phase alarms; only the latency stream alarms, naming A within the round bound",
		arm: func(s *Stack) error {
			// Step/Growth fixes the per-request wait creep; at A's ~1.3
			// req/s the 1.5ms/request creep is a ~2e-3 s/inv-per-second
			// latency slope, 4x the DefaultLatencyMinSlope floor.
			_, err := s.InjectLockContention(ComponentA, 3*time.Millisecond, 2, 200*time.Microsecond, cfg.Seed)
			return err
		},
	})
}

// S12FragmentationBloat injects fragmentation-style slow bloat into
// component B: jitter-sized fragments two orders of magnitude below the
// paper's leak, exercising the memory trend detector near its floor.
func S12FragmentationBloat(cfg Config) Result {
	cfg = cfg.withDefaults()
	return runAgingChaos(cfg, agingChaosSpec{
		id:        "S12",
		title:     "Chaos — fragmentation-style slow bloat in B",
		component: ComponentB,
		resource:  core.ResourceMemory,
		quiet: []string{core.ResourceCPU, core.ResourceThreads,
			core.ResourceHandles, core.ResourceLatency},
		expected: "zero steady-phase alarms; the memory stream names B within the round bound despite the shallow slope",
		arm: func(s *Stack) error {
			_, err := s.InjectFragmentationBloat(ComponentB, 8*KB, 10, cfg.Seed)
			return err
		},
	})
}

// S13StaleCacheDecay injects cache decay into component A: the miss rate
// climbs, so per-invocation CPU degrades with no level step anywhere —
// computational aging carried by the CPU trend stream.
func S13StaleCacheDecay(cfg Config) Result {
	cfg = cfg.withDefaults()
	return runAgingChaos(cfg, agingChaosSpec{
		id:        "S13",
		title:     "Chaos — stale-cache decay in A (per-invocation CPU)",
		component: ComponentA,
		resource:  core.ResourceCPU,
		quiet:     []string{core.ResourceMemory, core.ResourceThreads, core.ResourceHandles},
		expected:  "zero steady-phase alarms; the CPU stream names A within the round bound; memory/threads/handles stay quiet",
		arm: func(s *Stack) error {
			// MissCost·rate/Decay is the per-invocation CPU slope; at A's
			// ~1.3 req/s this is ~1.5e-3 s/inv per second, 3x the
			// DefaultCPUMinSlope floor, and the decay ramp (400 requests,
			// ~10 sampling rounds) outlasts the detection window.
			_, err := s.InjectStaleCacheDecay(ComponentA, 450*time.Millisecond, 400, cfg.Seed)
			return err
		},
	})
}

// chaosClusterStack is clusterScenarioStack with a transport chaos hook
// (in-process transport, round-robin balancing — the chaos under test is
// the environment, not the wire codec).
func chaosClusterStack(cfg Config, nodes int, chaos func(string, cluster.Transport) cluster.Transport) (*ClusterStack, *alarmLog, error) {
	cs, err := NewClusterStack(ClusterConfig{
		Nodes:  nodes,
		Seed:   cfg.Seed,
		Scale:  scenarioScale(cfg),
		Mix:    eb.Shopping,
		Detect: scenarioDetectConfig(),
		Policy: cluster.RoundRobin,
		Chaos:  chaos,
	})
	if err != nil {
		return nil, nil, err
	}
	log := &alarmLog{}
	cs.Server.AddListener(func(n jmx.Notification) {
		if n.Type == cluster.NotifClusterAlarm {
			log.events = append(log.events, n.Message)
		}
	})
	return cs, log, nil
}

// activeSet maps node name → currently-active for membership checks.
func activeSet(cs *ClusterStack) map[string]bool {
	out := map[string]bool{}
	for _, s := range cs.Aggregator.Nodes() {
		out[s.Node] = s.Active
	}
	return out
}

// S14NodeKill kills one healthy node at a deterministic instant drawn by
// the NodeKill primitive: the membership change must be detected (node2
// inactive, survivors active) and must not read as aging — zero alarms.
func S14NodeKill(cfg Config) Result {
	cfg = cfg.withDefaults()
	cs, log, err := chaosClusterStack(cfg, 3, nil)
	if err != nil {
		return errorResult("S14", err)
	}
	defer cs.Close()

	total := scaleDuration(time.Hour, cfg.TimeScale)
	kill := faultinject.NodeKill{Node: "node2", Window: total / 3, Seed: cfg.Seed}
	var killErr error
	cs.Engine.Schedule(kill.At(cs.Engine.Now().Add(total/3)), func(time.Time) {
		killErr = cs.Leave(kill.Node)
	})
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S14", err)
	}
	if killErr != nil {
		return errorResult("S14", killErr)
	}

	alarms := log.raised()
	active := activeSet(cs)
	membershipOK := !active["node2"] && active["node1"] && active["node3"]
	rep := cs.Aggregator.Report(core.ResourceMemory)
	quiet := rep != nil && !rep.Alarming()
	pass := len(alarms) == 0 && membershipOK && quiet
	observed := fmt.Sprintf("%d alarms; node2 killed at +%v; final active set %v; %d interactions",
		len(alarms), kill.Offset()+total/3, activeNames(cs), cs.Driver.Completed())
	return Result{
		ID:       "S14",
		Title:    "Chaos — deterministic node kill (no aging)",
		Expected: "the kill is detected as a membership change, not aging: node2 inactive, survivors clean, zero alarms",
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep) + strings.Join(alarms, "\n"),
		Accuracy: &Accuracy{
			Flagged:            flaggedPairs(cs),
			PreInjectionAlarms: len(alarms),
		},
	}
}

// S15TransportPartition partitions one node's monitoring transport for
// the middle third of the run: the aggregator must evict the silent node
// (detection), fold it back in after the heal (recovery), and raise no
// aging alarm — the application plane never stopped serving.
func S15TransportPartition(cfg Config) Result {
	cfg = cfg.withDefaults()
	var chaos *faultinject.ChaosTransport[cluster.Round]
	cs, log, err := chaosClusterStack(cfg, 3, func(node string, tr cluster.Transport) cluster.Transport {
		if node != "node3" {
			return tr
		}
		chaos = faultinject.NewChaosTransport[cluster.Round](tr)
		return chaos
	})
	if err != nil {
		return errorResult("S15", err)
	}
	defer cs.Close()

	total := scaleDuration(time.Hour, cfg.TimeScale)
	evictedMid := false
	cs.Engine.Schedule(cs.Engine.Now().Add(total/3), func(time.Time) {
		chaos.SetPartitioned(true)
	})
	cs.Engine.Schedule(cs.Engine.Now().Add(2*total/3), func(time.Time) {
		// Just before healing: the silent node must already be evicted —
		// the detection half of the partition hypothesis.
		evictedMid = !activeSet(cs)["node3"]
		chaos.SetPartitioned(false)
	})
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	// No Sync: the partition swallowed rounds the barrier would wait for.
	cs.FlushNotifications()

	alarms := log.raised()
	active := activeSet(cs)
	recovered := active["node1"] && active["node2"] && active["node3"]
	rep := cs.Aggregator.Report(core.ResourceMemory)
	quiet := rep != nil && !rep.Alarming()
	pass := len(alarms) == 0 && evictedMid && recovered && chaos.Dropped() > 0 && quiet
	observed := fmt.Sprintf("%d alarms; partition dropped %d rounds; evicted during partition: %v; rejoined after heal: %v",
		len(alarms), chaos.Dropped(), evictedMid, recovered)
	return Result{
		ID:       "S15",
		Title:    "Chaos — monitoring-transport partition and heal (no aging)",
		Expected: "node3 is evicted while partitioned and folded back after the heal, with zero aging alarms",
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep) + strings.Join(alarms, "\n"),
		Accuracy: &Accuracy{
			Flagged:            flaggedPairs(cs),
			PreInjectionAlarms: len(alarms),
		},
	}
}

// S16ClockSkew skews one node's clock by two minutes from the first
// round AND leaks on that same node: the aggregator's merged-timeline
// normalisation must absorb the skew so attribution still pins exactly
// (node1, A) within the epoch bound.
func S16ClockSkew(cfg Config) Result {
	cfg = cfg.withDefaults()
	var chaos *faultinject.ChaosTransport[cluster.Round]
	cs, log, err := chaosClusterStack(cfg, 3, func(node string, tr cluster.Transport) cluster.Transport {
		if node != "node1" {
			return tr
		}
		chaos = faultinject.NewChaosTransport[cluster.Round](tr)
		return chaos
	})
	if err != nil {
		return errorResult("S16", err)
	}
	defer cs.Close()
	chaos.SetSkew(2 * time.Minute)
	if _, err := cs.InjectLeak("node1", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S16", err)
	}

	total := scaleDuration(time.Hour, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S16", err)
	}

	rep := cs.Aggregator.Report(core.ResourceMemory)
	var top cluster.ClusterVerdict
	var ok bool
	if rep != nil {
		top, ok = rep.Top()
	}
	bound := clusterEpochBound()
	pairOK := ok && top.Pair() == "node1/"+ComponentA && !top.ClusterWide
	inTime := ok && top.FirstEpoch > 0 && top.FirstEpoch <= bound
	pass := pairOK && inTime
	var ttd int64
	if pairOK {
		ttd = top.FirstEpoch
	}
	observed := fmt.Sprintf("top verdict %s at epoch %d/%d (bound %d) under %v skew, %d notifications",
		pairLabel(top, ok), top.FirstEpoch, reportEpoch(rep), bound, 2*time.Minute, len(log.raised()))
	return Result{
		ID:       "S16",
		Title:    "Chaos — clock skew on the leaking node (100KB in A on node1, +2m skew)",
		Expected: fmt.Sprintf("the merged timeline absorbs the skew; the verdict still pins (node1, %s) within %d epochs", ComponentA, bound),
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep),
		Accuracy: &Accuracy{
			Truth:     []string{"node1/" + ComponentA},
			Flagged:   flaggedPairs(cs),
			TTDRounds: ttd,
		},
	}
}

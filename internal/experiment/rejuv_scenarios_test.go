package experiment

import (
	"strings"
	"testing"
)

func TestS17RejuvenateSickReplicaFullCycle(t *testing.T) {
	res := S17RejuvenateSickReplica(scenarioCfg)
	if !res.Pass {
		t.Fatalf("sick-replica rejuvenation scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "0 failed requests") {
		t.Fatalf("requests were dropped during actuation: %s", res.Observed)
	}
	if res.Accuracy == nil || res.Accuracy.RecoveryEpochs == 0 {
		t.Fatal("S17 carries no recovery time")
	}
}

func TestS18FlappingDetectorHeldByHysteresis(t *testing.T) {
	res := S18FlappingDetectorHeld(scenarioCfg)
	if !res.Pass {
		t.Fatalf("flapping-detector scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "flap phase: 0 transitions, 0 control sends") {
		t.Fatalf("flap phase actuated: %s", res.Observed)
	}
}

func TestS19ControlLossDegradesSafely(t *testing.T) {
	res := S19ControlLossDuringDrain(scenarioCfg)
	if !res.Pass {
		t.Fatalf("control-loss scenario failed:\n%s", res)
	}
	if !strings.Contains(res.Observed, "0 failed requests") {
		t.Fatalf("requests were dropped during degraded actuation: %s", res.Observed)
	}
}

// TestRejuvScenariosFullScale re-runs the actuation litmus at the
// paper's full TimeScale — the acceptance contract requires S17 to hold
// at both scales. Skipped under -short.
func TestRejuvScenariosFullScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale actuation scenarios skipped with -short")
	}
	cfg := scenarioCfg
	cfg.TimeScale = 1.0
	for _, run := range []func(Config) Result{
		S17RejuvenateSickReplica, S18FlappingDetectorHeld, S19ControlLossDuringDrain,
	} {
		if res := run(cfg); !res.Pass {
			t.Fatalf("full-scale actuation scenario failed:\n%s", res)
		}
	}
}

// TestScenarioRejuvConfigMatchesDetectTuning pins the arithmetic the
// scenario tuning depends on: probation must complete before a re-armed
// leak can re-alarm a freshly reset node.
func TestScenarioRejuvConfigMatchesDetectTuning(t *testing.T) {
	d := scenarioDetectConfig()
	rc := scenarioRejuvConfig()
	if rc.ProbationEpochs >= d.MinSamples+d.Consecutive {
		t.Fatalf("probation (%d epochs) outlasts a fresh detection (%d epochs): rebooted nodes would roll back forever",
			rc.ProbationEpochs, d.MinSamples+d.Consecutive)
	}
	if rc.HealthyWeight != 1 {
		t.Fatalf("HealthyWeight %d skews scenario balancers registered at weight 1", rc.HealthyWeight)
	}
}

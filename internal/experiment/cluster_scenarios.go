package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/eb"
	"repro/internal/jmx"
)

// The cluster scenarios (S5-S8) exercise the two-tier agent/aggregator
// architecture against the deployment topologies a single-process
// monitor cannot express: a sick replica among healthy ones, uniform
// cluster-wide aging, node churn, and a balancer that concentrates
// traffic. Their contract extends S1-S4's: real per-node aging must be
// named as the correct (node, component) pair within bounded epochs,
// uniform aging must be promoted to a cluster-wide verdict, and
// topology-only events (join, leave, traffic skew) must end with zero
// alarms.

// clusterScenarioStack assembles an N-node cluster with the scenario
// detector tuning and a cluster-alarm log. codec selects the wire
// serialisation when wire is set (pass cluster.CodecGob otherwise).
func clusterScenarioStack(cfg Config, nodes, spares int, policy cluster.Policy, wire bool, codec cluster.WireCodec) (*ClusterStack, *alarmLog, error) {
	cs, err := NewClusterStack(ClusterConfig{
		Nodes:         nodes,
		Spares:        spares,
		Seed:          cfg.Seed,
		Scale:         scenarioScale(cfg),
		Mix:           eb.Shopping,
		Detect:        scenarioDetectConfig(),
		Policy:        policy,
		WireTransport: wire,
		WireCodec:     codec,
	})
	if err != nil {
		return nil, nil, err
	}
	log := &alarmLog{}
	cs.Server.AddListener(func(n jmx.Notification) {
		if n.Type == cluster.NotifClusterAlarm {
			log.events = append(log.events, n.Message)
		}
	})
	return cs, log, nil
}

// clusterEpochBound is the S5 detection-latency bound, in cluster
// epochs: like S2's round bound, the earliest possible verdict is
// MinSamples+Consecutive epochs in; allow twice that plus slack for the
// trend significance to build at one third of the single-node request
// rate.
func clusterEpochBound() int64 {
	d := scenarioDetectConfig()
	return int64(2*(d.MinSamples+d.Consecutive) + 8)
}

// S5SingleNodeLeak is the sick-replica scenario: three balanced nodes,
// the paper's 100KB/N=100 leak armed in component A on node2 only. The
// cluster verdict must name exactly (node2, A) — the node-local outlier —
// within the epoch bound, with the healthy replicas staying clean.
func S5SingleNodeLeak(cfg Config) Result {
	cfg = cfg.withDefaults()
	cs, log, err := clusterScenarioStack(cfg, 3, 0, cluster.RoundRobin, false, cluster.CodecGob)
	if err != nil {
		return errorResult("S5", err)
	}
	defer cs.Close()
	if _, err := cs.InjectLeak("node2", ComponentA, 100*KB, 100, cfg.Seed); err != nil {
		return errorResult("S5", err)
	}

	total := scaleDuration(time.Hour, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S5", err)
	}

	rep := cs.Aggregator.Report(core.ResourceMemory)
	var top cluster.ClusterVerdict
	var ok bool
	if rep != nil {
		top, ok = rep.Top()
	}
	bound := clusterEpochBound()
	pairOK := ok && top.Pair() == "node2/"+ComponentA && !top.ClusterWide
	inTime := ok && top.FirstEpoch > 0 && top.FirstEpoch <= bound
	healthyClean := true
	for _, n := range []string{"node1", "node3"} {
		if nr := cs.Aggregator.NodeReport(n, core.ResourceMemory); nr == nil || len(nr.Alarms()) > 0 {
			healthyClean = false
		}
	}
	pass := pairOK && inTime && healthyClean
	observed := fmt.Sprintf("top verdict %s at epoch %d/%d (bound %d), healthy replicas clean: %v, %d notifications",
		pairLabel(top, ok), top.FirstEpoch, reportEpoch(rep), bound, healthyClean, len(log.raised()))
	return Result{
		ID:       "S5",
		Title:    "Cluster — single-node leak among healthy replicas (100KB in A on node2)",
		Expected: fmt.Sprintf("the cluster verdict names (node2, %s) within %d epochs; node1/node3 stay clean", ComponentA, bound),
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep),
		Accuracy: &Accuracy{
			Truth:     []string{"node2/" + ComponentA},
			Flagged:   flaggedPairs(cs),
			TTDRounds: top.FirstEpoch, // injected at epoch 0
		},
	}
}

// S6UniformLeak arms the same leak in the same component on every node:
// the per-node verdicts must agree and the aggregator must promote the
// component to a cluster-wide verdict (quorum), not blame one replica.
func S6UniformLeak(cfg Config) Result {
	cfg = cfg.withDefaults()
	cs, log, err := clusterScenarioStack(cfg, 3, 0, cluster.RoundRobin, false, cluster.CodecGob)
	if err != nil {
		return errorResult("S6", err)
	}
	defer cs.Close()
	for _, node := range []string{"node1", "node2", "node3"} {
		if _, err := cs.InjectLeak(node, ComponentA, 100*KB, 100, cfg.Seed); err != nil {
			return errorResult("S6", err)
		}
	}

	total := scaleDuration(time.Hour, cfg.TimeScale)
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S6", err)
	}

	rep := cs.Aggregator.Report(core.ResourceMemory)
	var top cluster.ClusterVerdict
	var ok bool
	if rep != nil {
		top, ok = rep.Top()
	}
	pass := ok && top.Component == ComponentA && top.ClusterWide && len(top.Nodes) == 3
	observed := fmt.Sprintf("top verdict %s cluster-wide=%v across %d/%d nodes, %d notifications",
		pairLabel(top, ok), ok && top.ClusterWide, len(top.Nodes), reportActive(rep), len(log.raised()))
	return Result{
		ID:       "S6",
		Title:    "Cluster — uniform leak on all nodes (100KB in A everywhere)",
		Expected: "the verdict for A is promoted to cluster-wide by quorum, with all three nodes named",
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep),
		Accuracy: &Accuracy{
			Truth:     []string{"cluster/" + ComponentA},
			Flagged:   flaggedPairs(cs),
			TTDRounds: top.FirstEpoch, // injected at epoch 0
		},
	}
}

// S7NodeChurn runs a healthy cluster through membership changes: node4
// joins at one third of the run (with a rebalance, as an operator would
// drain traffic onto it), node1 leaves at two thirds. Traffic moves both
// times; nothing ages; the run must end with zero aging alarms and the
// correct final membership.
func S7NodeChurn(cfg Config) Result {
	cfg = cfg.withDefaults()
	cs, log, err := clusterScenarioStack(cfg, 3, 1, cluster.RoundRobin, false, cluster.CodecGob)
	if err != nil {
		return errorResult("S7", err)
	}
	defer cs.Close()

	total := scaleDuration(time.Hour, cfg.TimeScale)
	cs.Engine.Schedule(cs.Engine.Now().Add(total/3), func(time.Time) {
		if err := cs.Join("node4"); err == nil {
			cs.Balancer.Rebalance()
		}
	})
	cs.Engine.Schedule(cs.Engine.Now().Add(2*total/3), func(time.Time) {
		_ = cs.Leave("node1")
	})
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S7", err)
	}

	alarms := log.raised()
	active := map[string]bool{}
	for _, s := range cs.Aggregator.Nodes() {
		if s.Active {
			active[s.Node] = true
		}
	}
	membershipOK := !active["node1"] && active["node2"] && active["node3"] && active["node4"]
	rep := cs.Aggregator.Report(core.ResourceMemory)
	quiet := rep != nil && !rep.Alarming()
	pass := len(alarms) == 0 && membershipOK && quiet
	return Result{
		ID:       "S7",
		Title:    "Cluster — node join and leave mid-run (no aging)",
		Expected: "zero aging alarms through both membership changes; final membership node2+node3+node4",
		Observed: fmt.Sprintf("%d alarms; active set %v; %d interactions",
			len(alarms), activeNames(cs), cs.Driver.Completed()),
		Pass: pass,
		Text: clusterReportText(rep) + strings.Join(alarms, "\n"),
		Accuracy: &Accuracy{
			Flagged:            flaggedPairs(cs),
			PreInjectionAlarms: len(alarms),
		},
	}
}

// S8SkewedBalancer starts balanced and then re-weights the balancer to
// concentrate 80% of the traffic on node1 — per-node workloads shift
// hard while nothing ages. The cluster-level node-mix guard must absorb
// the skew (it engages, and no verdict or alarm survives to the end).
func S8SkewedBalancer(cfg Config) Result {
	cfg = cfg.withDefaults()
	cs, log, err := clusterScenarioStack(cfg, 3, 0, cluster.Weighted, false, cluster.CodecGob)
	if err != nil {
		return errorResult("S8", err)
	}
	defer cs.Close()

	total := scaleDuration(time.Hour, cfg.TimeScale)
	cs.Engine.Schedule(cs.Engine.Now().Add(total/2), func(time.Time) {
		cs.Balancer.SetWeights(map[string]int{"node1": 8, "node2": 1, "node3": 1})
		cs.Balancer.Rebalance()
	})
	cs.Driver.Run([]eb.Phase{{Duration: total, EBs: cfg.EBs}})
	if err := cs.Sync(); err != nil {
		return errorResult("S8", err)
	}

	alarms := log.raised()
	rep := cs.Aggregator.Report(core.ResourceMemory)
	guardEngaged := rep != nil && rep.ShiftEpochs > 0
	quiet := rep != nil && !rep.Alarming()
	pass := len(alarms) == 0 && guardEngaged && quiet
	observed := fmt.Sprintf("%d alarms; node-mix guard engaged: %v (%d suppressed epochs, last distance %.3f); spread %v",
		len(alarms), guardEngaged, reportShiftEpochs(rep), reportShift(rep), cs.Balancer.Spread())
	return Result{
		ID:       "S8",
		Title:    "Cluster — skewed balancer concentrates traffic (no aging)",
		Expected: "the cluster-level shift guard engages on the traffic skew and zero alarms are raised",
		Observed: observed,
		Pass:     pass,
		Text:     clusterReportText(rep) + strings.Join(alarms, "\n"),
		Accuracy: &Accuracy{
			Flagged:            flaggedPairs(cs),
			PreInjectionAlarms: len(alarms),
		},
	}
}

func pairLabel(v cluster.ClusterVerdict, ok bool) string {
	if !ok {
		return "(none)"
	}
	return v.Pair()
}

func reportEpoch(rep *cluster.ClusterReport) int64 {
	if rep == nil {
		return 0
	}
	return rep.Epoch
}

func reportActive(rep *cluster.ClusterReport) int {
	if rep == nil {
		return 0
	}
	return rep.Active
}

func reportShift(rep *cluster.ClusterReport) float64 {
	if rep == nil {
		return 0
	}
	return rep.ShiftDistance
}

func reportShiftEpochs(rep *cluster.ClusterReport) int64 {
	if rep == nil {
		return 0
	}
	return rep.ShiftEpochs
}

func clusterReportText(rep *cluster.ClusterReport) string {
	if rep == nil {
		return ""
	}
	return rep.String()
}

func activeNames(cs *ClusterStack) []string {
	var out []string
	for _, s := range cs.Aggregator.Nodes() {
		if s.Active {
			out = append(out, s.Node)
		}
	}
	return out
}

package experiment

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestBuildAccuracyReport pins the matrix scoring: results without
// ground truth are skipped, micro-averages pool TP/FP/FN across
// scenarios, mean TTD averages only the detecting scenarios, and
// pre-injection alarms sum.
func TestBuildAccuracyReport(t *testing.T) {
	results := []Result{
		{ID: "T1", Pass: true}, // no Accuracy: not part of the matrix
		{ID: "S2", Pass: true, Accuracy: &Accuracy{
			Truth: []string{"a"}, Flagged: []string{"a"}, TTDRounds: 10}},
		{ID: "S5", Pass: true, Accuracy: &Accuracy{
			Truth: []string{"node2/a"}, Flagged: []string{"node2/a", "node3/b"}, TTDRounds: 14}},
		{ID: "S7", Pass: true, Accuracy: &Accuracy{PreInjectionAlarms: 2}},
	}
	rep := BuildAccuracyReport(Config{TimeScale: 0.35, Seed: 42}, results)

	if len(rep.Scenarios) != 3 {
		t.Fatalf("expected 3 scored scenarios, got %d", len(rep.Scenarios))
	}
	if rep.TP != 2 || rep.FP != 1 || rep.FN != 0 {
		t.Fatalf("micro totals TP=%d FP=%d FN=%d, want 2/1/0", rep.TP, rep.FP, rep.FN)
	}
	if want := 2.0 / 3.0; rep.Precision != want {
		t.Fatalf("precision %.3f, want %.3f", rep.Precision, want)
	}
	if rep.Recall != 1 {
		t.Fatalf("recall %.3f, want 1", rep.Recall)
	}
	if rep.MeanTTDRounds != 12 {
		t.Fatalf("mean TTD %.1f, want 12 (only detecting scenarios count)", rep.MeanTTDRounds)
	}
	if rep.PreInjectionAlarms != 2 {
		t.Fatalf("pre-injection alarms %d, want 2", rep.PreInjectionAlarms)
	}
}

// TestAccuracyReportEmptyMatrix pins the no-evidence edge: a run with no
// ground-truth results scores perfect (nothing to miss, nothing to
// misflag), which is what lets the harness run on result subsets.
func TestAccuracyReportEmptyMatrix(t *testing.T) {
	rep := BuildAccuracyReport(Config{}, []Result{{ID: "F2", Pass: true}})
	if len(rep.Scenarios) != 0 || rep.Precision != 1 || rep.Recall != 1 || rep.MeanTTDRounds != 0 {
		t.Fatalf("empty matrix must score perfect: %+v", rep)
	}
}

// TestAccuracyReportJSONRoundTrip keeps the committed-artifact form
// stable: the JSON must decode back into an identical report, since the
// CI gate and the agingmon renderer both consume the file.
func TestAccuracyReportJSONRoundTrip(t *testing.T) {
	rep := BuildAccuracyReport(Config{TimeScale: 0.35, Seed: 7}, []Result{
		{ID: "S2", Pass: true, Accuracy: &Accuracy{
			Truth: []string{"a"}, Flagged: []string{"a"}, TTDRounds: 9}},
	})
	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var back AccuracyReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Scale != rep.Scale || back.Seed != rep.Seed || len(back.Scenarios) != 1 ||
		back.Scenarios[0].ID != "S2" || back.Scenarios[0].TTDRounds != 9 {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}

// TestAccuracyReportString smoke-tests the table renderer the agingmon
// accuracy subcommand shows.
func TestAccuracyReportString(t *testing.T) {
	rep := BuildAccuracyReport(Config{TimeScale: 0.35, Seed: 42}, []Result{
		{ID: "S2", Pass: true, Accuracy: &Accuracy{
			Truth: []string{"a"}, Flagged: []string{"a"}, TTDRounds: 10}},
		{ID: "S3", Pass: true, Accuracy: &Accuracy{}},
	})
	out := rep.String()
	for _, want := range []string{"S2", "S3", "(none)", "overall: precision 1.000", "mean TTD 10.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report table lacks %q:\n%s", want, out)
		}
	}
}

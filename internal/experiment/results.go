package experiment

import (
	"fmt"
	"strings"
)

// Result is the outcome of one experiment runner.
type Result struct {
	// ID is the experiment identifier from DESIGN.md (T1, F3, E9, ...).
	ID string
	// Title names the paper artifact being reproduced.
	Title string
	// Expected states the paper's claim for this artifact.
	Expected string
	// Observed states what this run measured.
	Observed string
	// Pass reports whether the observed shape matches the expectation.
	Pass bool
	// Text is the full rendered report (tables, series, maps).
	Text string
	// Accuracy, when non-nil, carries the scenario's fault-injection
	// ground truth and detection outcome for the accuracy harness
	// (BuildAccuracyReport). Only the S-series scenarios fill it.
	Accuracy *Accuracy
}

// Verdict renders the one-line pass/fail summary.
func (r Result) Verdict() string {
	status := "REPRODUCED"
	if !r.Pass {
		status = "NOT REPRODUCED"
	}
	return fmt.Sprintf("[%s] %s: %s", r.ID, status, r.Observed)
}

// String renders the full report.
func (r Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	fmt.Fprintf(&b, "expected: %s\n", r.Expected)
	fmt.Fprintf(&b, "observed: %s\n\n", r.Observed)
	b.WriteString(r.Text)
	b.WriteString("\n")
	b.WriteString(r.Verdict())
	b.WriteString("\n")
	return b.String()
}

// Config parameterises the experiment runners.
type Config struct {
	// TimeScale multiplies the paper's scenario durations (1.0 runs the
	// full one-hour experiments; benchmarks use smaller factors).
	TimeScale float64
	// Seed drives all randomness.
	Seed uint64
	// EBs is the browser population for the single-phase experiments
	// (Figs. 4-7; default 50).
	EBs int
	// Scale overrides the database population (defaults match the
	// figure runners' calibration).
	Items     int
	Customers int
}

func (c Config) withDefaults() Config {
	if c.TimeScale <= 0 {
		c.TimeScale = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.EBs <= 0 {
		c.EBs = 50
	}
	if c.Items <= 0 {
		c.Items = 1000
	}
	if c.Customers <= 0 {
		c.Customers = 720
	}
	return c
}

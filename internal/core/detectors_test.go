package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/detect"
	"repro/internal/jmx"
	"repro/internal/sim"
)

// recordingObserver captures the rounds delivered through Subscribe.
type recordingObserver struct {
	rounds  int
	batches [][]ComponentSample
}

func (o *recordingObserver) ObserveSample(_ time.Time, batch []ComponentSample) {
	o.rounds++
	o.batches = append(o.batches, batch)
}

func TestManagerSubscribeDeliversBatches(t *testing.T) {
	w := aspect.NewWeaver(nil)
	f, err := New(Options{Weaver: w})
	if err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	f.Manager().Subscribe(obs)
	for i := 0; i < 3; i++ {
		f.Manager().Sample(sim.Epoch.Add(time.Duration(i) * time.Minute))
	}
	if obs.rounds != 3 {
		t.Fatalf("observer saw %d rounds, want 3", obs.rounds)
	}
	if len(obs.batches[0]) != 1 || obs.batches[0][0].Component != "svc.A" {
		t.Fatalf("unexpected batch: %+v", obs.batches[0])
	}
}

// TestDetectorBankFlagsLeak drives a growing component through sampling
// rounds and expects the live strategy to flag it, with an aging.alarm
// notification on the transition.
func TestDetectorBankFlagsLeak(t *testing.T) {
	clock := sim.NewVirtualClock()
	w := aspect.NewWeaver(clock)
	f, err := New(Options{Weaver: w, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	grower := &leakyComponent{}
	steady := &leakyComponent{}
	if err := f.InstrumentComponent("svc.grower", grower); err != nil {
		t.Fatal(err)
	}
	if err := f.InstrumentComponent("svc.steady", steady); err != nil {
		t.Fatal(err)
	}
	bank, err := f.AttachDetectors(detect.Config{Window: 20, MinSamples: 6, Consecutive: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AttachDetectors(detect.Config{}); err == nil {
		t.Fatal("second AttachDetectors accepted")
	}

	var alarms atomic.Int64
	f.Server().AddListener(func(n jmx.Notification) {
		if n.Type == NotifAlarm {
			alarms.Add(1)
		}
	})

	growFn := w.Weave("svc.grower", "Service", func(...any) (any, error) { return nil, nil })
	steadyFn := w.Weave("svc.steady", "Service", func(...any) (any, error) { return nil, nil })

	var flaggedAt int64
	for i := 0; i < 30; i++ {
		for j := 0; j < 5; j++ {
			if _, err := growFn(); err != nil {
				t.Fatal(err)
			}
			if _, err := steadyFn(); err != nil {
				t.Fatal(err)
			}
		}
		grower.Retain(10 << 10) // 10KB per round: the aging bug
		clock.Advance(30 * time.Second)
		f.Manager().Sample(clock.Now())
		if rep := bank.Report(ResourceMemory); rep != nil && flaggedAt == 0 {
			if top, ok := rep.Top(); ok {
				if top.Component != "svc.grower" {
					t.Fatalf("round %d: wrong suspect %q", rep.Round, top.Component)
				}
				flaggedAt = rep.Round
			}
		}
	}
	if flaggedAt == 0 {
		t.Fatalf("grower never flagged:\n%s", bank.Report(ResourceMemory))
	}
	if alarms.Load() == 0 {
		t.Fatal("no aging.alarm notification emitted")
	}

	ranking := f.Manager().LiveRank(ResourceMemory)
	top, ok := ranking.Top()
	if !ok || top.Name != "svc.grower" || !top.Alarm {
		t.Fatalf("live ranking wrong: %+v", ranking)
	}
	if ranking.Strategy != "live" {
		t.Fatalf("strategy = %q", ranking.Strategy)
	}

	// The steady component must not be flagged.
	for _, e := range ranking.Entries {
		if e.Name == "svc.steady" && e.Alarm {
			t.Fatal("steady component flagged")
		}
	}

	// The bean ops surface the same state.
	if v, err := f.Server().Invoke(ManagerName(), "Verdicts", ResourceMemory); err != nil || v == nil {
		t.Fatalf("Verdicts op: %v %v", v, err)
	}
	if v, err := f.Server().Invoke(ManagerName(), "LiveMap", ResourceMemory); err != nil || v == nil {
		t.Fatalf("LiveMap op: %v %v", v, err)
	}
}

// TestLiveRankWithoutDetectors must degrade to an empty ranking, not
// panic.
func TestLiveRankWithoutDetectors(t *testing.T) {
	f, err := New(Options{Weaver: aspect.NewWeaver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	r := f.Manager().LiveRank(ResourceMemory)
	if len(r.Entries) != 0 || r.Strategy != "live" {
		t.Fatalf("unexpected ranking: %+v", r)
	}
}

// TestDetectorsDoNotContendWithRecording hammers invocation recording,
// sampling (with detectors attached) and live queries concurrently; run
// under -race this is the PR's lock-split regression check.
func TestDetectorsDoNotContendWithRecording(t *testing.T) {
	clock := sim.NewVirtualClock()
	w := aspect.NewWeaver(clock)
	f, err := New(Options{Weaver: w, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.hot", comp); err != nil {
		t.Fatal(err)
	}
	if _, err := f.AttachDetectors(detect.Config{Window: 8, MinSamples: 4, Consecutive: 2}); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("svc.hot", "Service", func(...any) (any, error) { return nil, nil })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					if _, err := fn(); err != nil {
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			clock.Advance(time.Second)
			f.Manager().Sample(clock.Now())
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_ = f.Manager().LiveRank(ResourceMemory)
			_ = f.Manager().Map(ResourceMemory)
		}
	}()
	// Let the workers overlap the sampler, then stop them.
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
}

package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/detect"
	"repro/internal/jmx"
	"repro/internal/rootcause"
)

// NotifAlarm is the notification type the detector bank emits when a
// component starts (or stops) being flagged by the online detectors.
const NotifAlarm = "aging.alarm"

// DetectorBank runs one streaming detect.Monitor per resource off the
// manager's sampling rounds. It is wired in through Manager.Subscribe, so
// its detectors update incrementally as each round's batch is ingested —
// never touching a lock the invocation-recording hot path takes (the
// observer runs under sampleMu, which recorders and root-cause queries
// never acquire).
//
// Alarm transitions are queued under the bank's own mutex and emitted as
// aging.alarm notifications by the sampling round after sampleMu is
// released, mirroring how the manager emits aging.suspect.
type DetectorBank struct {
	// node is the owning manager's node identity, stamped on verdicts so
	// live rankings match the (node, component) evidence the manager
	// assembles.
	node string
	// resources fixes the per-round processing order (map iteration
	// would be nondeterministic, and notification order must be
	// bit-reproducible like everything else driven by the engine).
	resources []string
	monitors  map[string]*detect.Monitor
	// obsScratch is the per-round observation buffer, reused across
	// rounds and resources; it is owned by the sampling goroutine like
	// the monitors themselves.
	obsScratch []detect.Observation

	mu       sync.Mutex
	alarmed  map[string]map[string]bool // resource -> component -> alarming
	pending  []jmx.Notification
	entropyA map[string]bool // resource -> entropy alarm latched
}

// DefaultCPUMinSlope is the Sen-slope floor applied to the CPU detector
// when the caller leaves Config.MinSlope at zero, in (seconds per
// invocation) per second. Per-invocation CPU cost exhibits real but slow
// secular drift even in a healthy system — queries get more expensive as
// tables grow over a run — and a floor of zero would flag that data
// growth as component aging. 5e-4 (+30ms of mean service time per minute)
// is an order of magnitude above the drift the TPC-W scenarios exhibit
// while far below what a runaway computational bug produces.
const DefaultCPUMinSlope = 5e-4

// DefaultLatencyMinSlope is the Sen-slope floor applied to the latency
// detector when the caller leaves Config.MinSlope at zero, in (seconds
// per invocation) per second. Per-invocation latency inherits the CPU
// stream's secular drift (latency contains the service time) plus
// queueing noise around load transitions, so it gets the same floor:
// only degradation faster than +30ms of mean response time per minute
// counts as aging.
const DefaultLatencyMinSlope = 5e-4

// DetectorResources is the fixed, deterministic order in which the
// detector bank (and the cluster aggregator's per-node banks) process the
// watched resources each round.
var DetectorResources = []string{ResourceMemory, ResourceCPU, ResourceThreads, ResourceLatency, ResourceHandles}

// ResourceDetectorConfigs derives the per-resource detector configuration
// from one base config: memory, threads and handles are watched as raw
// levels; CPU and latency are watched per invocation (their cumulative
// series grow with traffic whether or not anything ages, so they need the
// workload normalisation) and get the DefaultCPUMinSlope /
// DefaultLatencyMinSlope floor unless the config sets its own. The
// cluster aggregator reuses this so per-node verdicts carry single-node
// semantics.
func ResourceDetectorConfigs(cfg detect.Config) map[string]detect.Config {
	cpuCfg := cfg
	cpuCfg.PerInvocation = true
	if cpuCfg.MinSlope == 0 {
		cpuCfg.MinSlope = DefaultCPUMinSlope
	}
	latCfg := cfg
	latCfg.PerInvocation = true
	if latCfg.MinSlope == 0 {
		latCfg.MinSlope = DefaultLatencyMinSlope
	}
	return map[string]detect.Config{
		ResourceMemory:  cfg,
		ResourceCPU:     cpuCfg,
		ResourceThreads: cfg,
		ResourceLatency: latCfg,
		ResourceHandles: cfg,
	}
}

// AttachDetectors creates a detector bank over the manager's sampling
// stream and subscribes it (per-resource tuning per
// ResourceDetectorConfigs). Attaching twice is an error.
func (m *Manager) AttachDetectors(cfg detect.Config) (*DetectorBank, error) {
	configs := ResourceDetectorConfigs(cfg)
	monitors := make(map[string]*detect.Monitor, len(configs))
	for _, res := range DetectorResources {
		monitors[res] = detect.NewMonitor(res, configs[res])
	}
	bank := &DetectorBank{
		node:      m.node,
		resources: append([]string(nil), DetectorResources...),
		monitors:  monitors,
		alarmed:   make(map[string]map[string]bool),
		entropyA:  make(map[string]bool),
	}
	if !m.detectors.CompareAndSwap(nil, bank) {
		return nil, fmt.Errorf("core: detectors already attached")
	}
	m.Subscribe(bank)
	return bank, nil
}

// Detectors returns the attached bank (nil when none).
func (m *Manager) Detectors() *DetectorBank { return m.detectors.Load() }

// Monitor returns the bank's detector for a resource.
func (b *DetectorBank) Monitor(resource string) (*detect.Monitor, bool) {
	mon, ok := b.monitors[resource]
	return mon, ok
}

// Report returns the latest published report for a resource (nil before
// the first sampling round). Safe from any goroutine.
func (b *DetectorBank) Report(resource string) *detect.Report {
	if mon, ok := b.monitors[resource]; ok {
		return mon.Latest()
	}
	return nil
}

// Verdicts adapts the latest report of a resource to the live root-cause
// strategy's verdict type. Safe from any goroutine.
func (b *DetectorBank) Verdicts(resource string) []rootcause.LiveVerdict {
	rep := b.Report(resource)
	if rep == nil {
		return nil
	}
	out := make([]rootcause.LiveVerdict, 0, len(rep.Components))
	for _, v := range rep.Components {
		out = append(out, rootcause.LiveVerdict{
			Component: v.Component,
			Node:      b.node,
			Alarm:     v.Alarm,
			Score:     v.Score,
		})
	}
	return out
}

// ObservationsFor maps a sampling round's batch onto the detect package's
// observation type for one resource. It is the single place the
// sample→observation projection lives: the manager's bank and the cluster
// aggregator's per-node banks both use it, so per-node cluster verdicts
// carry exactly single-node semantics.
func ObservationsFor(resource string, batch []ComponentSample) []detect.Observation {
	return AppendObservations(nil, resource, batch)
}

// AppendObservations is ObservationsFor into a caller-owned buffer: it
// appends one observation per applicable sample to dst and returns the
// extended slice, so per-round callers (the detector bank, the cluster
// aggregator's per-node banks) can project every round without
// allocating.
func AppendObservations(dst []detect.Observation, resource string, batch []ComponentSample) []detect.Observation {
	for _, s := range batch {
		o := detect.Observation{Component: s.Component, Usage: float64(s.Usage)}
		switch resource {
		case ResourceMemory:
			if !s.SizeOK {
				continue
			}
			o.Value = float64(s.Size)
		case ResourceCPU:
			o.Value = s.CPUSeconds
		case ResourceThreads:
			o.Value = float64(s.Threads)
		case ResourceLatency:
			o.Value = s.LatencySeconds
		case ResourceHandles:
			o.Value = float64(s.Handles)
		}
		dst = append(dst, o)
	}
	return dst
}

// ObserveSample implements SampleObserver: it fans the round's batch out
// to the per-resource monitors and queues notifications for alarm
// transitions. It runs on the sampling goroutine, serialised by the
// manager's sampleMu, which is what the single-owner detectors require.
// The borrowed batch is fully projected before the call returns, honouring
// the SampleObserver ownership contract.
func (b *DetectorBank) ObserveSample(now time.Time, batch []ComponentSample) {
	for _, resource := range b.resources {
		b.obsScratch = AppendObservations(b.obsScratch[:0], resource, batch)
		rep := b.monitors[resource].Observe(now, b.obsScratch)
		b.queueTransitions(rep)
	}
}

// queueTransitions diffs the report against the previously-alarming set
// and queues one notification per transition.
func (b *DetectorBank) queueTransitions(rep *detect.Report) {
	b.mu.Lock()
	defer b.mu.Unlock()
	was := b.alarmed[rep.Resource]
	if was == nil {
		was = make(map[string]bool)
		b.alarmed[rep.Resource] = was
	}
	for _, v := range rep.Components {
		if v.Alarm && !was[v.Component] {
			was[v.Component] = true
			b.pending = append(b.pending, jmx.Notification{
				Type:   NotifAlarm,
				Source: ManagerName(),
				Message: fmt.Sprintf("online detector flags %s on %s (slope %.4g/s, round %d)",
					v.Component, rep.Resource, v.Score, rep.Round),
				Data: v,
			})
		} else if !v.Alarm && was[v.Component] {
			delete(was, v.Component)
			b.pending = append(b.pending, jmx.Notification{
				Type:   NotifAlarm,
				Source: ManagerName(),
				Message: fmt.Sprintf("online detector clears %s on %s (round %d)",
					v.Component, rep.Resource, rep.Round),
				Data: v,
			})
		}
	}
	if rep.EntropyAlarm && !b.entropyA[rep.Resource] {
		b.entropyA[rep.Resource] = true
		b.pending = append(b.pending, jmx.Notification{
			Type:   NotifAlarm,
			Source: ManagerName(),
			Message: fmt.Sprintf("consumption entropy collapsing on %s, dominant consumer %s (round %d)",
				rep.Resource, rep.EntropySuspect, rep.Round),
			Data: rep.EntropySuspect,
		})
	} else if !rep.EntropyAlarm && b.entropyA[rep.Resource] {
		delete(b.entropyA, rep.Resource)
		b.pending = append(b.pending, jmx.Notification{
			Type:   NotifAlarm,
			Source: ManagerName(),
			Message: fmt.Sprintf("consumption entropy alarm cleared on %s (round %d)",
				rep.Resource, rep.Round),
		})
	}
}

// drainNotifications returns and clears the queued alarm transitions.
func (b *DetectorBank) drainNotifications() []jmx.Notification {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := b.pending
	b.pending = nil
	return out
}

// AlarmCount returns how many components are currently flagged for a
// resource (observability for tests and the front-end).
func (b *DetectorBank) AlarmCount(resource string) int {
	rep := b.Report(resource)
	if rep == nil {
		return 0
	}
	return len(rep.Alarms())
}

// LiveRank runs the live strategy for a resource: detector verdicts give
// the scores and alarms, the current evidence gives the map coordinates.
// It returns an empty ranking when no detectors are attached.
func (m *Manager) LiveRank(resource string) rootcause.Ranking {
	bank := m.detectors.Load()
	if bank == nil {
		return rootcause.Ranking{Resource: resource, Strategy: rootcause.Live{}.Name()}
	}
	return m.Rank(resource, rootcause.Live{Source: bank.Verdicts})
}

package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/detect"
	"repro/internal/sim"
)

// soakTarget is a pointer-free-payload component: a struct whose one-level
// object-size walk touches no map (reflect map iteration allocates its
// iterator, which would charge the sizer, not the sampling round, with
// garbage the test is not about).
type soakTarget struct {
	buf   []byte
	count int64
}

// retainedBatch is a SampleObserver that reads the borrowed batch
// synchronously — the compliant consumption pattern — and records the
// slice identity so the test can prove the collector reuses one backing
// array round over round.
type retainedBatch struct {
	rounds    int
	lastFirst *ComponentSample
	sum       int64
}

func (o *retainedBatch) ObserveSample(now time.Time, batch []ComponentSample) {
	o.rounds++
	if len(batch) > 0 {
		o.lastFirst = &batch[0]
	}
	for i := range batch {
		o.sum += batch[i].Usage
	}
}

// TestCollectorSampleSteadyStateAllocs is the sampling half of the
// monitoring plane's zero-garbage contract: with subscribers attached —
// the full detector bank plus a plain observer — a steady-state
// collection round must not allocate. (The only steady-state allocation
// left on the path is the metrics chunk that each append-only series
// takes every seriesChunkSize rounds; amortised per round that is well
// below one object, which is what the threshold checks.)
func TestCollectorSampleSteadyStateAllocs(t *testing.T) {
	f, err := New(Options{Weaver: aspect.NewWeaver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		name := fmt.Sprintf("comp%d", i)
		if err := f.InstrumentComponent(name, &soakTarget{buf: make([]byte, 1024)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f.AttachDetectors(detect.Config{}); err != nil {
		t.Fatal(err)
	}
	obs := &retainedBatch{}
	f.Collector().Subscribe(obs)

	now := sim.Epoch
	step := func() {
		now = now.Add(30 * time.Second)
		f.Manager().Sample(now)
	}
	for i := 0; i < 120; i++ { // past the detector window: everything warm
		step()
	}
	first := obs.lastFirst

	if allocs := testing.AllocsPerRun(300, step); allocs >= 1 && !raceEnabled {
		// Under the race detector sync.Pool drops items on purpose, so
		// the walker pool allocates; the assertion only holds in a
		// normal build.
		t.Fatalf("steady-state sampling allocates %.2f objects per round", allocs)
	}
	if obs.lastFirst != first {
		t.Fatal("collector did not reuse the observer batch's backing array")
	}
	if obs.rounds < 420 {
		t.Fatalf("observer saw %d rounds", obs.rounds)
	}
}

package core

import (
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/jmx"
	"repro/internal/jvmheap"
	"repro/internal/metrics"
)

// DeltaRecorder implements the paper's per-invocation measurement
// verbatim: "the AC has two advices: before and after the application
// component execution. The idea is to measure every resource before and
// after a component is used. In this way, we can know how much resource
// has been used by the component. If the component has a resource
// consumption bug, the resource available after the execution will be
// lower than before."
//
// The before advice snapshots the heap's retained bytes; the after advice
// reads them again and accumulates the delta per component. Under
// concurrent load the single-invocation delta is noisy (other requests
// allocate in between) — which is exactly why the paper (and this
// framework) also keeps the object-size sampling path; the recorder's
// accumulated deltas converge to the right per-component attribution over
// many requests because unrelated allocations cancel out in expectation.
// Recording is lock-free on both advice sides, and allocation-free for
// the container's flows: the request and its bound connection implement
// flowMarker, so the before-advice snapshot lives in an inline slot on
// the flow object itself instead of a per-execution map entry (boxing the
// key and level into a sync.Map on every request is exactly the kind of
// monitoring-plane garbage the framework must not produce). Flows whose
// key carries no mark slot fall back to the keyed sync.Map; the
// per-component accumulators are atomic cells either way, so concurrent
// requests never serialise on the recorder.
type DeltaRecorder struct {
	heap *jvmheap.Heap

	open  sync.Map // markless flow key -> int64 retained bytes at before-advice
	cells sync.Map // component name -> *deltaCell
}

// flowMarker is the inline per-flow scratch slot contract; servlet.Request
// and sqldb.Conn implement it.
type flowMarker interface {
	SetFlowMark(int64)
	FlowMark() (int64, bool)
	ClearFlowMark()
}

type deltaCell struct {
	total atomic.Int64
	count atomic.Int64
}

// NewDeltaRecorder creates a recorder over heap.
func NewDeltaRecorder(heap *jvmheap.Heap) *DeltaRecorder {
	return &DeltaRecorder{heap: heap}
}

// before snapshots the resource level for a flow.
func (d *DeltaRecorder) before(key any) {
	if key == nil {
		return
	}
	if m, ok := key.(flowMarker); ok {
		m.SetFlowMark(d.heap.Stats().Retained)
		return
	}
	d.open.Store(key, d.heap.Stats().Retained)
}

// after computes and accumulates the delta for a flow.
func (d *DeltaRecorder) after(component string, key any) {
	if key == nil {
		return
	}
	retained := d.heap.Stats().Retained
	var before int64
	if m, ok := key.(flowMarker); ok {
		v, set := m.FlowMark()
		if !set {
			return
		}
		m.ClearFlowMark()
		before = v
	} else {
		v, ok := d.open.LoadAndDelete(key)
		if !ok {
			return
		}
		before = v.(int64)
	}
	c := metrics.LoadOrCreate(&d.cells, component, func() *deltaCell { return &deltaCell{} })
	c.total.Add(retained - before)
	c.count.Add(1)
}

// DeltaOf returns the accumulated retained-bytes delta attributed to
// component and the number of observations.
func (d *DeltaRecorder) DeltaOf(component string) (total int64, observations int64) {
	if v, ok := d.cells.Load(component); ok {
		c := v.(*deltaCell)
		return c.total.Load(), c.count.Load()
	}
	return 0, 0
}

// Components lists components with recorded deltas, sorted.
func (d *DeltaRecorder) Components() []string {
	var out []string
	d.cells.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// Totals returns a copy of all accumulated deltas.
func (d *DeltaRecorder) Totals() map[string]int64 {
	out := make(map[string]int64)
	d.cells.Range(func(k, v any) bool {
		out[k.(string)] = v.(*deltaCell).total.Load()
		return true
	})
	return out
}

// Bean exposes the recorder as a monitoring agent.
func (d *DeltaRecorder) Bean() *jmx.Bean {
	return jmx.NewBean("per-invocation heap delta monitoring agent").
		Attr("Components", "components with recorded deltas", func() any { return d.Components() }).
		Op("DeltaOf", "accumulated retained-bytes delta of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			total, _ := d.DeltaOf(name)
			return total, nil
		}).
		Op("All", "accumulated deltas per component", func(...any) (any, error) {
			return d.Totals(), nil
		})
}

// ObjectName returns the recorder's agent name.
func (d *DeltaRecorder) ObjectName() jmx.ObjectName {
	return jmx.MustObjectName("monitoring:agent=HeapDelta")
}

package core

import (
	"sort"
	"sync"

	"repro/internal/jmx"
	"repro/internal/jvmheap"
)

// DeltaRecorder implements the paper's per-invocation measurement
// verbatim: "the AC has two advices: before and after the application
// component execution. The idea is to measure every resource before and
// after a component is used. In this way, we can know how much resource
// has been used by the component. If the component has a resource
// consumption bug, the resource available after the execution will be
// lower than before."
//
// The before advice snapshots the heap's retained bytes; the after advice
// reads them again and accumulates the delta per component. Under
// concurrent load the single-invocation delta is noisy (other requests
// allocate in between) — which is exactly why the paper (and this
// framework) also keeps the object-size sampling path; the recorder's
// accumulated deltas converge to the right per-component attribution over
// many requests because unrelated allocations cancel out in expectation.
type DeltaRecorder struct {
	heap *jvmheap.Heap

	mu     sync.Mutex
	open   map[any]int64 // flow key -> retained bytes at before-advice
	totals map[string]int64
	counts map[string]int64
}

// NewDeltaRecorder creates a recorder over heap.
func NewDeltaRecorder(heap *jvmheap.Heap) *DeltaRecorder {
	return &DeltaRecorder{
		heap:   heap,
		open:   make(map[any]int64),
		totals: make(map[string]int64),
		counts: make(map[string]int64),
	}
}

// before snapshots the resource level for a flow.
func (d *DeltaRecorder) before(key any) {
	if key == nil {
		return
	}
	retained := d.heap.Stats().Retained
	d.mu.Lock()
	d.open[key] = retained
	d.mu.Unlock()
}

// after computes and accumulates the delta for a flow.
func (d *DeltaRecorder) after(component string, key any) {
	if key == nil {
		return
	}
	retained := d.heap.Stats().Retained
	d.mu.Lock()
	defer d.mu.Unlock()
	start, ok := d.open[key]
	if !ok {
		return
	}
	delete(d.open, key)
	d.totals[component] += retained - start
	d.counts[component]++
}

// DeltaOf returns the accumulated retained-bytes delta attributed to
// component and the number of observations.
func (d *DeltaRecorder) DeltaOf(component string) (total int64, observations int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.totals[component], d.counts[component]
}

// Components lists components with recorded deltas, sorted.
func (d *DeltaRecorder) Components() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.totals))
	for c := range d.totals {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Totals returns a copy of all accumulated deltas.
func (d *DeltaRecorder) Totals() map[string]int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]int64, len(d.totals))
	for c, v := range d.totals {
		out[c] = v
	}
	return out
}

// Bean exposes the recorder as a monitoring agent.
func (d *DeltaRecorder) Bean() *jmx.Bean {
	return jmx.NewBean("per-invocation heap delta monitoring agent").
		Attr("Components", "components with recorded deltas", func() any { return d.Components() }).
		Op("DeltaOf", "accumulated retained-bytes delta of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			total, _ := d.DeltaOf(name)
			return total, nil
		}).
		Op("All", "accumulated deltas per component", func(...any) (any, error) {
			return d.Totals(), nil
		})
}

// ObjectName returns the recorder's agent name.
func (d *DeltaRecorder) ObjectName() jmx.ObjectName {
	return jmx.MustObjectName("monitoring:agent=HeapDelta")
}

package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// componentRecord holds the collector's per-component series. The series
// are internally concurrent (lock-free appends, non-blocking reads) and
// the baseline is atomic, so records need no lock of their own: readers
// and the sampler touch them directly.
type componentRecord struct {
	name     string
	target   any
	size     *metrics.Series // measured object size, bytes
	usage    *metrics.Series // cumulative invocations
	cpu      *metrics.Series // cumulative CPU seconds
	threads  *metrics.Series // live threads
	handles  *metrics.Series // live resource handles
	latency  *metrics.Series // cumulative response-latency seconds
	delta    *metrics.Series // accumulated per-invocation heap deltas
	baseline atomic.Int64    // first measured size
	hasBase  atomic.Bool
}

// Collector is the node-local half of the split manager: the component
// registry, the per-component time series and the sampling round that
// reads the monitoring agents through the MBeanServer. It is everything a
// node needs to measure itself; the query/ranking/notification surface
// lives in Manager, and cluster-scale merging lives in the aggregator
// (internal/cluster), which consumes the rounds a Collector emits through
// its SampleObservers.
//
// Locking is split so the paths that used to serialise on one mutex no
// longer meet: recsMu guards only the component registry (instrument /
// uninstrument, both rare); sampleMu serialises sampling rounds with each
// other (keeping every series time-ordered) but is never held while
// root-cause queries read; Data/Rank/Map take a registry read-lock just
// long enough to snapshot the record pointers and then read the series
// lock-free, concurrently with invocation recording and sampling.
type Collector struct {
	f    *Framework
	node string

	recsMu     sync.RWMutex
	components map[string]*componentRecord
	order      []string
	recsGen    atomic.Int64 // bumped on every registry change

	sampleMu     sync.Mutex
	heapRetained *metrics.Series
	samples      atomic.Int64

	// Round scratch, owned by sampleMu. The record snapshot is cached
	// against the registry generation (instrument/uninstrument are rare)
	// and the measurement/sample buffers are reused, so a steady-state
	// round allocates nothing.
	roundRecs    []*componentRecord
	roundRecsGen int64
	roundBatch   []measured
	roundSamples []ComponentSample

	// observers receive each round's batch; the slice is copy-on-write
	// behind an atomic pointer so Sample reads it without locking, and
	// obsMu serialises the rare Subscribe calls.
	obsMu     sync.Mutex
	observers atomic.Pointer[[]SampleObserver]
}

// ComponentSample is one component's measurements in a sampling round, as
// delivered to subscribed SampleObservers and shipped to cluster
// aggregators. All fields are exported so a round crosses process
// boundaries unchanged (gob/JSON wire transports).
type ComponentSample struct {
	// Component is the component name.
	Component string
	// Size is the measured retained size in bytes (valid when SizeOK).
	Size   int64
	SizeOK bool
	// Usage is the cumulative invocation count.
	Usage int64
	// CPUSeconds is the cumulative attributed CPU time.
	CPUSeconds float64
	// Threads is the live thread count.
	Threads int64
	// Handles is the live resource-handle count.
	Handles int64
	// LatencySeconds is the cumulative attributed response latency.
	LatencySeconds float64
	// Delta is the accumulated per-invocation heap delta.
	Delta int64
}

// SampleObserver consumes sampling rounds as they are ingested. Observers
// run on the sampling goroutine, serialised by the round lock (which the
// invocation-recording hot path never takes), so an observer may keep
// unsynchronised per-round state; it must not call Sample re-entrantly and
// should stay cheap — it adds latency to the round, though never to
// recording.
//
// Ownership: the batch is borrowed, not given. It is valid only for the
// duration of the ObserveSample call — the collector reclaims and rewrites
// the backing array on the next round — so an observer that retains
// samples beyond the call must copy them. Both in-tree observers comply:
// the detector bank projects the batch into its own window state
// synchronously, and the cluster forwarder's transports either ingest
// synchronously (in-proc) or finish encoding the frame before Publish
// returns (wire codecs).
type SampleObserver interface {
	ObserveSample(now time.Time, batch []ComponentSample)
}

// measured is one component's raw measurements inside a sampling round.
type measured struct {
	rec        *componentRecord
	size       int64
	usage      int64
	cpuSeconds float64
	threads    int64
	handles    int64
	latSeconds float64
	delta      int64
	sizeOK     bool
}

func newCollector(f *Framework, node string) *Collector {
	return &Collector{
		f:            f,
		node:         node,
		components:   make(map[string]*componentRecord),
		heapRetained: metrics.NewSeries("heap.retained"),
	}
}

// Node returns the collector's node identity ("" for a standalone,
// single-node deployment).
func (c *Collector) Node() string { return c.node }

// Subscribe registers an observer for future sampling rounds.
func (c *Collector) Subscribe(o SampleObserver) {
	c.obsMu.Lock()
	defer c.obsMu.Unlock()
	var cur []SampleObserver
	if p := c.observers.Load(); p != nil {
		cur = *p
	}
	next := make([]SampleObserver, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = o
	c.observers.Store(&next)
}

func (c *Collector) addComponent(name string, target any) error {
	c.recsMu.Lock()
	defer c.recsMu.Unlock()
	if _, dup := c.components[name]; dup {
		return fmt.Errorf("core: component %q already instrumented", name)
	}
	c.components[name] = &componentRecord{
		name:    name,
		target:  target,
		size:    metrics.NewSeries(name + ".size"),
		usage:   metrics.NewSeries(name + ".usage"),
		cpu:     metrics.NewSeries(name + ".cpu"),
		threads: metrics.NewSeries(name + ".threads"),
		handles: metrics.NewSeries(name + ".handles"),
		latency: metrics.NewSeries(name + ".latency"),
		delta:   metrics.NewSeries(name + ".delta"),
	}
	c.order = append(c.order, name)
	sort.Strings(c.order)
	c.recsGen.Add(1)
	return nil
}

func (c *Collector) removeComponent(name string) {
	c.recsMu.Lock()
	defer c.recsMu.Unlock()
	delete(c.components, name)
	for i, n := range c.order {
		if n == name {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.recsGen.Add(1)
}

func (c *Collector) target(name string) (any, bool) {
	c.recsMu.RLock()
	defer c.recsMu.RUnlock()
	rec, ok := c.components[name]
	if !ok {
		return nil, false
	}
	return rec.target, true
}

// Components lists the instrumented component names.
func (c *Collector) Components() []string {
	c.recsMu.RLock()
	defer c.recsMu.RUnlock()
	return append([]string(nil), c.order...)
}

// Samples returns how many sampling rounds have run.
func (c *Collector) Samples() int64 { return c.samples.Load() }

// records snapshots the instrumented records in name order.
func (c *Collector) records() []*componentRecord {
	c.recsMu.RLock()
	defer c.recsMu.RUnlock()
	out := make([]*componentRecord, 0, len(c.order))
	for _, name := range c.order {
		out = append(out, c.components[name])
	}
	return out
}

// snapshotRecords rebuilds dst into the name-ordered record snapshot and
// returns it alongside the registry generation it reflects. It is the
// one registry-iteration helper behind every generation-cached snapshot
// (the sampling round's, the manager's suspect check's): per-round
// callers keep their own (slice, generation) cache under their own lock
// and call this only when the generation moved.
func (c *Collector) snapshotRecords(dst []*componentRecord) ([]*componentRecord, int64) {
	gen := c.recsGen.Load()
	c.recsMu.RLock()
	dst = dst[:0]
	for _, name := range c.order {
		dst = append(dst, c.components[name])
	}
	c.recsMu.RUnlock()
	return dst, gen
}

// roundRecords returns the sampling round's record snapshot, in name
// order. Caller holds sampleMu. The snapshot is cached against the
// registry generation: instrument/uninstrument are rare cold-path events,
// so the common round reuses the previous snapshot without touching the
// registry lock or allocating.
func (c *Collector) roundRecords() []*componentRecord {
	if gen := c.recsGen.Load(); gen == c.roundRecsGen && c.roundRecs != nil {
		return c.roundRecs
	}
	c.roundRecs, c.roundRecsGen = c.snapshotRecords(c.roundRecs)
	return c.roundRecs
}

// Sample performs one collection round at the given instant: for every
// instrumented component it asks the object-size agent for the current
// retained size and reads the invocation/CPU/thread agents, batching the
// measurements and then appending to the series. The agents stay
// registered on the MBeanServer — that is the management plane's surface
// for discovering and operating them — but the round calls the resolved
// agents directly: one sampling round per interval, forever, must not pay
// per-call object-name formatting and argument boxing, and the paper's
// decoupling (replace an agent without touching an AC) lives in the agent
// object either way. Rounds are serialised against each other (so the
// series stay time-ordered) but the round holds no lock that invocation
// recording or root-cause queries take: ingestion appends go straight to
// the per-record lock-free series. At steady state the round allocates
// nothing: the record snapshot, the measurement batch and the observer
// sample batch are all collector-owned and reused (see SampleObserver for
// the borrow contract).
//
// Rounds must be sampled at non-decreasing instants of the collector's own
// clock; cross-node clock disagreement is normalised downstream by the
// aggregator, never here.
func (c *Collector) Sample(now time.Time) {
	c.sampleMu.Lock()

	recs := c.roundRecords()
	if cap(c.roundBatch) < len(recs) {
		c.roundBatch = make([]measured, 0, len(recs))
	}
	batch := c.roundBatch[:0]
	for _, rec := range recs {
		r := measured{rec: rec}
		if v, err := c.f.objSize.Measure(rec.name); err == nil {
			r.size = v
			r.sizeOK = true
		}
		r.usage = c.f.invocations.StatsOf(rec.name).Count
		r.cpuSeconds = c.f.cpu.TimeOf(rec.name).Seconds()
		r.threads = c.f.threads.LiveOf(rec.name)
		r.handles = c.f.handles.LiveOf(rec.name)
		r.latSeconds = c.f.invocations.LatencyOf(rec.name).Seconds()
		if c.f.deltas != nil {
			r.delta, _ = c.f.deltas.DeltaOf(rec.name)
		}
		batch = append(batch, r)
	}
	c.roundBatch = batch

	for _, r := range batch {
		rec := r.rec
		if r.sizeOK {
			if !rec.hasBase.Load() {
				rec.baseline.Store(r.size)
				rec.hasBase.Store(true)
			}
			rec.size.Append(now, float64(r.size))
		}
		rec.usage.Append(now, float64(r.usage))
		rec.cpu.Append(now, r.cpuSeconds)
		rec.threads.Append(now, float64(r.threads))
		rec.handles.Append(now, float64(r.handles))
		rec.latency.Append(now, r.latSeconds)
		rec.delta.Append(now, float64(r.delta))
	}
	if c.f.heap != nil {
		c.heapRetained.Append(now, float64(c.f.heap.Stats().Retained))
	}
	c.samples.Add(1)

	// Deliver the round to subscribed observers (the detector bank and any
	// cluster-transport forwarder live here). Still under sampleMu: rounds
	// are totally ordered for observers, which lets them keep single-owner
	// state — and sampleMu is not on the recording or query paths, so
	// nothing contends. Observers borrow the batch for the duration of the
	// call; the collector reclaims and rewrites it next round.
	if p := c.observers.Load(); p != nil && len(*p) > 0 {
		if cap(c.roundSamples) < len(batch) {
			c.roundSamples = make([]ComponentSample, 0, len(batch))
		}
		samples := c.roundSamples[:len(batch)]
		for i, r := range batch {
			samples[i] = ComponentSample{
				Component:      r.rec.name,
				Size:           r.size,
				SizeOK:         r.sizeOK,
				Usage:          r.usage,
				CPUSeconds:     r.cpuSeconds,
				Threads:        r.threads,
				Handles:        r.handles,
				LatencySeconds: r.latSeconds,
				Delta:          r.delta,
			}
		}
		c.roundSamples = samples
		for _, o := range *p {
			o.ObserveSample(now, samples)
		}
	}
	c.sampleMu.Unlock()
}

// SizeSeries returns a copy of the measured size series of a component.
func (c *Collector) SizeSeries(name string) []metrics.Point {
	c.recsMu.RLock()
	rec, ok := c.components[name]
	c.recsMu.RUnlock()
	if ok {
		return rec.size.Points()
	}
	return nil
}

// HeapRetainedSeries returns the sampled heap retained-bytes series.
func (c *Collector) HeapRetainedSeries() []metrics.Point {
	return c.heapRetained.Points()
}

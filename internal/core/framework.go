// Package core implements the paper's monitoring framework: the Aspect
// Component (AC) whose before/after advice observes every component
// execution, the AC Proxy beans that let the management plane control
// interception per component at runtime, and the JMX Manager Agent that
// collects per-component resource metrics, builds the resource-consumption
// × usage-frequency map and determines the most likely aging root cause.
//
// The framework is application-agnostic: it attaches to any set of
// components woven through the aspect weaver, with no changes to
// application source — the property the paper gets from AspectJ load-time
// weaving and this reproduction gets from registration-time weaving.
//
// The manager agent is split in two: Collector is the node-local half
// (component registry, sampling rounds, per-component series) and
// Manager embeds it, adding the management plane — root-cause queries,
// the online detector bank, notifications and the JMX bean. A
// single-node deployment only ever sees the Manager; a clustered one
// ships each Collector's rounds to a cluster aggregator (see
// internal/cluster) through the SampleObserver subscription.
//
// Concurrency contract: the AC's advice runs on every invoking goroutine
// and records only into lock-free structures (sync.Map-backed atomic
// cells, striped counters), so recording never blocks and is never
// blocked. The collector splits its state onto separate locks — recsMu
// for the component registry (rare instrument/uninstrument), sampleMu
// serialising sampling rounds (and the SampleObservers they feed,
// detectors and cluster forwarders included) against each other only,
// and the manager's suspectMu for notification bookkeeping — with the
// invariant that no lock is shared between invocation recording,
// sampling and root-cause queries: queries snapshot record pointers under
// a read-lock and then read the lock-free series concurrently with both.
package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/detect"
	"repro/internal/jmx"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
	"repro/internal/objsize"
	"repro/internal/sim"
)

// JMX names of the framework's own beans.
const (
	// Domain is the JMX domain of the framework beans.
	Domain = "aging"
	// ACAspectName is the weaver name of the Aspect Component advice.
	ACAspectName = "core.AspectComponent"
)

// ManagerName returns the manager agent's object name.
func ManagerName() jmx.ObjectName {
	return jmx.MustObjectName(Domain + ":type=Manager")
}

// ACProxyName returns the AC Proxy object name of a component.
func ACProxyName(component string) jmx.ObjectName {
	return jmx.MustObjectName(Domain + ":type=ACProxy,component=" + component)
}

// QueryACProxies is the pattern matching every AC proxy.
func QueryACProxies() jmx.ObjectName {
	return jmx.MustObjectName(Domain + ":type=ACProxy,*")
}

// costReporter is the contract through which the AC learns the simulated
// service time of an execution (the container's request implements it).
type costReporter interface {
	ReportedCost() time.Duration
}

// latencyReporter is the contract through which the AC learns the
// response latency of an execution — service time plus injected wait.
// When an argument reports a latency above its cost, the gap is
// contention or queueing: CPU accounting charges the cost, latency
// accounting records the full wait.
type latencyReporter interface {
	ReportedLatency() time.Duration
}

// Options configures a Framework.
type Options struct {
	// Weaver is the aspect weaver the application's components are
	// woven through. Required.
	Weaver *aspect.Weaver
	// Clock stamps samples and notifications (the weaver's clock when
	// nil).
	Clock sim.Clock
	// Server is the MBeanServer to register on (created when nil).
	Server *jmx.Server
	// Heap, when non-nil, enables the memory agent and heap sampling.
	Heap *jvmheap.Heap
	// SizePolicy selects the object-size measurement depth (the
	// paper's OneLevel when unset ... the zero value is Shallow, so the
	// constructor treats Shallow as "use the default").
	SizePolicy objsize.Policy
	// SampleInterval is the manager's sampling period (default 30s).
	SampleInterval time.Duration
	// Pointcut restricts which components the AC observes (default
	// "within(*)").
	Pointcut string
	// Node names this framework's node in a clustered deployment; the
	// collector stamps it on every round shipped to an aggregator. Leave
	// empty for a standalone single-node system.
	Node string
}

// Framework wires the agents, the AC and the manager together.
type Framework struct {
	clock  sim.Clock
	server *jmx.Server
	weaver *aspect.Weaver
	heap   *jvmheap.Heap

	objSize     *monitor.ObjectSizeAgent
	cpu         *monitor.CPUAgent
	threads     *monitor.ThreadAgent
	handles     *monitor.HandleAgent
	invocations *monitor.InvocationAgent
	memory      *monitor.MemoryAgent
	deltas      *DeltaRecorder

	manager  *Manager
	acAspect *aspect.Aspect
	interval time.Duration

	// rejuvMu guards the micro-reboot counters — management-plane state,
	// never touched by recording or sampling.
	rejuvMu    sync.Mutex
	rejuvCount map[string]int64
	rejuvFreed map[string]int64
}

// New assembles a framework: it creates and registers the monitoring
// agents, installs the Aspect Component advice on the weaver, and
// registers the manager agent bean.
func New(opts Options) (*Framework, error) {
	if opts.Weaver == nil {
		return nil, errors.New("core: Options.Weaver is required")
	}
	clock := opts.Clock
	if clock == nil {
		clock = opts.Weaver.Clock()
	}
	server := opts.Server
	if server == nil {
		server = jmx.NewServer(clock)
	}
	policy := opts.SizePolicy
	if policy == objsize.Shallow {
		policy = objsize.OneLevel
	}
	interval := opts.SampleInterval
	if interval <= 0 {
		interval = 30 * time.Second
	}
	pc := opts.Pointcut
	if pc == "" {
		pc = "within(*)"
	}
	pointcut, err := aspect.ParsePointcut(pc)
	if err != nil {
		return nil, err
	}

	f := &Framework{
		clock:       clock,
		server:      server,
		weaver:      opts.Weaver,
		heap:        opts.Heap,
		objSize:     monitor.NewObjectSizeAgent(policy),
		cpu:         monitor.NewCPUAgent(),
		threads:     monitor.NewThreadAgent(),
		handles:     monitor.NewHandleAgent(),
		invocations: monitor.NewInvocationAgent(),
		interval:    interval,
		rejuvCount:  make(map[string]int64),
		rejuvFreed:  make(map[string]int64),
	}
	agents := []monitor.Agent{f.objSize, f.cpu, f.threads, f.handles, f.invocations}
	if opts.Heap != nil {
		f.memory = monitor.NewMemoryAgent(opts.Heap)
		f.deltas = NewDeltaRecorder(opts.Heap)
		agents = append(agents, f.memory, f.deltas)
	}
	if err := monitor.RegisterAll(server, agents...); err != nil {
		return nil, err
	}

	f.manager = newManager(f, opts.Node)
	if err := server.Register(ManagerName(), f.manager.bean()); err != nil {
		return nil, err
	}

	// The Aspect Component: one advice body serving as the per-component
	// AC. The before advice snapshots the heap level (the paper's
	// "measure every resource before ... a component is used"); the
	// after advice reads it again to attribute the delta, records the
	// invocation, and charges CPU time for top-level executions.
	f.acAspect = &aspect.Aspect{
		Name:     ACAspectName,
		Order:    -10, // outside injectors so it observes their effects
		Pointcut: pointcut,
		Before: func(jp *aspect.JoinPoint) {
			if f.deltas != nil && jp.Depth == 0 {
				f.deltas.before(jp.Key())
			}
		},
		After: func(jp *aspect.JoinPoint) {
			if f.deltas != nil && jp.Depth == 0 {
				f.deltas.after(jp.Component, jp.Key())
			}
			cost := jp.Duration()
			latency := time.Duration(0)
			for _, arg := range jp.Args {
				if r, ok := arg.(costReporter); ok {
					if d := r.ReportedCost(); d > 0 {
						cost = d
					}
					if lr, ok := arg.(latencyReporter); ok {
						latency = lr.ReportedLatency()
					}
					break
				}
			}
			if latency < cost {
				latency = cost
			}
			f.invocations.Record(jp.Component, cost, jp.Err != nil)
			f.invocations.RecordLatency(jp.Component, latency)
			if jp.Depth == 0 && cost > 0 {
				f.cpu.AddTime(jp.Component, cost)
			}
		},
	}
	if err := opts.Weaver.Register(f.acAspect); err != nil {
		return nil, err
	}
	return f, nil
}

// Server returns the MBeanServer everything is registered on.
func (f *Framework) Server() *jmx.Server { return f.server }

// Manager returns the JMX Manager Agent.
func (f *Framework) Manager() *Manager { return f.manager }

// Collector returns the node-local collector half of the manager — the
// registry, sampling rounds and series. Cluster deployments subscribe a
// transport forwarder here to ship rounds to an aggregator.
func (f *Framework) Collector() *Collector { return f.manager.Collector }

// Node returns the framework's node identity ("" when standalone).
func (f *Framework) Node() string { return f.manager.Node() }

// Weaver returns the aspect weaver.
func (f *Framework) Weaver() *aspect.Weaver { return f.weaver }

// Clock returns the framework's time source.
func (f *Framework) Clock() sim.Clock { return f.clock }

// InvocationAgent exposes the invocation monitoring agent.
func (f *Framework) InvocationAgent() *monitor.InvocationAgent { return f.invocations }

// CPUAgent exposes the CPU monitoring agent.
func (f *Framework) CPUAgent() *monitor.CPUAgent { return f.cpu }

// ThreadAgent exposes the thread monitoring agent.
func (f *Framework) ThreadAgent() *monitor.ThreadAgent { return f.threads }

// HandleAgent exposes the resource-handle monitoring agent.
func (f *Framework) HandleAgent() *monitor.HandleAgent { return f.handles }

// ObjectSizeAgent exposes the object-size monitoring agent.
func (f *Framework) ObjectSizeAgent() *monitor.ObjectSizeAgent { return f.objSize }

// DeltaRecorder exposes the per-invocation heap-delta agent (nil without a
// heap).
func (f *Framework) DeltaRecorder() *DeltaRecorder { return f.deltas }

// SetMonitoringEnabled switches the whole AC on or off at runtime, the
// coarse overhead control of the paper's §III.B.3.
func (f *Framework) SetMonitoringEnabled(on bool) { f.acAspect.SetEnabled(on) }

// MonitoringEnabled reports whether the AC advice is active.
func (f *Framework) MonitoringEnabled() bool { return f.acAspect.Enabled() }

// InstrumentComponent attaches the framework to one component: its live
// object becomes measurable by the object-size agent, the manager tracks
// its series, and an AC Proxy bean is registered for runtime control.
func (f *Framework) InstrumentComponent(name string, target any) error {
	if name == "" || target == nil {
		return errors.New("core: InstrumentComponent needs a name and a live target")
	}
	f.objSize.RegisterTarget(name, target)
	if err := f.manager.addComponent(name, target); err != nil {
		f.objSize.UnregisterTarget(name)
		return err
	}
	if err := f.server.Register(ACProxyName(name), f.acProxyBean(name)); err != nil {
		f.objSize.UnregisterTarget(name)
		f.manager.removeComponent(name)
		return err
	}
	return nil
}

// AttachDetectors wires the streaming aging detectors into the manager's
// sampling rounds (see internal/detect and Manager.AttachDetectors).
func (f *Framework) AttachDetectors(cfg detect.Config) (*DetectorBank, error) {
	return f.manager.AttachDetectors(cfg)
}

// StartSampling schedules periodic manager sampling on the engine and
// returns a stop function.
func (f *Framework) StartSampling(engine *sim.Engine) (stop func()) {
	return engine.Every(f.interval, func(now time.Time) {
		f.manager.Sample(now)
	})
}

// releaser lets the framework free a component's retained leak buffer
// during a micro-reboot; components embedding a LeakStore satisfy it.
type releaser interface {
	Release() int
}

// NotifRejuvenation is emitted through the MBeanServer every time a
// component is micro-rebooted; Data carries the bytes reclaimed.
const NotifRejuvenation = "aging.rejuvenation"

// MicroReboot performs the surgical recovery the paper motivates with
// micro-rebooting: it releases the named component's retained memory (its
// leak store and its heap charge) without touching the rest of the
// application, and returns the number of bytes reclaimed. Each reboot is
// counted per component and announced as a NotifRejuvenation.
func (f *Framework) MicroReboot(component string) int64 {
	var freed int64
	if target, ok := f.manager.target(component); ok {
		if r, ok := target.(releaser); ok {
			freed += int64(r.Release())
		}
	}
	if f.heap != nil {
		f.heap.FreeAll(component)
	}
	f.rejuvMu.Lock()
	f.rejuvCount[component]++
	f.rejuvFreed[component] += freed
	n := f.rejuvCount[component]
	f.rejuvMu.Unlock()
	f.server.Emit(jmx.Notification{
		Type:    NotifRejuvenation,
		Source:  ManagerName(),
		Message: fmt.Sprintf("micro-reboot #%d of %s freed %d bytes", n, component, freed),
		Data:    freed,
	})
	return freed
}

// Rejuvenations returns a copy of the per-component micro-reboot
// counters.
func (f *Framework) Rejuvenations() map[string]int64 {
	f.rejuvMu.Lock()
	defer f.rejuvMu.Unlock()
	out := make(map[string]int64, len(f.rejuvCount))
	for c, n := range f.rejuvCount {
		out[c] = n
	}
	return out
}

// RejuvenationCount returns the total micro-reboots across components.
func (f *Framework) RejuvenationCount() int64 {
	f.rejuvMu.Lock()
	defer f.rejuvMu.Unlock()
	var total int64
	for _, n := range f.rejuvCount {
		total += n
	}
	return total
}

//go:build race

package core

// raceEnabled reports that this test binary runs under the race
// detector, where sync.Pool deliberately drops items (to widen race
// windows) and alloc-count assertions are meaningless.
const raceEnabled = true

package core

import (
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
)

// keyedFlow is a flow-identifiable invocation argument.
type keyedFlow struct{ id int }

func (k *keyedFlow) TraceKey() any { return k }

func TestDeltaRecorderAttributesLeaks(t *testing.T) {
	heap := jvmheap.New(1<<24, nil)
	w := aspect.NewWeaver(nil)
	f, err := New(Options{Weaver: w, Heap: heap})
	if err != nil {
		t.Fatal(err)
	}
	flow := &keyedFlow{}
	leaky := w.Weave("svc.leaky", "Service", func(args ...any) (any, error) {
		// The component retains 4KB per execution.
		return nil, heap.Allocate("svc.leaky", 4096)
	})
	clean := w.Weave("svc.clean", "Service", func(args ...any) (any, error) {
		return nil, nil
	})
	for i := 0; i < 10; i++ {
		if _, err := leaky(flow); err != nil {
			t.Fatal(err)
		}
		if _, err := clean(flow); err != nil {
			t.Fatal(err)
		}
	}
	rec := f.DeltaRecorder()
	leakyDelta, n := rec.DeltaOf("svc.leaky")
	if n != 10 || leakyDelta != 10*4096 {
		t.Fatalf("leaky delta = %d over %d, want 40960 over 10", leakyDelta, n)
	}
	cleanDelta, _ := rec.DeltaOf("svc.clean")
	if cleanDelta != 0 {
		t.Fatalf("clean delta = %d, want 0", cleanDelta)
	}
	comps := rec.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %v", comps)
	}
	if rec.Totals()["svc.leaky"] != 40960 {
		t.Fatalf("Totals = %v", rec.Totals())
	}
}

func TestDeltaRecorderBean(t *testing.T) {
	heap := jvmheap.New(1<<20, nil)
	rec := NewDeltaRecorder(heap)
	rec.before("flow")
	if err := heap.Allocate("svc.A", 512); err != nil {
		t.Fatal(err)
	}
	rec.after("svc.A", "flow")
	bean := rec.Bean()
	v, err := bean.Invoke("DeltaOf", "svc.A")
	if err != nil || v.(int64) != 512 {
		t.Fatalf("bean DeltaOf = %v, %v", v, err)
	}
	all, err := bean.Invoke("All")
	if err != nil || all.(map[string]int64)["svc.A"] != 512 {
		t.Fatalf("bean All = %v, %v", all, err)
	}
	if _, err := bean.Invoke("DeltaOf"); err == nil {
		t.Fatal("DeltaOf without args accepted")
	}
	if rec.ObjectName().Get("agent") != "HeapDelta" {
		t.Fatalf("ObjectName = %v", rec.ObjectName())
	}
}

func TestDeltaRecorderIgnoresKeylessAndUnmatched(t *testing.T) {
	heap := jvmheap.New(1<<20, nil)
	rec := NewDeltaRecorder(heap)
	rec.before(nil)          // keyless: ignored
	rec.after("svc.A", nil)  // keyless: ignored
	rec.after("svc.A", "??") // no matching before: ignored
	if total, n := rec.DeltaOf("svc.A"); total != 0 || n != 0 {
		t.Fatalf("phantom delta recorded: %d over %d", total, n)
	}
}

func TestManagerMemoryDeltaResource(t *testing.T) {
	heap := jvmheap.New(1<<24, nil)
	w := aspect.NewWeaver(nil)
	f, err := New(Options{Weaver: w, Heap: heap})
	if err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	flow := &keyedFlow{}
	fn := w.Weave("svc.A", "Service", func(args ...any) (any, error) {
		return nil, heap.Allocate("svc.A", 1024)
	})
	for i := 0; i < 5; i++ {
		if _, err := fn(flow); err != nil {
			t.Fatal(err)
		}
	}
	f.Manager().Sample(time.Now())
	data, err := f.Manager().Data(ResourceMemoryDelta)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 1 || data[0].Consumption != 5*1024 {
		t.Fatalf("delta data = %+v", data)
	}
	top, ok := f.Manager().Map(ResourceMemoryDelta).Top()
	if !ok || top.Name != "svc.A" {
		t.Fatalf("delta map top = %+v", top)
	}
}

package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/jmx"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/rootcause"
)

// NotifSuspect is the notification type the manager emits when the top
// aging suspect changes.
const NotifSuspect = "aging.suspect"

// Resources the manager can build maps for.
const (
	ResourceMemory  = "memory"
	ResourceCPU     = "cpu"
	ResourceThreads = "threads"
	// ResourceMemoryDelta ranks on the per-invocation heap deltas the
	// AC's before/after advice accumulates (§III.B.1), the paper's
	// original measurement path; available when a heap is attached.
	ResourceMemoryDelta = "memory-delta"
)

// componentRecord holds the manager's per-component series.
type componentRecord struct {
	name     string
	target   any
	size     *metrics.Series // measured object size, bytes
	usage    *metrics.Series // cumulative invocations
	cpu      *metrics.Series // cumulative CPU seconds
	threads  *metrics.Series // live threads
	delta    *metrics.Series // accumulated per-invocation heap deltas
	baseline int64           // first measured size
	hasBase  bool
}

// Manager is the JMX Manager Agent: it samples the monitoring agents
// through the MBeanServer (preserving the paper's decoupling — replacing
// an agent never requires touching the manager), accumulates per-component
// time series, and answers root-cause queries.
type Manager struct {
	f *Framework

	mu           sync.Mutex
	components   map[string]*componentRecord
	order        []string
	heapRetained *metrics.Series
	samples      int64
	lastSuspect  string
}

func newManager(f *Framework) *Manager {
	return &Manager{
		f:            f,
		components:   make(map[string]*componentRecord),
		heapRetained: metrics.NewSeries("heap.retained"),
	}
}

func (m *Manager) addComponent(name string, target any) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.components[name]; dup {
		return fmt.Errorf("core: component %q already instrumented", name)
	}
	m.components[name] = &componentRecord{
		name:    name,
		target:  target,
		size:    metrics.NewSeries(name + ".size"),
		usage:   metrics.NewSeries(name + ".usage"),
		cpu:     metrics.NewSeries(name + ".cpu"),
		threads: metrics.NewSeries(name + ".threads"),
		delta:   metrics.NewSeries(name + ".delta"),
	}
	m.order = append(m.order, name)
	sort.Strings(m.order)
	return nil
}

func (m *Manager) removeComponent(name string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.components, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

func (m *Manager) target(name string) (any, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.components[name]
	if !ok {
		return nil, false
	}
	return rec.target, true
}

// Components lists the instrumented component names.
func (m *Manager) Components() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Samples returns how many sampling rounds have run.
func (m *Manager) Samples() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.samples
}

// Sample performs one collection round at the given instant: for every
// instrumented component it asks the object-size agent (via the
// MBeanServer, as the paper's ACs do) for the current retained size and
// reads the invocation/CPU/thread agents, appending to the series.
func (m *Manager) Sample(now time.Time) {
	m.mu.Lock()
	names := append([]string(nil), m.order...)
	m.mu.Unlock()

	type measured struct {
		name       string
		size       int64
		usage      int64
		cpuSeconds float64
		threads    int64
		delta      int64
		sizeOK     bool
	}
	results := make([]measured, 0, len(names))
	for _, name := range names {
		r := measured{name: name}
		if v, err := m.f.server.Invoke(monitor.AgentName("ObjectSize"), "Measure", name); err == nil {
			r.size = v.(int64)
			r.sizeOK = true
		}
		r.usage = m.f.invocations.StatsOf(name).Count
		r.cpuSeconds = m.f.cpu.TimeOf(name).Seconds()
		r.threads = m.f.threads.LiveOf(name)
		if m.f.deltas != nil {
			r.delta, _ = m.f.deltas.DeltaOf(name)
		}
		results = append(results, r)
	}

	m.mu.Lock()
	for _, r := range results {
		rec, ok := m.components[r.name]
		if !ok {
			continue
		}
		if r.sizeOK {
			if !rec.hasBase {
				rec.baseline = r.size
				rec.hasBase = true
			}
			rec.size.Append(now, float64(r.size))
		}
		rec.usage.Append(now, float64(r.usage))
		rec.cpu.Append(now, r.cpuSeconds)
		rec.threads.Append(now, float64(r.threads))
		rec.delta.Append(now, float64(r.delta))
	}
	if m.f.heap != nil {
		m.heapRetained.Append(now, float64(m.f.heap.Stats().Retained))
	}
	m.samples++
	m.mu.Unlock()

	m.notifyIfSuspectChanged()
}

// notifyIfSuspectChanged emits an aging.suspect notification when the
// most suspicious component changes and its score is meaningful.
func (m *Manager) notifyIfSuspectChanged() {
	ranking := m.Rank(ResourceMemory, rootcause.PaperMap{})
	top, ok := ranking.Top()
	if !ok || top.Score < 0.1 {
		return
	}
	m.mu.Lock()
	changed := top.Name != m.lastSuspect
	if changed {
		m.lastSuspect = top.Name
	}
	m.mu.Unlock()
	if changed {
		m.f.server.Emit(jmx.Notification{
			Type:    NotifSuspect,
			Source:  ManagerName(),
			Message: fmt.Sprintf("top aging suspect: %s (score %.3f)", top.Name, top.Score),
			Data:    top,
		})
	}
}

// SizeSeries returns a copy of the measured size series of a component.
func (m *Manager) SizeSeries(name string) []metrics.Point {
	m.mu.Lock()
	defer m.mu.Unlock()
	if rec, ok := m.components[name]; ok {
		return rec.size.Points()
	}
	return nil
}

// HeapRetainedSeries returns the sampled heap retained-bytes series.
func (m *Manager) HeapRetainedSeries() []metrics.Point {
	return m.heapRetained.Points()
}

// Data assembles the per-component evidence for a resource, the input to
// the ranking strategies. For memory, consumption is the measured size
// net of the component's first-sample baseline.
func (m *Manager) Data(resource string) ([]rootcause.ComponentData, error) {
	switch resource {
	case ResourceMemory, ResourceCPU, ResourceThreads, ResourceMemoryDelta:
	default:
		return nil, fmt.Errorf("core: unknown resource %q", resource)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]rootcause.ComponentData, 0, len(m.order))
	for _, name := range m.order {
		rec := m.components[name]
		d := rootcause.ComponentData{Name: name}
		if last, ok := rec.usage.Last(); ok {
			d.Usage = int64(last.V)
		}
		switch resource {
		case ResourceMemory:
			if last, ok := rec.size.Last(); ok {
				d.Consumption = math.Max(0, last.V-float64(rec.baseline))
			}
			d.Series = rec.size.Points()
		case ResourceCPU:
			if last, ok := rec.cpu.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.cpu.Points()
		case ResourceThreads:
			if last, ok := rec.threads.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.threads.Points()
		case ResourceMemoryDelta:
			if last, ok := rec.delta.Last(); ok {
				d.Consumption = math.Max(0, last.V)
			}
			d.Series = rec.delta.Points()
		default:
			return nil, fmt.Errorf("core: unknown resource %q", resource)
		}
		out = append(out, d)
	}
	return out, nil
}

// Rank runs a strategy over the current evidence for a resource. Unknown
// resources yield an empty ranking.
func (m *Manager) Rank(resource string, strategy rootcause.Strategy) rootcause.Ranking {
	data, err := m.Data(resource)
	if err != nil {
		return rootcause.Ranking{Resource: resource, Strategy: strategy.Name()}
	}
	return strategy.Rank(resource, data)
}

// Map builds the paper's consumption × usage map for a resource.
func (m *Manager) Map(resource string) rootcause.Ranking {
	return m.Rank(resource, rootcause.PaperMap{})
}

// TimeToExhaustion extrapolates the time until heap exhaustion from the
// retained-bytes series (Sen slope over the sampled history). It returns
// +Inf when the heap is not growing or no heap is attached.
func (m *Manager) TimeToExhaustion() time.Duration {
	if m.f.heap == nil {
		return time.Duration(math.MaxInt64)
	}
	trend := metrics.MannKendallSeries(m.HeapRetainedSeries(), 0.05)
	secs := m.f.heap.HeadroomSeconds(trend.SenSlope)
	if math.IsInf(secs, 1) || secs > float64(math.MaxInt64/int64(time.Second)) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(secs * float64(time.Second))
}

// bean exposes the manager over JMX.
func (m *Manager) bean() *jmx.Bean {
	return jmx.NewBean("JMX Manager Agent: resource-component map and root cause determination").
		Attr("Components", "instrumented component names", func() any { return m.Components() }).
		Attr("Samples", "collection rounds so far", func() any { return m.Samples() }).
		Attr("MonitoringEnabled", "whether the AC advice is active", func() any {
			return m.f.MonitoringEnabled()
		}).
		Op("Sample", "run one collection round now", func(...any) (any, error) {
			m.Sample(m.f.clock.Now())
			return m.Samples(), nil
		}).
		Op("Map", "build the consumption×usage map for a resource", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.Map(resource), nil
		}).
		Op("Suspects", "rank components for a resource with the paper strategy", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			ranking := m.Map(resource)
			names := make([]string, len(ranking.Entries))
			for i, e := range ranking.Entries {
				names[i] = e.Name
			}
			return names, nil
		}).
		Op("ActivateAC", "enable interception of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			m.f.weaver.SetComponentEnabled(name, true)
			return true, nil
		}).
		Op("DeactivateAC", "disable interception of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			m.f.weaver.SetComponentEnabled(name, false)
			return true, nil
		}).
		Op("MicroReboot", "release the named component's retained memory", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.f.MicroReboot(name), nil
		}).
		Op("TimeToExhaustion", "seconds until heap exhaustion at the current trend", func(...any) (any, error) {
			return m.TimeToExhaustion().Seconds(), nil
		})
}

func stringArg(args []any) (string, error) {
	if len(args) != 1 {
		return "", errors.New("core: want exactly one string argument")
	}
	s, ok := args[0].(string)
	if !ok {
		return "", errors.New("core: want a string argument")
	}
	return s, nil
}

package core

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jmx"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/rootcause"
)

// NotifSuspect is the notification type the manager emits when the top
// aging suspect changes.
const NotifSuspect = "aging.suspect"

// Resources the manager can build maps for.
const (
	ResourceMemory  = "memory"
	ResourceCPU     = "cpu"
	ResourceThreads = "threads"
	// ResourceMemoryDelta ranks on the per-invocation heap deltas the
	// AC's before/after advice accumulates (§III.B.1), the paper's
	// original measurement path; available when a heap is attached.
	ResourceMemoryDelta = "memory-delta"
)

// componentRecord holds the manager's per-component series. The series
// are internally concurrent (lock-free appends, non-blocking reads) and
// the baseline is atomic, so records need no lock of their own: readers
// and the sampler touch them directly.
type componentRecord struct {
	name     string
	target   any
	size     *metrics.Series // measured object size, bytes
	usage    *metrics.Series // cumulative invocations
	cpu      *metrics.Series // cumulative CPU seconds
	threads  *metrics.Series // live threads
	delta    *metrics.Series // accumulated per-invocation heap deltas
	baseline atomic.Int64    // first measured size
	hasBase  atomic.Bool
}

// Manager is the JMX Manager Agent: it samples the monitoring agents
// through the MBeanServer (preserving the paper's decoupling — replacing
// an agent never requires touching the manager), accumulates per-component
// time series, and answers root-cause queries.
//
// Locking is split so the paths that used to serialise on one mutex no
// longer meet: recsMu guards only the component registry (instrument /
// uninstrument, both rare); sampleMu serialises sampling rounds with each
// other (keeping every series time-ordered) but is never held while
// root-cause queries read; Data/Rank/Map take a registry read-lock just
// long enough to snapshot the record pointers and then read the series
// lock-free, concurrently with invocation recording and sampling.
type Manager struct {
	f *Framework

	recsMu     sync.RWMutex
	components map[string]*componentRecord
	order      []string

	sampleMu     sync.Mutex
	heapRetained *metrics.Series
	samples      atomic.Int64

	suspectMu   sync.Mutex
	lastSuspect string

	// observers receive each round's batch; the slice is copy-on-write
	// behind an atomic pointer so Sample reads it without locking, and
	// obsMu serialises the rare Subscribe calls.
	obsMu     sync.Mutex
	observers atomic.Pointer[[]SampleObserver]
	detectors atomic.Pointer[DetectorBank]
}

// ComponentSample is one component's measurements in a sampling round, as
// delivered to subscribed SampleObservers.
type ComponentSample struct {
	// Component is the component name.
	Component string
	// Size is the measured retained size in bytes (valid when SizeOK).
	Size   int64
	SizeOK bool
	// Usage is the cumulative invocation count.
	Usage int64
	// CPUSeconds is the cumulative attributed CPU time.
	CPUSeconds float64
	// Threads is the live thread count.
	Threads int64
	// Delta is the accumulated per-invocation heap delta.
	Delta int64
}

// SampleObserver consumes sampling rounds as they are ingested. Observers
// run on the sampling goroutine, serialised by the round lock (which the
// invocation-recording hot path never takes), so an observer may keep
// unsynchronised per-round state; it must not call Sample re-entrantly and
// should stay cheap — it adds latency to the round, though never to
// recording.
type SampleObserver interface {
	ObserveSample(now time.Time, batch []ComponentSample)
}

// Subscribe registers an observer for future sampling rounds.
func (m *Manager) Subscribe(o SampleObserver) {
	m.obsMu.Lock()
	defer m.obsMu.Unlock()
	var cur []SampleObserver
	if p := m.observers.Load(); p != nil {
		cur = *p
	}
	next := make([]SampleObserver, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = o
	m.observers.Store(&next)
}

func newManager(f *Framework) *Manager {
	return &Manager{
		f:            f,
		components:   make(map[string]*componentRecord),
		heapRetained: metrics.NewSeries("heap.retained"),
	}
}

func (m *Manager) addComponent(name string, target any) error {
	m.recsMu.Lock()
	defer m.recsMu.Unlock()
	if _, dup := m.components[name]; dup {
		return fmt.Errorf("core: component %q already instrumented", name)
	}
	m.components[name] = &componentRecord{
		name:    name,
		target:  target,
		size:    metrics.NewSeries(name + ".size"),
		usage:   metrics.NewSeries(name + ".usage"),
		cpu:     metrics.NewSeries(name + ".cpu"),
		threads: metrics.NewSeries(name + ".threads"),
		delta:   metrics.NewSeries(name + ".delta"),
	}
	m.order = append(m.order, name)
	sort.Strings(m.order)
	return nil
}

func (m *Manager) removeComponent(name string) {
	m.recsMu.Lock()
	defer m.recsMu.Unlock()
	delete(m.components, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
}

func (m *Manager) target(name string) (any, bool) {
	m.recsMu.RLock()
	defer m.recsMu.RUnlock()
	rec, ok := m.components[name]
	if !ok {
		return nil, false
	}
	return rec.target, true
}

// Components lists the instrumented component names.
func (m *Manager) Components() []string {
	m.recsMu.RLock()
	defer m.recsMu.RUnlock()
	return append([]string(nil), m.order...)
}

// Samples returns how many sampling rounds have run.
func (m *Manager) Samples() int64 { return m.samples.Load() }

// records snapshots the instrumented records in name order.
func (m *Manager) records() []*componentRecord {
	m.recsMu.RLock()
	defer m.recsMu.RUnlock()
	out := make([]*componentRecord, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.components[name])
	}
	return out
}

// Sample performs one collection round at the given instant: for every
// instrumented component it asks the object-size agent (via the
// MBeanServer, as the paper's ACs do) for the current retained size and
// reads the invocation/CPU/thread agents, batching the measurements and
// then appending to the series. Rounds are serialised against each other
// (so the series stay time-ordered) but the round holds no lock that
// invocation recording or root-cause queries take: ingestion appends go
// straight to the per-record lock-free series.
func (m *Manager) Sample(now time.Time) {
	m.sampleMu.Lock()

	recs := m.records()
	type measured struct {
		rec        *componentRecord
		size       int64
		usage      int64
		cpuSeconds float64
		threads    int64
		delta      int64
		sizeOK     bool
	}
	batch := make([]measured, 0, len(recs))
	for _, rec := range recs {
		r := measured{rec: rec}
		if v, err := m.f.server.Invoke(monitor.AgentName("ObjectSize"), "Measure", rec.name); err == nil {
			r.size = v.(int64)
			r.sizeOK = true
		}
		r.usage = m.f.invocations.StatsOf(rec.name).Count
		r.cpuSeconds = m.f.cpu.TimeOf(rec.name).Seconds()
		r.threads = m.f.threads.LiveOf(rec.name)
		if m.f.deltas != nil {
			r.delta, _ = m.f.deltas.DeltaOf(rec.name)
		}
		batch = append(batch, r)
	}

	for _, r := range batch {
		rec := r.rec
		if r.sizeOK {
			if !rec.hasBase.Load() {
				rec.baseline.Store(r.size)
				rec.hasBase.Store(true)
			}
			rec.size.Append(now, float64(r.size))
		}
		rec.usage.Append(now, float64(r.usage))
		rec.cpu.Append(now, r.cpuSeconds)
		rec.threads.Append(now, float64(r.threads))
		rec.delta.Append(now, float64(r.delta))
	}
	if m.f.heap != nil {
		m.heapRetained.Append(now, float64(m.f.heap.Stats().Retained))
	}
	m.samples.Add(1)

	// Deliver the round to subscribed observers (the detector bank lives
	// here). Still under sampleMu: rounds are totally ordered for
	// observers, which lets them keep single-owner state — and sampleMu
	// is not on the recording or query paths, so nothing contends.
	if p := m.observers.Load(); p != nil && len(*p) > 0 {
		samples := make([]ComponentSample, len(batch))
		for i, r := range batch {
			samples[i] = ComponentSample{
				Component:  r.rec.name,
				Size:       r.size,
				SizeOK:     r.sizeOK,
				Usage:      r.usage,
				CPUSeconds: r.cpuSeconds,
				Threads:    r.threads,
				Delta:      r.delta,
			}
		}
		for _, o := range *p {
			o.ObserveSample(now, samples)
		}
	}
	m.sampleMu.Unlock()

	// Notifications go out after the round lock drops, so listeners may
	// query the manager freely.
	if bank := m.detectors.Load(); bank != nil {
		for _, n := range bank.drainNotifications() {
			m.f.server.Emit(n)
		}
	}
	m.notifyIfSuspectChanged()
}

// notifyIfSuspectChanged emits an aging.suspect notification when the
// most suspicious component changes and its score is meaningful.
func (m *Manager) notifyIfSuspectChanged() {
	ranking := m.Rank(ResourceMemory, rootcause.PaperMap{})
	top, ok := ranking.Top()
	if !ok || top.Score < 0.1 {
		return
	}
	m.suspectMu.Lock()
	changed := top.Name != m.lastSuspect
	if changed {
		m.lastSuspect = top.Name
	}
	m.suspectMu.Unlock()
	if changed {
		m.f.server.Emit(jmx.Notification{
			Type:    NotifSuspect,
			Source:  ManagerName(),
			Message: fmt.Sprintf("top aging suspect: %s (score %.3f)", top.Name, top.Score),
			Data:    top,
		})
	}
}

// SizeSeries returns a copy of the measured size series of a component.
func (m *Manager) SizeSeries(name string) []metrics.Point {
	m.recsMu.RLock()
	rec, ok := m.components[name]
	m.recsMu.RUnlock()
	if ok {
		return rec.size.Points()
	}
	return nil
}

// HeapRetainedSeries returns the sampled heap retained-bytes series.
func (m *Manager) HeapRetainedSeries() []metrics.Point {
	return m.heapRetained.Points()
}

// Data assembles the per-component evidence for a resource, the input to
// the ranking strategies. For memory, consumption is the measured size
// net of the component's first-sample baseline.
func (m *Manager) Data(resource string) ([]rootcause.ComponentData, error) {
	switch resource {
	case ResourceMemory, ResourceCPU, ResourceThreads, ResourceMemoryDelta:
	default:
		return nil, fmt.Errorf("core: unknown resource %q", resource)
	}
	recs := m.records()
	out := make([]rootcause.ComponentData, 0, len(recs))
	for _, rec := range recs {
		d := rootcause.ComponentData{Name: rec.name}
		if last, ok := rec.usage.Last(); ok {
			d.Usage = int64(last.V)
		}
		switch resource {
		case ResourceMemory:
			if last, ok := rec.size.Last(); ok {
				d.Consumption = math.Max(0, last.V-float64(rec.baseline.Load()))
			}
			d.Series = rec.size.Points()
		case ResourceCPU:
			if last, ok := rec.cpu.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.cpu.Points()
		case ResourceThreads:
			if last, ok := rec.threads.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.threads.Points()
		case ResourceMemoryDelta:
			if last, ok := rec.delta.Last(); ok {
				d.Consumption = math.Max(0, last.V)
			}
			d.Series = rec.delta.Points()
		default:
			return nil, fmt.Errorf("core: unknown resource %q", resource)
		}
		out = append(out, d)
	}
	return out, nil
}

// Rank runs a strategy over the current evidence for a resource. Unknown
// resources yield an empty ranking.
func (m *Manager) Rank(resource string, strategy rootcause.Strategy) rootcause.Ranking {
	data, err := m.Data(resource)
	if err != nil {
		return rootcause.Ranking{Resource: resource, Strategy: strategy.Name()}
	}
	return strategy.Rank(resource, data)
}

// Map builds the paper's consumption × usage map for a resource.
func (m *Manager) Map(resource string) rootcause.Ranking {
	return m.Rank(resource, rootcause.PaperMap{})
}

// TimeToExhaustion extrapolates the time until heap exhaustion from the
// retained-bytes series (Sen slope over the sampled history). It returns
// +Inf when the heap is not growing or no heap is attached.
func (m *Manager) TimeToExhaustion() time.Duration {
	if m.f.heap == nil {
		return time.Duration(math.MaxInt64)
	}
	trend := metrics.MannKendallSeries(m.HeapRetainedSeries(), 0.05)
	secs := m.f.heap.HeadroomSeconds(trend.SenSlope)
	if math.IsInf(secs, 1) || secs > float64(math.MaxInt64/int64(time.Second)) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(secs * float64(time.Second))
}

// bean exposes the manager over JMX.
func (m *Manager) bean() *jmx.Bean {
	return jmx.NewBean("JMX Manager Agent: resource-component map and root cause determination").
		Attr("Components", "instrumented component names", func() any { return m.Components() }).
		Attr("Samples", "collection rounds so far", func() any { return m.Samples() }).
		Attr("MonitoringEnabled", "whether the AC advice is active", func() any {
			return m.f.MonitoringEnabled()
		}).
		Op("Sample", "run one collection round now", func(...any) (any, error) {
			m.Sample(m.f.clock.Now())
			return m.Samples(), nil
		}).
		Op("Map", "build the consumption×usage map for a resource", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.Map(resource), nil
		}).
		Op("Suspects", "rank components for a resource with the paper strategy", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			ranking := m.Map(resource)
			names := make([]string, len(ranking.Entries))
			for i, e := range ranking.Entries {
				names[i] = e.Name
			}
			return names, nil
		}).
		Op("ActivateAC", "enable interception of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			m.f.weaver.SetComponentEnabled(name, true)
			return true, nil
		}).
		Op("DeactivateAC", "disable interception of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			m.f.weaver.SetComponentEnabled(name, false)
			return true, nil
		}).
		Op("MicroReboot", "release the named component's retained memory", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.f.MicroReboot(name), nil
		}).
		Op("TimeToExhaustion", "seconds until heap exhaustion at the current trend", func(...any) (any, error) {
			return m.TimeToExhaustion().Seconds(), nil
		}).
		Op("LiveMap", "rank components with the online detector verdicts", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.LiveRank(resource), nil
		}).
		Op("Verdicts", "latest online detection report for a resource", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			bank := m.detectors.Load()
			if bank == nil {
				return nil, errors.New("core: no detectors attached")
			}
			rep := bank.Report(resource)
			if rep == nil {
				return nil, fmt.Errorf("core: no report yet for %q", resource)
			}
			return rep, nil
		})
}

func stringArg(args []any) (string, error) {
	if len(args) != 1 {
		return "", errors.New("core: want exactly one string argument")
	}
	s, ok := args[0].(string)
	if !ok {
		return "", errors.New("core: want a string argument")
	}
	return s, nil
}

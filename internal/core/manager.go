package core

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jmx"
	"repro/internal/metrics"
	"repro/internal/rootcause"
)

// NotifSuspect is the notification type the manager emits when the top
// aging suspect changes.
const NotifSuspect = "aging.suspect"

// Resources the manager can build maps for.
const (
	ResourceMemory  = "memory"
	ResourceCPU     = "cpu"
	ResourceThreads = "threads"
	// ResourceLatency tracks per-invocation response latency — service
	// time plus contention wait. It is the indicator for latency-only
	// aging (lock contention, pool queueing) where no resource level
	// grows; the CHAOS catalogue lists it next to the handle leaks.
	ResourceLatency = "latency"
	// ResourceHandles tracks live resource handles (connections, fds,
	// session handles) per component — the non-heap leak vector.
	ResourceHandles = "handles"
	// ResourceMemoryDelta ranks on the per-invocation heap deltas the
	// AC's before/after advice accumulates (§III.B.1), the paper's
	// original measurement path; available when a heap is attached.
	ResourceMemoryDelta = "memory-delta"
)

// Manager is the JMX Manager Agent: the management-plane half of the split
// monitoring pipeline. The node-local mechanics — component registry,
// sampling rounds, per-component series — live in the embedded Collector;
// the Manager adds what a management plane needs on top: root-cause
// queries (Data/Rank/Map), the online detector bank, and the aging.suspect
// / aging.alarm notifications. A cluster deployment runs one Manager per
// node and merges the collectors' rounds in an aggregator
// (internal/cluster); a standalone deployment talks to the Manager alone
// and never notices the split.
type Manager struct {
	*Collector

	suspectMu   sync.Mutex
	lastSuspect string
	// suspectRecs caches the record snapshot the per-round suspect-change
	// check walks, keyed by the registry generation and guarded by
	// suspectMu, so the check stays garbage-free.
	suspectRecs []*componentRecord
	suspectGen  int64

	detectors atomic.Pointer[DetectorBank]
}

func newManager(f *Framework, node string) *Manager {
	return &Manager{Collector: newCollector(f, node)}
}

// Sample performs one collection round (see Collector.Sample) and then
// lets the management plane react: queued detector alarms and suspect
// changes go out as notifications after the round lock drops, so listeners
// may query the manager freely.
func (m *Manager) Sample(now time.Time) {
	m.Collector.Sample(now)

	if bank := m.detectors.Load(); bank != nil {
		for _, n := range bank.drainNotifications() {
			m.f.server.Emit(n)
		}
	}
	m.notifyIfSuspectChanged()
}

// suspectRecords returns the suspect check's record snapshot, cached by
// registry generation. Caller holds suspectMu.
func (m *Manager) suspectRecords() []*componentRecord {
	if gen := m.recsGen.Load(); gen == m.suspectGen && m.suspectRecs != nil {
		return m.suspectRecs
	}
	m.suspectRecs, m.suspectGen = m.snapshotRecords(m.suspectRecs)
	return m.suspectRecs
}

// memEvidence returns a record's accumulated memory consumption (size net
// of baseline, clamped at zero) and its latest usage count.
func memEvidence(rec *componentRecord) (consumption float64, usage float64) {
	if last, ok := rec.size.Last(); ok {
		consumption = math.Max(0, last.V-float64(rec.baseline.Load()))
	}
	if last, ok := rec.usage.Last(); ok {
		usage = last.V
	}
	return consumption, usage
}

// notifyIfSuspectChanged emits an aging.suspect notification when the
// most suspicious component changes and its score is meaningful. It runs
// after every sampling round, so it must be garbage-free: it applies the
// PaperMap scoring rule (normalised consumption weighted by usage)
// directly over the latest levels instead of building a full ranking —
// the Data path would copy every component's whole series each round,
// O(rounds²) garbage over a run's lifetime for a check that reads two
// numbers per component. The scoring and the (score desc, name asc)
// tie-break replicate rootcause.PaperMap exactly; the strategy tests hold
// the two implementations together.
func (m *Manager) notifyIfSuspectChanged() {
	m.suspectMu.Lock()
	recs := m.suspectRecords()
	var maxC, maxU float64
	for _, rec := range recs {
		c, u := memEvidence(rec)
		if c > maxC {
			maxC = c
		}
		if u > maxU {
			maxU = u
		}
	}
	var topName string
	var topScore float64
	for _, rec := range recs {
		c, u := memEvidence(rec)
		var normC, normU float64
		if maxC > 0 {
			normC = c / maxC
		}
		if maxU > 0 {
			normU = u / maxU
		}
		score := normC * (0.6 + 0.4*normU)
		if score > topScore || (score == topScore && topName != "" && rec.name < topName) {
			topName, topScore = rec.name, score
		}
	}
	if topName == "" || topScore < 0.1 {
		m.suspectMu.Unlock()
		return
	}
	changed := topName != m.lastSuspect
	if changed {
		m.lastSuspect = topName
	}
	m.suspectMu.Unlock()
	if changed {
		m.f.server.Emit(jmx.Notification{
			Type:    NotifSuspect,
			Source:  ManagerName(),
			Message: fmt.Sprintf("top aging suspect: %s (score %.3f)", topName, topScore),
			Data:    rootcause.Ranked{Name: topName, Score: topScore},
		})
	}
}

// Data assembles the per-component evidence for a resource, the input to
// the ranking strategies. For memory, consumption is the measured size
// net of the component's first-sample baseline.
func (m *Manager) Data(resource string) ([]rootcause.ComponentData, error) {
	switch resource {
	case ResourceMemory, ResourceCPU, ResourceThreads, ResourceLatency, ResourceHandles, ResourceMemoryDelta:
	default:
		return nil, fmt.Errorf("core: unknown resource %q", resource)
	}
	recs := m.records()
	out := make([]rootcause.ComponentData, 0, len(recs))
	for _, rec := range recs {
		d := rootcause.ComponentData{Name: rec.name, Node: m.node}
		if last, ok := rec.usage.Last(); ok {
			d.Usage = int64(last.V)
		}
		switch resource {
		case ResourceMemory:
			if last, ok := rec.size.Last(); ok {
				d.Consumption = math.Max(0, last.V-float64(rec.baseline.Load()))
			}
			d.Series = rec.size.Points()
		case ResourceCPU:
			if last, ok := rec.cpu.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.cpu.Points()
		case ResourceThreads:
			if last, ok := rec.threads.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.threads.Points()
		case ResourceLatency:
			if last, ok := rec.latency.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.latency.Points()
		case ResourceHandles:
			if last, ok := rec.handles.Last(); ok {
				d.Consumption = last.V
			}
			d.Series = rec.handles.Points()
		case ResourceMemoryDelta:
			if last, ok := rec.delta.Last(); ok {
				d.Consumption = math.Max(0, last.V)
			}
			d.Series = rec.delta.Points()
		default:
			return nil, fmt.Errorf("core: unknown resource %q", resource)
		}
		out = append(out, d)
	}
	return out, nil
}

// Rank runs a strategy over the current evidence for a resource. Unknown
// resources yield an empty ranking.
func (m *Manager) Rank(resource string, strategy rootcause.Strategy) rootcause.Ranking {
	data, err := m.Data(resource)
	if err != nil {
		return rootcause.Ranking{Resource: resource, Strategy: strategy.Name()}
	}
	return strategy.Rank(resource, data)
}

// Map builds the paper's consumption × usage map for a resource.
func (m *Manager) Map(resource string) rootcause.Ranking {
	return m.Rank(resource, rootcause.PaperMap{})
}

// TimeToExhaustion extrapolates the time until heap exhaustion from the
// retained-bytes series (Sen slope over the sampled history). It returns
// +Inf when the heap is not growing or no heap is attached.
func (m *Manager) TimeToExhaustion() time.Duration {
	if m.f.heap == nil {
		return time.Duration(math.MaxInt64)
	}
	trend := metrics.MannKendallSeries(m.HeapRetainedSeries(), 0.05)
	secs := m.f.heap.HeadroomSeconds(trend.SenSlope)
	if math.IsInf(secs, 1) || secs > float64(math.MaxInt64/int64(time.Second)) {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(secs * float64(time.Second))
}

// bean exposes the manager over JMX.
func (m *Manager) bean() *jmx.Bean {
	return jmx.NewBean("JMX Manager Agent: resource-component map and root cause determination").
		Attr("Components", "instrumented component names", func() any { return m.Components() }).
		Attr("Samples", "collection rounds so far", func() any { return m.Samples() }).
		Attr("Node", "the node identity of this manager's collector", func() any { return m.Node() }).
		Attr("MonitoringEnabled", "whether the AC advice is active", func() any {
			return m.f.MonitoringEnabled()
		}).
		Attr("Rejuvenations", "per-component micro-reboot counts", func() any {
			return m.f.Rejuvenations()
		}).
		Op("Sample", "run one collection round now", func(...any) (any, error) {
			m.Sample(m.f.clock.Now())
			return m.Samples(), nil
		}).
		Op("Map", "build the consumption×usage map for a resource", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.Map(resource), nil
		}).
		Op("Suspects", "rank components for a resource with the paper strategy", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			ranking := m.Map(resource)
			names := make([]string, len(ranking.Entries))
			for i, e := range ranking.Entries {
				names[i] = e.Name
			}
			return names, nil
		}).
		Op("ActivateAC", "enable interception of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			m.f.weaver.SetComponentEnabled(name, true)
			return true, nil
		}).
		Op("DeactivateAC", "disable interception of the named component", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			m.f.weaver.SetComponentEnabled(name, false)
			return true, nil
		}).
		Op("MicroReboot", "release the named component's retained memory", func(args ...any) (any, error) {
			name, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.f.MicroReboot(name), nil
		}).
		Op("TimeToExhaustion", "seconds until heap exhaustion at the current trend", func(...any) (any, error) {
			return m.TimeToExhaustion().Seconds(), nil
		}).
		Op("LiveMap", "rank components with the online detector verdicts", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			return m.LiveRank(resource), nil
		}).
		Op("Verdicts", "latest online detection report for a resource", func(args ...any) (any, error) {
			resource, err := stringArg(args)
			if err != nil {
				return nil, err
			}
			bank := m.detectors.Load()
			if bank == nil {
				return nil, errors.New("core: no detectors attached")
			}
			rep := bank.Report(resource)
			if rep == nil {
				return nil, fmt.Errorf("core: no report yet for %q", resource)
			}
			return rep, nil
		})
}

func stringArg(args []any) (string, error) {
	if len(args) != 1 {
		return "", errors.New("core: want exactly one string argument")
	}
	s, ok := args[0].(string)
	if !ok {
		return "", errors.New("core: want a string argument")
	}
	return s, nil
}

package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/jmx"
	"repro/internal/rootcause"
)

func TestDataUnknownResource(t *testing.T) {
	f, err := New(Options{Weaver: aspect.NewWeaver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Manager().Data("plutonium"); err == nil {
		t.Fatal("unknown resource accepted")
	}
	r := f.Manager().Rank("plutonium", fakeStrategy{})
	if len(r.Entries) != 0 {
		t.Fatal("unknown resource produced entries")
	}
}

type fakeStrategy struct{}

func (fakeStrategy) Name() string { return "fake" }
func (fakeStrategy) Rank(resource string, data []rootcause.ComponentData) rootcause.Ranking {
	return rootcause.Ranking{Resource: resource, Strategy: "fake"}
}

func TestTimeToExhaustionWithoutHeap(t *testing.T) {
	f, err := New(Options{Weaver: aspect.NewWeaver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if got := f.Manager().TimeToExhaustion(); got != time.Duration(math.MaxInt64) {
		t.Fatalf("heapless TTE = %v, want +inf sentinel", got)
	}
}

func TestInstrumentRollbackOnProxyConflict(t *testing.T) {
	w := aspect.NewWeaver(nil)
	f, err := New(Options{Weaver: w})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-occupy the AC proxy name so registration fails.
	if err := f.Server().Register(ACProxyName("svc.A"), jmx.NewBean("conflict")); err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err == nil {
		t.Fatal("instrumentation with proxy conflict accepted")
	}
	// The rollback must leave no trace: the size target and the manager
	// record are gone.
	if _, err := f.ObjectSizeAgent().Measure("svc.A"); err == nil {
		t.Fatal("size target leaked after rollback")
	}
	for _, c := range f.Manager().Components() {
		if c == "svc.A" {
			t.Fatal("manager record leaked after rollback")
		}
	}
}

func TestBadPointcutOption(t *testing.T) {
	if _, err := New(Options{Weaver: aspect.NewWeaver(nil), Pointcut: "bogus("}); err == nil {
		t.Fatal("bad pointcut option accepted")
	}
}

func TestManagerSizeSeriesUnknownComponent(t *testing.T) {
	f, err := New(Options{Weaver: aspect.NewWeaver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if pts := f.Manager().SizeSeries("ghost"); pts != nil {
		t.Fatalf("ghost series = %v", pts)
	}
}

package core

import (
	"repro/internal/jmx"
)

// acProxyBean builds the AC Proxy of one component: the management
// channel between the manager (or the external front-end) and the
// component's Aspect Component. Through it, interception is activated and
// deactivated at runtime and the component's live statistics are read —
// "from asking some information like how many requests have used the
// component to activating or deactivating the AC in runtime" (§III.B.1).
func (f *Framework) acProxyBean(component string) *jmx.Bean {
	return jmx.NewBean("Aspect Component proxy for "+component).
		AttrRW("Enabled", "whether this component's interception is active",
			func() any { return f.weaver.ComponentEnabled(component) },
			func(v any) error {
				on, ok := v.(bool)
				if !ok {
					return jmx.ErrNoSuchAttribute // wrong type reads as a bad write
				}
				f.weaver.SetComponentEnabled(component, on)
				return nil
			}).
		Attr("Invocations", "executions observed by the AC", func() any {
			return f.invocations.StatsOf(component).Count
		}).
		Attr("Failures", "failed executions observed by the AC", func() any {
			return f.invocations.StatsOf(component).Failures
		}).
		Attr("MeanServiceSeconds", "mean observed service time", func() any {
			return f.invocations.StatsOf(component).MeanDuration().Seconds()
		}).
		Attr("ObjectSizeBytes", "current retained size of the component object", func() any {
			n, err := f.objSize.Measure(component)
			if err != nil {
				return int64(-1)
			}
			return n
		}).
		Attr("CPUSeconds", "CPU time charged to the component", func() any {
			return f.cpu.TimeOf(component).Seconds()
		}).
		Attr("LiveThreads", "live threads owned by the component", func() any {
			return f.threads.LiveOf(component)
		}).
		Op("MicroReboot", "release the component's retained memory", func(...any) (any, error) {
			return f.MicroReboot(component), nil
		})
}

package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/eb"
	"repro/internal/faultinject"
	"repro/internal/jmx"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
	"repro/internal/objsize"
	"repro/internal/rootcause"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(Options{}); err == nil {
		t.Fatal("New without weaver accepted")
	}
}

func TestFrameworkRegistersEverything(t *testing.T) {
	w := aspect.NewWeaver(nil)
	f, err := New(Options{Weaver: w, Heap: jvmheap.New(1<<20, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Server().IsRegistered(ManagerName()) {
		t.Fatal("manager bean not registered")
	}
	found := f.Server().Query(monitor.QueryAllAgents())
	if len(found) != 7 {
		t.Fatalf("agents registered = %d, want 7 (incl. memory and heap-delta)", len(found))
	}
	if _, ok := w.Find(ACAspectName); !ok {
		t.Fatal("AC aspect not registered on weaver")
	}
}

func TestFrameworkWithoutHeapSkipsMemoryAgent(t *testing.T) {
	f, err := New(Options{Weaver: aspect.NewWeaver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.Server().Query(monitor.QueryAllAgents())); got != 5 {
		t.Fatalf("agents = %d, want 5 without heap", got)
	}
}

type leakyComponent struct {
	faultinject.LeakStore
	calls int
}

func TestInstrumentComponentAndACProxy(t *testing.T) {
	w := aspect.NewWeaver(nil)
	f, err := New(Options{Weaver: w, SizePolicy: objsize.Transitive})
	if err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	if err := f.InstrumentComponent("svc.A", comp); err == nil {
		t.Fatal("duplicate instrumentation accepted")
	}
	if err := f.InstrumentComponent("", nil); err == nil {
		t.Fatal("empty instrumentation accepted")
	}
	if !f.Server().IsRegistered(ACProxyName("svc.A")) {
		t.Fatal("AC proxy not registered")
	}

	// Drive the component through the weaver; the AC observes it.
	fn := w.Weave("svc.A", "Service", func(args ...any) (any, error) {
		comp.calls++
		return nil, nil
	})
	for i := 0; i < 5; i++ {
		fn()
	}
	inv, err := f.Server().GetAttribute(ACProxyName("svc.A"), "Invocations")
	if err != nil || inv.(int64) != 5 {
		t.Fatalf("proxy invocations = %v, %v", inv, err)
	}
	// Runtime deactivation through the proxy.
	if err := f.Server().SetAttribute(ACProxyName("svc.A"), "Enabled", false); err != nil {
		t.Fatal(err)
	}
	fn()
	if got := f.InvocationAgent().StatsOf("svc.A").Count; got != 5 {
		t.Fatalf("AC recorded while disabled: %d", got)
	}
	if comp.calls != 6 {
		t.Fatalf("component calls = %d; disabling monitoring must not block requests", comp.calls)
	}
	if err := f.Server().SetAttribute(ACProxyName("svc.A"), "Enabled", true); err != nil {
		t.Fatal(err)
	}
	fn()
	if got := f.InvocationAgent().StatsOf("svc.A").Count; got != 6 {
		t.Fatalf("AC not re-enabled: %d", got)
	}
}

func TestACProxyObjectSize(t *testing.T) {
	f, err := New(Options{Weaver: aspect.NewWeaver(nil)})
	if err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	before, _ := f.Server().GetAttribute(ACProxyName("svc.A"), "ObjectSizeBytes")
	comp.Retain(1 << 20)
	after, _ := f.Server().GetAttribute(ACProxyName("svc.A"), "ObjectSizeBytes")
	if after.(int64)-before.(int64) < 1<<20 {
		t.Fatalf("proxy size did not grow: %v -> %v", before, after)
	}
}

func TestManagerSamplingAndMap(t *testing.T) {
	engine := sim.NewEngine()
	w := aspect.NewWeaver(engine.Clock())
	heap := jvmheap.New(1<<28, engine.Clock())
	f, err := New(Options{Weaver: w, Clock: engine.Clock(), Heap: heap, SampleInterval: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	leaky := &leakyComponent{}
	quiet := &leakyComponent{}
	if err := f.InstrumentComponent("svc.leaky", leaky); err != nil {
		t.Fatal(err)
	}
	if err := f.InstrumentComponent("svc.quiet", quiet); err != nil {
		t.Fatal(err)
	}
	leakyFn := w.Weave("svc.leaky", "Service", func(args ...any) (any, error) {
		leaky.Retain(10 << 10)
		return nil, nil
	})
	quietFn := w.Weave("svc.quiet", "Service", func(args ...any) (any, error) { return nil, nil })

	stop := f.StartSampling(engine)
	defer stop()
	engine.Every(time.Second, func(time.Time) {
		leakyFn()
		quietFn()
	})
	engine.RunFor(5 * time.Minute)

	if f.Manager().Samples() < 25 {
		t.Fatalf("samples = %d", f.Manager().Samples())
	}
	ranking := f.Manager().Map(ResourceMemory)
	if top, _ := ranking.Top(); top.Name != "svc.leaky" {
		t.Fatalf("map top = %s\n%s", top.Name, ranking)
	}
	if pos := ranking.Position("svc.quiet"); pos != 2 {
		t.Fatalf("quiet at %d", pos)
	}
	// The trend strategy agrees.
	trend := f.Manager().Rank(ResourceMemory, rootcause.Trend{})
	if top, _ := trend.Top(); top.Name != "svc.leaky" {
		t.Fatalf("trend top = %s", top.Name)
	}
	// The size series grew monotonically for the leaky component.
	series := f.Manager().SizeSeries("svc.leaky")
	if len(series) < 25 || series[len(series)-1].V <= series[0].V {
		t.Fatalf("leaky series did not grow: %d points", len(series))
	}
}

func TestManagerBeanOperations(t *testing.T) {
	w := aspect.NewWeaver(nil)
	heap := jvmheap.New(1<<24, nil)
	f, err := New(Options{Weaver: w, Heap: heap})
	if err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	server := f.Server()
	if _, err := server.Invoke(ManagerName(), "Sample"); err != nil {
		t.Fatal(err)
	}
	comps, _ := server.GetAttribute(ManagerName(), "Components")
	if got := comps.([]string); len(got) != 1 || got[0] != "svc.A" {
		t.Fatalf("Components = %v", got)
	}
	if _, err := server.Invoke(ManagerName(), "Map", ResourceMemory); err != nil {
		t.Fatal(err)
	}
	suspects, err := server.Invoke(ManagerName(), "Suspects", ResourceMemory)
	if err != nil || len(suspects.([]string)) != 1 {
		t.Fatalf("Suspects = %v, %v", suspects, err)
	}
	if _, err := server.Invoke(ManagerName(), "DeactivateAC", "svc.A"); err != nil {
		t.Fatal(err)
	}
	if w.ComponentEnabled("svc.A") {
		t.Fatal("DeactivateAC had no effect")
	}
	if _, err := server.Invoke(ManagerName(), "ActivateAC", "svc.A"); err != nil {
		t.Fatal(err)
	}
	if _, err := server.Invoke(ManagerName(), "Suspects"); err == nil {
		t.Fatal("Suspects without args accepted")
	}
	if _, err := server.Invoke(ManagerName(), "TimeToExhaustion"); err != nil {
		t.Fatal(err)
	}
}

func TestMicroReboot(t *testing.T) {
	w := aspect.NewWeaver(nil)
	heap := jvmheap.New(1<<24, nil)
	f, err := New(Options{Weaver: w, Heap: heap})
	if err != nil {
		t.Fatal(err)
	}
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	comp.Retain(1 << 20)
	if err := heap.Allocate("svc.A", 1<<20); err != nil {
		t.Fatal(err)
	}
	freed := f.MicroReboot("svc.A")
	if freed != 1<<20 {
		t.Fatalf("freed = %d", freed)
	}
	if comp.LeakedBytes() != 0 {
		t.Fatal("leak store not released")
	}
	if heap.RetainedBy("svc.A") != 0 {
		t.Fatal("heap charge not released")
	}
	if f.MicroReboot("ghost") != 0 {
		t.Fatal("micro-reboot of ghost freed bytes")
	}
}

func TestSuspectNotification(t *testing.T) {
	engine := sim.NewEngine()
	w := aspect.NewWeaver(engine.Clock())
	f, err := New(Options{Weaver: w, Clock: engine.Clock(), SampleInterval: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	var notifs []jmx.Notification
	f.Server().AddListener(func(n jmx.Notification) {
		if n.Type == NotifSuspect {
			notifs = append(notifs, n)
		}
	})
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("svc.A", "Service", func(args ...any) (any, error) {
		comp.Retain(100 << 10)
		return nil, nil
	})
	stop := f.StartSampling(engine)
	defer stop()
	engine.Every(time.Second, func(time.Time) { fn() })
	engine.RunFor(time.Minute)
	if len(notifs) == 0 {
		t.Fatal("no suspect notification emitted")
	}
	if len(notifs) > 2 {
		t.Fatalf("suspect notification spam: %d", len(notifs))
	}
}

func TestGlobalMonitoringToggle(t *testing.T) {
	w := aspect.NewWeaver(nil)
	f, err := New(Options{Weaver: w})
	if err != nil {
		t.Fatal(err)
	}
	fn := w.Weave("svc.A", "Service", func(args ...any) (any, error) { return nil, nil })
	fn()
	f.SetMonitoringEnabled(false)
	if f.MonitoringEnabled() {
		t.Fatal("toggle off failed")
	}
	fn()
	f.SetMonitoringEnabled(true)
	fn()
	if got := f.InvocationAgent().StatsOf("svc.A").Count; got != 2 {
		t.Fatalf("recorded = %d, want 2", got)
	}
}

// TestFullStackFig5Miniature drives the complete system — TPC-W over the
// container with EBs — with leaks in four components at Fig. 5's
// parameters (scaled down) and checks the paper's expected ordering:
// A ≈ B (heavily used pages) grow fastest, C slower, D flat.
func TestFullStackFig5Miniature(t *testing.T) {
	engine := sim.NewEngine()
	weaver := aspect.NewWeaver(engine.Clock())
	db := sqldb.NewDB()
	app, err := tpcw.NewApp(db, weaver, engine.Clock(), tpcw.Scale{Items: 200, Customers: 100, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	heap := jvmheap.New(1<<30, engine.Clock())
	container := servlet.NewContainer(engine, weaver, db, heap, servlet.Config{})
	if err := app.DeployAll(container); err != nil {
		t.Fatal(err)
	}
	if err := container.Start(); err != nil {
		t.Fatal(err)
	}
	f, err := New(Options{
		Weaver: weaver, Clock: engine.Clock(), Heap: heap,
		SampleInterval: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range tpcw.Interactions {
		s, _ := app.Servlet(name)
		if err := f.InstrumentComponent(name, s); err != nil {
			t.Fatal(err)
		}
	}
	// Fig. 5 roles: A=home, B=product_detail (both heavily used),
	// C=best_sellers (moderate), D=admin_confirm (rare).
	inject := func(comp string) *faultinject.MemoryLeak {
		s, _ := app.Servlet(comp)
		leak := &faultinject.MemoryLeak{
			Component: comp, Target: s.(faultinject.Retainer),
			Size: 100 << 10, N: 20, Heap: heap, Seed: 11,
		}
		if err := weaver.Register(leak.Aspect()); err != nil {
			t.Fatal(err)
		}
		return leak
	}
	inject(tpcw.CompHome)
	inject(tpcw.CompProductDetail)
	inject(tpcw.CompBestSellers)
	inject(tpcw.CompAdminConfirm)

	stop := f.StartSampling(engine)
	defer stop()
	driver := eb.NewDriver(engine, container, eb.Config{
		Mix: eb.Shopping, Seed: 5, Items: 200, Customers: 100,
	})
	driver.Run([]eb.Phase{{Duration: 20 * time.Minute, EBs: 25}})

	ranking := f.Manager().Map(ResourceMemory)
	posHome := ranking.Position(tpcw.CompHome)
	posDetail := ranking.Position(tpcw.CompProductDetail)
	posBest := ranking.Position(tpcw.CompBestSellers)
	posAdmin := ranking.Position(tpcw.CompAdminConfirm)
	if posHome > 2 || posDetail > 2 {
		t.Fatalf("home/detail not top-2: home=%d detail=%d\n%s", posHome, posDetail, ranking)
	}
	if posBest != 3 {
		t.Fatalf("best_sellers at %d, want 3\n%s", posBest, ranking)
	}
	if posAdmin <= 3 {
		t.Fatalf("rarely-used admin_confirm at %d, want low\n%s", posAdmin, ranking)
	}
	// D's series stays flat: its leak should essentially never fire.
	adminData, err := f.Manager().Data(ResourceMemory)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range adminData {
		if d.Name == tpcw.CompAdminConfirm && d.Consumption > float64(2<<20) {
			t.Fatalf("admin_confirm consumed %v bytes, expected near-flat", d.Consumption)
		}
	}
}

// TestMicroRebootCountersAndNotification pins the actuation bookkeeping:
// every micro-reboot increments the per-component counter, accumulates
// freed bytes, and emits an aging.rejuvenation notification — the audit
// trail the cluster controller and agingmon read.
func TestMicroRebootCountersAndNotification(t *testing.T) {
	w := aspect.NewWeaver(nil)
	heap := jvmheap.New(1<<24, nil)
	f, err := New(Options{Weaver: w, Heap: heap})
	if err != nil {
		t.Fatal(err)
	}
	var notifs []jmx.Notification
	f.Server().AddListener(func(n jmx.Notification) {
		if n.Type == NotifRejuvenation {
			notifs = append(notifs, n)
		}
	})
	comp := &leakyComponent{}
	if err := f.InstrumentComponent("svc.A", comp); err != nil {
		t.Fatal(err)
	}
	comp.Retain(1 << 10)
	f.MicroReboot("svc.A")
	comp.Retain(1 << 11)
	f.MicroReboot("svc.A")
	f.MicroReboot("svc.B") // unknown: counts, frees nothing

	counts := f.Rejuvenations()
	if counts["svc.A"] != 2 || counts["svc.B"] != 1 {
		t.Fatalf("rejuvenation counts = %v", counts)
	}
	if got := f.RejuvenationCount(); got != 3 {
		t.Fatalf("total rejuvenations = %d, want 3", got)
	}
	if len(notifs) != 3 {
		t.Fatalf("%d rejuvenation notifications, want 3", len(notifs))
	}
	if freed, ok := notifs[1].Data.(int64); !ok || freed != 1<<11 {
		t.Fatalf("notification data = %v, want freed bytes 2048", notifs[1].Data)
	}
	if !strings.Contains(notifs[1].Message, "micro-reboot #2 of svc.A") {
		t.Fatalf("notification message = %q", notifs[1].Message)
	}
	// The counters mirror onto the manager bean for remote readers.
	attr, err := f.Server().GetAttribute(ManagerName(), "Rejuvenations")
	if err != nil {
		t.Fatal(err)
	}
	beanCounts, ok := attr.(map[string]int64)
	if !ok || beanCounts["svc.A"] != 2 {
		t.Fatalf("bean Rejuvenations = %v", attr)
	}
}

//go:build !race

package eb

const raceEnabled = false

package eb

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/servlet"
	"repro/internal/sim"
)

// ShardedDriver is the million-session load tier: a session-table
// population partitioned across the per-core engines of a sim.ShardGroup.
// Each shard owns a disjoint set of session ids and a private Target, so a
// window never contends on shared state; telemetry is integer per-second
// completion buckets merged exactly at the end. Two arrival disciplines:
//
//   - ClosedLoop: a fixed population of Sessions browsers, each cycling
//     request → think → request — the TPC-W discipline the paper drives
//     its testbed with, scaled from 200 EBs to 10^6.
//   - OpenLoop: sessions arrive in a Poisson stream at Rate/sec and run a
//     geometric number of interactions. Open-loop arrival keeps offered
//     load independent of server latency, which the closed-loop discipline
//     cannot (slow responses throttle a closed population) — the standard
//     criticism of closed-loop aging experiments.
//
// Determinism: every session's walk is a pure function of (Seed, session
// id); arrivals are pure functions of (Seed, lane); sessions and lanes map
// to shards by modulo. Shard count changes which engine runs a session,
// never what the session does, so the merged completion trace and WIPS
// buckets are byte-identical across shard counts — pinned by the golden
// test in sharded_test.go.

// ArrivalMode selects the load discipline.
type ArrivalMode uint8

const (
	// ClosedLoop holds a fixed think-time population (TPC-W EBs).
	ClosedLoop ArrivalMode = iota
	// OpenLoop draws session arrivals from a Poisson process.
	OpenLoop
)

// arrivalLanes fixes the number of independent Poisson arrival streams.
// Lanes exist so arrivals stay deterministic under sharding: lane l is a
// thinned Poisson stream of rate Rate/arrivalLanes owned by shard
// l % Shards, and the superposition of the lanes is the configured
// process. The count is a constant — not Shards — so the arrival sequence
// is identical no matter how many shards run it.
const arrivalLanes = 256

// ShardedConfig parameterises a ShardedDriver.
type ShardedConfig struct {
	// Shards is the engine count (default 1).
	Shards int
	// Window is the bounded-lag pacing window (default 100ms).
	Window time.Duration
	// Seed derives every session and lane stream.
	Seed uint64
	// Mix selects the transition matrix.
	Mix Mix
	// ThinkMean / ThinkCap are the TPC-W think-time parameters
	// (defaults 7s / 70s).
	ThinkMean time.Duration
	ThinkCap  time.Duration
	// Items / Customers mirror the database scale (defaults 1000 / 1440).
	Items     int
	Customers int

	// Sessions is the closed-loop population.
	Sessions int

	// Arrival selects the discipline.
	Arrival ArrivalMode
	// Rate is the open-loop arrival rate in sessions/second.
	Rate float64
	// MeanSessionLength is the mean interactions per open-loop session,
	// geometrically distributed (default 20).
	MeanSessionLength int
	// MaxSessions caps concurrent open-loop sessions (default 65536),
	// split into per-lane admission budgets (laneCapacity). An arrival on
	// a lane at its budget is dropped and counted. Because budget, live
	// count and arrival stream are all lane-local, shedding is itself
	// deterministic across shard and driver counts — a saturated sweep
	// produces the same drops and the same checksum for any N and K.
	MaxSessions int

	// RecordTrace keeps the (time, session) completion log for golden
	// comparisons. Off for the million-session benchmark: the log is the
	// only per-completion allocation in the driver.
	RecordTrace bool

	// DriverIndex / DriverCount place this driver process in a K-way
	// multi-process fleet: it owns sessions with id ≡ DriverIndex (mod
	// DriverCount) and arrival lanes likewise. Defaults to the whole load
	// (0 of 1). Ownership is by global id, so the union of K partitions
	// runs exactly the sessions one driver would — the K-parity test pins
	// the merged telemetry equal.
	DriverIndex int
	DriverCount int
}

func (c ShardedConfig) withDefaults() ShardedConfig {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Window <= 0 {
		c.Window = 100 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ThinkMean <= 0 {
		c.ThinkMean = 7 * time.Second
	}
	if c.ThinkCap <= 0 {
		c.ThinkCap = 70 * time.Second
	}
	if c.Items <= 0 {
		c.Items = 1000
	}
	if c.Customers <= 0 {
		c.Customers = 1440
	}
	if c.MeanSessionLength <= 0 {
		c.MeanSessionLength = 20
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 65536
	}
	if c.DriverCount <= 0 {
		c.DriverCount = 1
	}
	return c
}

// TargetFactory builds the per-shard backend: shard i's sessions submit
// only to targets[i], so a factory returning independent stacks keeps the
// whole run contention-free. A nil factory gets a default ModelTarget.
type TargetFactory func(shard int, engine *sim.Engine) Target

// traceEvent is one completion in the golden log.
type traceEvent struct {
	atNs int64
	id   int64
}

// driverShard is the per-engine slice of the driver.
type driverShard struct {
	d      *ShardedDriver
	idx    int
	engine *sim.Engine
	target Target
	table  *sessionTable

	stepFn  func(time.Time, int64)
	doneFns []servlet.Completion
	free    []int32 // idle slot stack (open loop)

	laneFn     func(time.Time, int64)
	laneRng    []sim.Rand64 // by local lane index
	laneNextID []int64
	lanes      []int64 // global lane number by local index
	laneCap    []int32 // per-lane admission budget, by local index
	laneLive   []int32 // per-lane live session count, by local index
	slotLane   []int32 // bound slot -> local lane index

	completed uint64
	failed    uint64
	dropped   uint64
	checksum  uint64
	buckets   []uint32
	trace     []traceEvent
	endNs     int64
}

// ShardedDriver drives the sharded session population. Create with
// NewShardedDriver, run once with Run, then read the merged telemetry.
type ShardedDriver struct {
	cfg    ShardedConfig
	group  *sim.ShardGroup
	shards []*driverShard
	ran    bool

	thinkMeanSec float64
	thinkCapSec  float64
	stopProb     float64 // open loop: P(session ends | completion)
}

// NewShardedDriver builds the group, tables and per-shard targets. The
// construction cost is O(capacity) once; steady-state driving allocates
// nothing.
func NewShardedDriver(cfg ShardedConfig, factory TargetFactory) *ShardedDriver {
	cfg = cfg.withDefaults()
	if cfg.Arrival == ClosedLoop && cfg.Sessions <= 0 {
		panic("eb: closed-loop ShardedDriver needs Sessions > 0")
	}
	if cfg.Arrival == OpenLoop && cfg.Rate <= 0 {
		panic("eb: open-loop ShardedDriver needs Rate > 0")
	}
	if cfg.DriverIndex < 0 || cfg.DriverIndex >= cfg.DriverCount {
		panic(fmt.Sprintf("eb: driver %d of %d", cfg.DriverIndex, cfg.DriverCount))
	}
	if factory == nil {
		factory = func(_ int, engine *sim.Engine) Target {
			return NewModelTarget(engine, cfg.Seed, 5*time.Millisecond, 20*time.Millisecond, cfg.Items)
		}
	}

	zipf := sim.NewZipfTable(cfg.Items, 0.8)
	matrix := compileMatrix(TransitionMatrix(cfg.Mix))
	unames := unameVocabulary(cfg.Customers)

	d := &ShardedDriver{
		cfg:          cfg,
		group:        sim.NewShardGroup(cfg.Shards, cfg.Window),
		shards:       make([]*driverShard, cfg.Shards),
		thinkMeanSec: cfg.ThinkMean.Seconds(),
		thinkCapSec:  cfg.ThinkCap.Seconds(),
		stopProb:     1 / float64(cfg.MeanSessionLength),
	}

	for i := range d.shards {
		sh := &driverShard{
			d:   d,
			idx: i,
		}
		if cfg.Arrival == OpenLoop {
			// Of the lanes this driver process owns (lane ≡ DriverIndex mod
			// DriverCount), shard i takes every Shards-th one. Each lane
			// carries its own admission budget — a pure function of
			// (MaxSessions, lane) — so the shard's slot capacity is the sum
			// over its lanes and a lane under budget always finds a slot.
			owned := 0
			for lane := int64(cfg.DriverIndex); lane < arrivalLanes; lane += int64(cfg.DriverCount) {
				if owned%cfg.Shards == i {
					sh.lanes = append(sh.lanes, lane)
					// Lane labels live above 2^32 so they never collide with
					// session labels (id+1).
					sh.laneRng = append(sh.laneRng, sim.DeriveRand64(cfg.Seed, 1<<32+uint64(lane)))
					sh.laneNextID = append(sh.laneNextID, lane)
					sh.laneCap = append(sh.laneCap, laneCapacity(cfg.MaxSessions, lane))
				}
				owned++
			}
			sh.laneLive = make([]int32, len(sh.lanes))
			sh.laneFn = sh.arrive
		}
		capacity := d.shardCapacity(i, sh)
		sh.engine = d.group.Shard(i)
		sh.table = newSessionTable(capacity, cfg.Seed, zipf, matrix, unames)
		// Reserve the event arena for the steady-state live population: one
		// timer or in-flight completion per session, plus lane/inflight slack.
		sh.engine.Reserve(capacity + capacity/8 + 1024)
		sh.target = factory(i, sh.engine)
		sh.stepFn = sh.step
		sh.doneFns = make([]servlet.Completion, capacity)
		for slot := 0; slot < capacity; slot++ {
			slot := slot
			sh.doneFns[slot] = func(_ *servlet.Request, resp *servlet.Response) {
				sh.complete(slot, resp)
			}
		}
		if cfg.Arrival == OpenLoop {
			sh.free = make([]int32, 0, capacity)
			for slot := capacity - 1; slot >= 0; slot-- {
				sh.free = append(sh.free, int32(slot))
			}
			sh.slotLane = make([]int32, capacity)
		}
		d.shards[i] = sh
	}
	return d
}

// laneCapacity is lane's share of the MaxSessions admission budget:
// a pure function of (MaxSessions, lane), so whether an arrival is
// admitted or shed never depends on shard or driver count.
func laneCapacity(maxSessions int, lane int64) int32 {
	c := int32(maxSessions / arrivalLanes)
	if lane < int64(maxSessions%arrivalLanes) {
		c++
	}
	return c
}

// shardCapacity returns shard i's table size: its share of this driver
// process's slice of the closed population, or — open loop — the sum of
// its lanes' admission budgets (so a lane under budget always finds a
// free slot).
func (d *ShardedDriver) shardCapacity(i int, sh *driverShard) int {
	if d.cfg.Arrival == OpenLoop {
		capacity := 0
		for _, c := range sh.laneCap {
			capacity += int(c)
		}
		if capacity < 1 {
			capacity = 1
		}
		return capacity
	}
	owned := (d.cfg.Sessions - d.cfg.DriverIndex + d.cfg.DriverCount - 1) / d.cfg.DriverCount
	if owned < 0 {
		owned = 0
	}
	capacity := owned / d.cfg.Shards
	if i < owned%d.cfg.Shards {
		capacity++
	}
	if capacity < 1 {
		capacity = 1
	}
	return capacity
}

// Group exposes the shard group (shard engines, window) for composition —
// the experiment layer hangs monitoring on it.
func (d *ShardedDriver) Group() *sim.ShardGroup { return d.group }

// Shards reports the per-process engine count.
func (d *ShardedDriver) Shards() int { return len(d.shards) }

// Start arms the load for a run of the given duration — binds and
// staggers the closed population or primes the arrival lanes — without
// advancing time. Pair with AdvanceTo for externally-paced runs (the
// multi-process wire); Run wraps both. Single use: the per-second buckets
// are indexed from the epoch.
func (d *ShardedDriver) Start(duration time.Duration) {
	if d.ran {
		panic("eb: ShardedDriver runs are single-use")
	}
	d.ran = true
	end := d.group.Now().Add(duration)
	endNs := end.Sub(sim.Epoch).Nanoseconds()
	seconds := int(duration/time.Second) + 2

	for _, sh := range d.shards {
		sh.endNs = endNs
		sh.buckets = make([]uint32, seconds)
	}

	switch d.cfg.Arrival {
	case ClosedLoop:
		// Of the ids this driver process owns (id ≡ DriverIndex mod
		// DriverCount), shards take turns: owned-index → shard by modulo,
		// slot by division. Dense per-shard tables, shard- and driver-count
		// independent global ids.
		k, kn := int64(d.cfg.DriverIndex), int64(d.cfg.DriverCount)
		shards := int64(d.cfg.Shards)
		for id := k; id < int64(d.cfg.Sessions); id += kn {
			j := (id - k) / kn
			sh := d.shards[j%shards]
			slot := int(j / shards)
			sh.table.bind(slot, id)
			// Stagger starts across one mean think time, drawn from the
			// session's own stream so the ramp is id-deterministic.
			delay := time.Duration(sh.table.rng[slot].Float64() * float64(d.cfg.ThinkMean))
			sh.engine.ScheduleArgAfter(delay, sh.stepFn, int64(slot))
		}
	case OpenLoop:
		for _, sh := range d.shards {
			for li := range sh.lanes {
				sh.engine.ScheduleArgAfter(sh.gap(li), sh.laneFn, int64(li))
			}
		}
	}
}

// AdvanceTo drives all shards to the given virtual instant (a barrier per
// pacing window). The multi-process coordinator calls this once per
// granted window.
func (d *ShardedDriver) AdvanceTo(now time.Time) {
	d.group.RunUntil(now, nil)
}

// Run drives the load for the given duration.
func (d *ShardedDriver) Run(duration time.Duration, onWindow func(now time.Time)) {
	d.Start(duration)
	d.group.RunUntil(d.group.Now().Add(duration), onWindow)
}

// Completed returns total completed interactions across shards.
func (d *ShardedDriver) Completed() uint64 {
	return d.sum(func(sh *driverShard) uint64 { return sh.completed })
}

// Failed returns total failed interactions across shards.
func (d *ShardedDriver) Failed() uint64 {
	return d.sum(func(sh *driverShard) uint64 { return sh.failed })
}

// Dropped returns open-loop arrivals shed for want of a session slot.
func (d *ShardedDriver) Dropped() uint64 {
	return d.sum(func(sh *driverShard) uint64 { return sh.dropped })
}

// Checksum returns the commutative completion fingerprint: the sum over
// all completions of a hash of (instant, session id). Equal sums across
// shard or driver-process counts certify equal merged schedules without
// shipping traces.
func (d *ShardedDriver) Checksum() uint64 {
	return d.sum(func(sh *driverShard) uint64 { return sh.checksum })
}

func (d *ShardedDriver) sum(f func(*driverShard) uint64) uint64 {
	var total uint64
	for _, sh := range d.shards {
		total += f(sh)
	}
	return total
}

// WIPSBuckets returns the merged per-second completion counts — integer
// WIPS, exact under any shard count.
func (d *ShardedDriver) WIPSBuckets() []uint32 {
	if len(d.shards) == 0 {
		return nil
	}
	out := make([]uint32, len(d.shards[0].buckets))
	for _, sh := range d.shards {
		for i, v := range sh.buckets {
			out[i] += v
		}
	}
	return out
}

// TraceHash folds the merged completion trace — sorted by (time, session),
// a total order since a session never completes twice in one instant —
// into an FNV-1a fingerprint. Equal hashes across shard counts mean equal
// merged schedules, which is the determinism contract in one number.
func (d *ShardedDriver) TraceHash() uint64 {
	var merged []traceEvent
	for _, sh := range d.shards {
		merged = append(merged, sh.trace...)
	}
	sort.Slice(merged, func(i, j int) bool {
		if merged[i].atNs != merged[j].atNs {
			return merged[i].atNs < merged[j].atNs
		}
		return merged[i].id < merged[j].id
	})
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	for _, ev := range merged {
		mix(uint64(ev.atNs))
		mix(uint64(ev.id))
	}
	return h
}

// TraceLen returns the merged trace length (0 unless RecordTrace).
func (d *ShardedDriver) TraceLen() int {
	n := 0
	for _, sh := range d.shards {
		n += len(sh.trace)
	}
	return n
}

// step issues the next interaction for a bound slot. Fired by the shard
// engine via the pre-bound stepFn — no per-event closure.
func (sh *driverShard) step(_ time.Time, arg int64) {
	slot := int(arg)
	if sh.table.idle(slot) {
		return
	}
	sh.target.Submit(sh.table.buildRequest(slot), sh.doneFns[slot])
}

// complete is the per-slot completion: account, observe, and either think
// and go again (closed loop / surviving open-loop session) or release the
// slot (geometric session end).
func (sh *driverShard) complete(slot int, resp *servlet.Response) {
	now := sh.engine.Now()
	nowNs := now.Sub(sim.Epoch).Nanoseconds()
	sh.completed++
	if !resp.OK() {
		sh.failed++
	}
	if idx := int(nowNs / int64(time.Second)); idx >= 0 && idx < len(sh.buckets) {
		sh.buckets[idx]++
	}
	// The checksum folds (instant, session) commutatively, so partial sums
	// merge by addition across shards and driver processes — the wire's
	// K-parity fingerprint.
	x := uint64(nowNs)*0x9e3779b97f4a7c15 ^ uint64(sh.table.id[slot])*0xff51afd7ed558ccd
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	sh.checksum += x ^ (x >> 27)
	if sh.d.cfg.RecordTrace {
		sh.trace = append(sh.trace, traceEvent{
			atNs: nowNs,
			id:   sh.table.id[slot],
		})
	}
	sh.table.observe(slot, resp)

	if sh.d.cfg.Arrival == OpenLoop && sh.table.rng[slot].Float64() < sh.d.stopProb {
		sh.table.release(slot)
		sh.laneLive[sh.slotLane[slot]]--
		sh.free = append(sh.free, int32(slot))
		return
	}
	think := time.Duration(sh.table.think(slot, sh.d.thinkMeanSec, sh.d.thinkCapSec) * float64(time.Second))
	sh.engine.ScheduleArgAfter(think, sh.stepFn, int64(slot))
}

// gap draws lane li's next interarrival: exponential with the lane's share
// of the configured rate.
func (sh *driverShard) gap(li int) time.Duration {
	mean := float64(arrivalLanes) / sh.d.cfg.Rate // seconds between arrivals on this lane
	return time.Duration(sh.laneRng[li].Exp(mean) * float64(time.Second))
}

// arrive admits one open-loop session on lane li and schedules the lane's
// next arrival. Session ids are lane-strided (lane + k·arrivalLanes):
// globally unique and independent of shard count.
func (sh *driverShard) arrive(now time.Time, arg int64) {
	li := int(arg)
	if nowNs := now.Sub(sim.Epoch).Nanoseconds(); nowNs < sh.endNs {
		sh.engine.ScheduleArgAfter(sh.gap(li), sh.laneFn, arg)
	}

	id := sh.laneNextID[li]
	sh.laneNextID[li] += arrivalLanes

	// Admission is lane-local: the lane's budget, live count and rng are
	// all pure functions of (seed, lane), so shedding behaves identically
	// for any shard or driver count — the determinism contract holds in
	// the saturated regime too, not just when nothing is shed.
	if sh.laneLive[li] >= sh.laneCap[li] {
		sh.dropped++
		return
	}
	sh.laneLive[li]++
	slot := int(sh.free[len(sh.free)-1])
	sh.free = sh.free[:len(sh.free)-1]
	sh.slotLane[slot] = int32(li)
	sh.table.bind(slot, id)
	sh.step(now, int64(slot))
}

// ModelTarget is a contention-free synthetic backend: it completes every
// request after a deterministic pseudo-random service time, publishing a
// few navigable item ids. One per shard gives the load tier a closed
// system to exercise a million sessions against without dragging in the
// full container stack — the golden determinism tests and the
// million-session benchmark run over it. Service times are a pure function
// of (seed, interaction, submit instant), so they are identical under any
// shard count.
type ModelTarget struct {
	engine *sim.Engine
	seed   uint64
	baseNs int64
	spanNs int64
	items  int64

	fireFn func(time.Time, int64)
	pend   []mtPending
	free   []int32

	completed uint64
	curSec    int64
	curCount  uint32
	prevCount uint32
}

type mtPending struct {
	req  *servlet.Request
	done servlet.Completion
}

// NewModelTarget builds a model backend on a shard's engine. Service time
// is base plus a hash-spread jitter in [0, jitter).
func NewModelTarget(engine *sim.Engine, seed uint64, base, jitter time.Duration, items int) *ModelTarget {
	if base <= 0 {
		panic("eb: ModelTarget needs base service time > 0")
	}
	if items <= 0 {
		items = 1000
	}
	t := &ModelTarget{
		engine: engine,
		seed:   seed,
		baseNs: base.Nanoseconds(),
		spanNs: jitter.Nanoseconds(),
		items:  int64(items),
	}
	t.fireFn = t.fire
	return t
}

// Submit schedules the request's completion after its service time.
func (t *ModelTarget) Submit(req *servlet.Request, done servlet.Completion) {
	nowNs := t.engine.Now().Sub(sim.Epoch).Nanoseconds()
	h := t.hash(req, nowNs)
	svc := t.baseNs
	if t.spanNs > 0 {
		svc += int64(h % uint64(t.spanNs))
	}

	var slot int32
	if n := len(t.free); n > 0 {
		slot = t.free[n-1]
		t.free = t.free[:n-1]
	} else {
		slot = int32(len(t.pend))
		t.pend = append(t.pend, mtPending{})
	}
	t.pend[slot] = mtPending{req: req, done: done}
	t.engine.ScheduleArg(t.engine.Now().Add(time.Duration(svc)), t.fireFn, int64(slot)<<32|int64(uint32(h)))
}

// hash mixes the service-time entropy: seed, interaction and the submit
// instant — all shard-count independent.
func (t *ModelTarget) hash(req *servlet.Request, nowNs int64) uint64 {
	x := t.seed ^ uint64(nowNs)*0x9e3779b97f4a7c15 ^ uint64(interIndex[req.Interaction])<<56
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fire completes one pending request: a pooled OK response carrying a few
// hash-derived item ids, released after the completion returns.
func (t *ModelTarget) fire(now time.Time, arg int64) {
	slot := int32(arg >> 32)
	h := uint64(uint32(arg))
	p := t.pend[slot]
	t.pend[slot] = mtPending{}
	t.free = append(t.free, slot)

	resp := servlet.AcquireResponse()
	for i := uint64(0); i < 3; i++ {
		resp.AddItemID(1 + int64((h+i*0x9e3779b9)%uint64(t.items)))
	}
	t.completed++
	if sec := now.Sub(sim.Epoch).Nanoseconds() / int64(time.Second); sec != t.curSec {
		if sec == t.curSec+1 {
			t.prevCount = t.curCount
		} else {
			t.prevCount = 0
		}
		t.curSec = sec
		t.curCount = 0
	}
	t.curCount++

	p.done(p.req, resp)
	servlet.ReleaseResponse(resp)
	servlet.ReleaseRequest(p.req)
}

// Throughput reports the completion count of the last full second —
// enough signal for the Target interface's WIPS sampling.
func (t *ModelTarget) Throughput() float64 { return float64(t.prevCount) }

// Completed returns the total completions served.
func (t *ModelTarget) Completed() uint64 { return t.completed }

var _ Target = (*ModelTarget)(nil)

// String implements fmt.Stringer for debugging.
func (t *ModelTarget) String() string {
	return fmt.Sprintf("ModelTarget{completed=%d inflight=%d}", t.completed, len(t.pend)-len(t.free))
}

package eb

import (
	"fmt"
	"strconv"

	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/tpcw"
)

// searchTerms is the vocabulary EBs search with; "Book" matches broadly,
// the others narrow (every populated title contains "Book Title <n>" and a
// subject word).
var searchTerms = []string{"Book", "Title", "COMPUTERS", "HISTORY", "ROMANCE", "1"}

// Browser is one emulated browser: it holds session state, walks the
// transition matrix and fabricates request parameters the way the TPC-W
// remote browser emulator does (Zipf-skewed item popularity, subject and
// search-term draws, an assigned customer identity).
type Browser struct {
	id        int
	sessionID string
	rng       *sim.Stream
	zipf      *sim.Zipf
	matrix    Matrix
	items     int
	customers int

	current   string
	lastItems []int64
	requests  int64
	failures  int64
}

// NewBrowser creates browser id with its own derived random stream.
func NewBrowser(id int, seed uint64, matrix Matrix, items, customers int) *Browser {
	rng := sim.DeriveStable(seed, uint64(id)+1)
	return &Browser{
		id:        id,
		sessionID: fmt.Sprintf("eb-%d", id),
		rng:       rng,
		zipf:      sim.NewZipf(rng.Derive(99), items, 0.8),
		matrix:    matrix,
		items:     items,
		customers: customers,
		current:   tpcw.CompHome,
	}
}

// ID returns the browser number.
func (b *Browser) ID() int { return b.id }

// SessionID returns the browser's HTTP session id.
func (b *Browser) SessionID() string { return b.sessionID }

// Requests returns how many requests this browser has issued.
func (b *Browser) Requests() int64 { return b.requests }

// Failures returns how many of them failed.
func (b *Browser) Failures() int64 { return b.failures }

// Current returns the interaction the browser is on.
func (b *Browser) Current() string { return b.current }

// SetMatrix swaps the browser's transition matrix; the next navigation
// decision follows the new mix. The driver uses it to shift the workload
// mid-run without restarting sessions.
func (b *Browser) SetMatrix(m Matrix) { b.matrix = m }

// NextRequest advances the state machine and fabricates the next request.
// The first request of a session is always the home page.
func (b *Browser) NextRequest() *servlet.Request {
	next := b.current
	if b.requests > 0 {
		next = b.pickNext()
	}
	b.current = next
	b.requests++
	return &servlet.Request{
		Interaction: next,
		SessionID:   b.sessionID,
		Params:      b.paramsFor(next),
	}
}

// Observe feeds the response back so the browser can follow page links
// (item ids) like a real user, and restart from home after failures.
func (b *Browser) Observe(resp *servlet.Response) {
	if !resp.OK() {
		b.failures++
		b.current = tpcw.CompHome
		return
	}
	if ids, ok := resp.Get("item_ids").([]int64); ok && len(ids) > 0 {
		b.lastItems = ids
	}
}

func (b *Browser) pickNext() string {
	row, ok := b.matrix[b.current]
	if !ok || len(row) == 0 {
		return tpcw.CompHome
	}
	weights := make([]float64, len(row))
	for i, tr := range row {
		weights[i] = tr.Weight
	}
	return row[b.rng.PickWeighted(weights)].To
}

// pickItem prefers a link from the last page; otherwise draws a
// Zipf-popular catalogue item.
func (b *Browser) pickItem() int64 {
	if len(b.lastItems) > 0 && b.rng.Float64() < 0.7 {
		return b.lastItems[b.rng.IntN(len(b.lastItems))]
	}
	return int64(b.zipf.Next())
}

// uname returns the customer identity assigned to this browser.
func (b *Browser) uname() string {
	return tpcw.Uname(b.id%b.customers + 1)
}

func (b *Browser) paramsFor(interaction string) map[string]string {
	p := make(map[string]string, 4)
	switch interaction {
	case tpcw.CompHome:
		p["I_ID"] = strconv.FormatInt(b.pickItem(), 10)
	case tpcw.CompNewProducts, tpcw.CompBestSellers:
		p["SUBJECT"] = tpcw.Subjects[b.rng.IntN(len(tpcw.Subjects))]
	case tpcw.CompProductDetail, tpcw.CompAdminRequest, tpcw.CompAdminConfirm:
		p["I_ID"] = strconv.FormatInt(b.pickItem(), 10)
	case tpcw.CompSearchResults:
		if b.rng.Float64() < 0.8 {
			p["FIELD"] = "title"
			p["TERM"] = searchTerms[b.rng.IntN(len(searchTerms))]
		} else {
			p["FIELD"] = "author"
			p["TERM"] = "AuthorL" + strconv.Itoa(1+b.rng.IntN(20))
		}
	case tpcw.CompShoppingCart:
		p["ACTION"] = "add"
		p["I_ID"] = strconv.FormatInt(b.pickItem(), 10)
		p["QTY"] = strconv.Itoa(1 + b.rng.IntN(3))
	case tpcw.CompBuyRequest:
		// Returning customers log in; 20% register fresh accounts.
		if b.rng.Float64() < 0.8 {
			p["UNAME"] = b.uname()
		}
	case tpcw.CompOrderDisplay:
		p["UNAME"] = b.uname()
	}
	return p
}

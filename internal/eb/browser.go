package eb

import (
	"fmt"
	"strconv"

	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/tpcw"
)

// searchTerms is the vocabulary EBs search with; "Book" matches broadly,
// the others narrow (every populated title contains "Book Title <n>" and a
// subject word).
var searchTerms = []string{"Book", "Title", "COMPUTERS", "HISTORY", "ROMANCE", "1"}

// authorTerms is the author-search vocabulary, precomputed so the issue
// loop never formats a term string per request.
var authorTerms = func() [20]string {
	var out [20]string
	for i := range out {
		out[i] = "AuthorL" + strconv.Itoa(i+1)
	}
	return out
}()

// Browser is one emulated browser: it holds session state, walks the
// transition matrix and fabricates request parameters the way the TPC-W
// remote browser emulator does (Zipf-skewed item popularity, subject and
// search-term draws, an assigned customer identity).
type Browser struct {
	id        int
	sessionID string
	rng       *sim.Stream
	zipf      *sim.Zipf
	matrix    Matrix
	items     int
	customers int
	uname     string // assigned customer identity, formatted once

	current   string
	lastItems []int64
	weights   []float64 // pickNext scratch, reused across transitions
	requests  int64
	failures  int64

	// done and stepFn are the driver-installed completion and think-time
	// callbacks: allocated once per browser so the issue loop schedules
	// requests without building closures per interaction.
	done   servlet.Completion
	stepFn sim.Event
}

// NewBrowser creates browser id with its own derived random stream.
func NewBrowser(id int, seed uint64, matrix Matrix, items, customers int) *Browser {
	rng := sim.DeriveStable(seed, uint64(id)+1)
	return &Browser{
		id:        id,
		sessionID: fmt.Sprintf("eb-%d", id),
		rng:       rng,
		zipf:      sim.NewZipf(rng.Derive(99), items, 0.8),
		matrix:    matrix,
		items:     items,
		customers: customers,
		uname:     tpcw.Uname(id%customers + 1),
		current:   tpcw.CompHome,
	}
}

// ID returns the browser number.
func (b *Browser) ID() int { return b.id }

// SessionID returns the browser's HTTP session id.
func (b *Browser) SessionID() string { return b.sessionID }

// Requests returns how many requests this browser has issued.
func (b *Browser) Requests() int64 { return b.requests }

// Failures returns how many of them failed.
func (b *Browser) Failures() int64 { return b.failures }

// Current returns the interaction the browser is on.
func (b *Browser) Current() string { return b.current }

// SetMatrix swaps the browser's transition matrix; the next navigation
// decision follows the new mix. The driver uses it to shift the workload
// mid-run without restarting sessions.
func (b *Browser) SetMatrix(m Matrix) { b.matrix = m }

// NextRequest advances the state machine and fabricates the next request.
// The first request of a session is always the home page. The request is
// borrowed from the servlet package's pool; in simulation mode the
// container recycles it after the completion callback returns.
func (b *Browser) NextRequest() *servlet.Request {
	next := b.current
	if b.requests > 0 {
		next = b.pickNext()
	}
	b.current = next
	b.requests++
	req := servlet.AcquireRequest()
	req.Interaction = next
	req.SessionID = b.sessionID
	b.paramsInto(req, next)
	return req
}

// Observe feeds the response back so the browser can follow page links
// (item ids) like a real user, and restart from home after failures. The
// ids are copied out — the response's buffer is recycled with it.
func (b *Browser) Observe(resp *servlet.Response) {
	if !resp.OK() {
		b.failures++
		b.current = tpcw.CompHome
		return
	}
	if ids := resp.ItemIDs(); len(ids) > 0 {
		b.lastItems = append(b.lastItems[:0], ids...)
	}
}

func (b *Browser) pickNext() string {
	row, ok := b.matrix[b.current]
	if !ok || len(row) == 0 {
		return tpcw.CompHome
	}
	weights := b.weights[:0]
	for _, tr := range row {
		weights = append(weights, tr.Weight)
	}
	b.weights = weights
	return row[b.rng.PickWeighted(weights)].To
}

// pickItem prefers a link from the last page; otherwise draws a
// Zipf-popular catalogue item.
func (b *Browser) pickItem() int64 {
	if len(b.lastItems) > 0 && b.rng.Float64() < 0.7 {
		return b.lastItems[b.rng.IntN(len(b.lastItems))]
	}
	return int64(b.zipf.Next())
}

// paramsInto fabricates the interaction's parameters directly into the
// pooled request's inline stores: numeric ids stay typed (no strconv) and
// string values come from fixed vocabularies, so parameter fabrication is
// allocation-free.
func (b *Browser) paramsInto(req *servlet.Request, interaction string) {
	switch interaction {
	case tpcw.CompHome:
		req.SetInt64Param("I_ID", b.pickItem())
	case tpcw.CompNewProducts, tpcw.CompBestSellers:
		req.SetParam("SUBJECT", tpcw.Subjects[b.rng.IntN(len(tpcw.Subjects))])
	case tpcw.CompProductDetail, tpcw.CompAdminRequest, tpcw.CompAdminConfirm:
		req.SetInt64Param("I_ID", b.pickItem())
	case tpcw.CompSearchResults:
		if b.rng.Float64() < 0.8 {
			req.SetParam("FIELD", "title")
			req.SetParam("TERM", searchTerms[b.rng.IntN(len(searchTerms))])
		} else {
			req.SetParam("FIELD", "author")
			req.SetParam("TERM", authorTerms[b.rng.IntN(20)])
		}
	case tpcw.CompShoppingCart:
		req.SetParam("ACTION", "add")
		req.SetInt64Param("I_ID", b.pickItem())
		req.SetInt64Param("QTY", 1+int64(b.rng.IntN(3)))
	case tpcw.CompBuyRequest:
		// Returning customers log in; 20% register fresh accounts.
		if b.rng.Float64() < 0.8 {
			req.SetParam("UNAME", b.uname)
		}
	case tpcw.CompOrderDisplay:
		req.SetParam("UNAME", b.uname)
	}
}

// Package eb implements TPC-W's Emulated Browsers: session-based clients
// that walk the fourteen web interactions following a per-mix transition
// matrix, with negative-exponential think time (mean 7 s, 70 s cap) between
// requests, exactly the load generator semantics of the paper's
// experimental setup. A phased driver changes the concurrent EB population
// over virtual time to reproduce the 50 → 100 → 200 EB schedule of Fig. 3.
package eb

import (
	"fmt"

	"repro/internal/tpcw"
)

// Mix selects a TPC-W workload mix.
type Mix int

// The three TPC-W mixes. The paper's experiments all use Shopping.
const (
	Browsing Mix = iota
	Shopping
	Ordering
)

func (m Mix) String() string {
	switch m {
	case Browsing:
		return "browsing"
	case Shopping:
		return "shopping"
	case Ordering:
		return "ordering"
	default:
		return "unknown"
	}
}

// Transition is one weighted edge of the navigation graph.
type Transition struct {
	To     string
	Weight float64
}

// Matrix maps each interaction to its outgoing transitions. Weights are
// relative within a row.
type Matrix map[string][]Transition

// TransitionMatrix returns the navigation matrix of a mix. The graphs
// share TPC-W's page-flow structure; the mixes differ in how strongly they
// pull sessions toward the ordering path (Browsing ≈ 5%, Shopping ≈ 20%,
// Ordering ≈ 50% of activity on cart/buy pages). Admin and order-inquiry
// pages are rare in every mix — which is why the admin servlets are the
// naturally low-usage components the paper's Fig. 5 calls "D".
func TransitionMatrix(mix Mix) Matrix {
	// Cart affinity scales the edges leading toward purchases.
	var cart, buy float64
	switch mix {
	case Browsing:
		cart, buy = 0.4, 0.5
	case Shopping:
		cart, buy = 1.0, 1.0
	case Ordering:
		cart, buy = 3.0, 2.5
	default:
		panic(fmt.Sprintf("eb: unknown mix %d", mix))
	}
	return Matrix{
		tpcw.CompHome: {
			{tpcw.CompSearchRequest, 25},
			{tpcw.CompNewProducts, 18},
			{tpcw.CompBestSellers, 12},
			{tpcw.CompProductDetail, 30},
			{tpcw.CompShoppingCart, 6 * cart},
			{tpcw.CompOrderInquiry, 2},
			{tpcw.CompAdminRequest, 0.4},
		},
		tpcw.CompNewProducts: {
			{tpcw.CompProductDetail, 55},
			{tpcw.CompHome, 15},
			{tpcw.CompSearchRequest, 20},
			{tpcw.CompShoppingCart, 8 * cart},
		},
		tpcw.CompBestSellers: {
			{tpcw.CompProductDetail, 55},
			{tpcw.CompHome, 15},
			{tpcw.CompSearchRequest, 20},
			{tpcw.CompShoppingCart, 8 * cart},
		},
		tpcw.CompProductDetail: {
			{tpcw.CompProductDetail, 22}, // follow a related item
			{tpcw.CompShoppingCart, 16 * cart},
			{tpcw.CompSearchRequest, 20},
			{tpcw.CompHome, 22},
			{tpcw.CompNewProducts, 10},
			{tpcw.CompAdminRequest, 0.4},
		},
		tpcw.CompSearchRequest: {
			{tpcw.CompSearchResults, 85},
			{tpcw.CompHome, 15},
		},
		tpcw.CompSearchResults: {
			{tpcw.CompProductDetail, 45},
			{tpcw.CompSearchRequest, 22},
			{tpcw.CompHome, 15},
			{tpcw.CompShoppingCart, 10 * cart},
		},
		tpcw.CompShoppingCart: {
			{tpcw.CompCustomerReg, 25 * buy},
			{tpcw.CompProductDetail, 25},
			{tpcw.CompHome, 20},
			{tpcw.CompSearchRequest, 15},
		},
		tpcw.CompCustomerReg: {
			{tpcw.CompBuyRequest, 85},
			{tpcw.CompHome, 15},
		},
		tpcw.CompBuyRequest: {
			{tpcw.CompBuyConfirm, 70 * buy},
			{tpcw.CompHome, 20},
		},
		tpcw.CompBuyConfirm: {
			{tpcw.CompHome, 60},
			{tpcw.CompSearchRequest, 40},
		},
		tpcw.CompOrderInquiry: {
			{tpcw.CompOrderDisplay, 70},
			{tpcw.CompHome, 30},
		},
		tpcw.CompOrderDisplay: {
			{tpcw.CompHome, 60},
			{tpcw.CompSearchRequest, 40},
		},
		tpcw.CompAdminRequest: {
			{tpcw.CompAdminConfirm, 75},
			{tpcw.CompHome, 25},
		},
		tpcw.CompAdminConfirm: {
			{tpcw.CompHome, 100},
		},
	}
}

// Validate checks that every transition target is a deployable interaction
// and every row has positive total weight.
func (m Matrix) Validate() error {
	known := make(map[string]bool, len(tpcw.Interactions))
	for _, n := range tpcw.Interactions {
		known[n] = true
	}
	for from, row := range m {
		if !known[from] {
			return fmt.Errorf("eb: matrix row for unknown interaction %q", from)
		}
		var total float64
		for _, tr := range row {
			if !known[tr.To] {
				return fmt.Errorf("eb: transition %s -> unknown %q", from, tr.To)
			}
			if tr.Weight < 0 {
				return fmt.Errorf("eb: negative weight on %s -> %s", from, tr.To)
			}
			total += tr.Weight
		}
		if total <= 0 {
			return fmt.Errorf("eb: row %q has no positive weight", from)
		}
	}
	return nil
}

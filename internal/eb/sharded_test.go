package eb

import (
	"runtime"
	"testing"
	"time"

	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/tpcw"
)

// runSharded runs one load-tier configuration to completion and returns
// the driver for inspection.
func runSharded(t *testing.T, cfg ShardedConfig, d time.Duration) *ShardedDriver {
	t.Helper()
	drv := NewShardedDriver(cfg, nil)
	drv.Run(d, nil)
	return drv
}

// goldenClosedCfg is the pinned closed-loop determinism workload.
func goldenClosedCfg(shards int) ShardedConfig {
	return ShardedConfig{
		Shards:      shards,
		Seed:        42,
		Mix:         Shopping,
		Sessions:    120,
		RecordTrace: true,
	}
}

// TestShardedDriverGoldenAcrossShardCounts is the determinism contract of
// the load tier: the same seed must produce a byte-identical merged
// completion schedule and WIPS series under any shard count. The trace
// hash is additionally pinned to a constant so an accidental change to any
// draw path (matrix compilation, Zipf table, think-time stream, model
// service times) fails loudly rather than silently shifting results.
func TestShardedDriverGoldenAcrossShardCounts(t *testing.T) {
	ref := runSharded(t, goldenClosedCfg(1), 2*time.Minute)
	if ref.Completed() == 0 {
		t.Fatal("reference run completed nothing")
	}
	refHash := ref.TraceHash()
	refBuckets := ref.WIPSBuckets()

	for _, shards := range []int{2, 3, 8} {
		got := runSharded(t, goldenClosedCfg(shards), 2*time.Minute)
		if got.Completed() != ref.Completed() || got.Failed() != ref.Failed() {
			t.Fatalf("shards=%d: completed/failed %d/%d, want %d/%d",
				shards, got.Completed(), got.Failed(), ref.Completed(), ref.Failed())
		}
		if h := got.TraceHash(); h != refHash {
			t.Fatalf("shards=%d: trace hash %#x, want %#x", shards, h, refHash)
		}
		gb := got.WIPSBuckets()
		if len(gb) != len(refBuckets) {
			t.Fatalf("shards=%d: %d buckets, want %d", shards, len(gb), len(refBuckets))
		}
		for i := range gb {
			if gb[i] != refBuckets[i] {
				t.Fatalf("shards=%d: bucket %d = %d, want %d", shards, i, gb[i], refBuckets[i])
			}
		}
	}

	// The pinned constant: math.Log/Pow keep the trace arch-dependent in
	// principle, so the literal is asserted only on the architecture it was
	// recorded on; the cross-shard equality above holds everywhere.
	const goldenHash = uint64(0xa8cd087da7fea35a) // recorded on linux/amd64
	if runtime.GOARCH == "amd64" {
		if refHash != goldenHash {
			t.Errorf("golden trace hash drifted: got %#x, want %#x (re-pin only with an intentional workload change)", refHash, goldenHash)
		}
	}
}

// TestShardedDriverOpenLoopDeterministic extends the golden contract to
// Poisson arrivals: lanes, not shards, own the arrival streams, so the
// admitted session sequence is shard-count independent as long as no
// arrival is shed.
func TestShardedDriverOpenLoopDeterministic(t *testing.T) {
	cfg := func(shards int) ShardedConfig {
		return ShardedConfig{
			Shards:            shards,
			Seed:              7,
			Mix:               Browsing,
			Arrival:           OpenLoop,
			Rate:              40,
			MeanSessionLength: 10,
			MaxSessions:       8192,
			RecordTrace:       true,
		}
	}
	ref := NewShardedDriver(cfg(1), nil)
	ref.Run(90*time.Second, nil)
	if ref.Dropped() != 0 {
		t.Fatalf("reference shed %d arrivals; size MaxSessions up", ref.Dropped())
	}
	if ref.Completed() == 0 {
		t.Fatal("reference run completed nothing")
	}
	for _, shards := range []int{2, 5} {
		got := NewShardedDriver(cfg(shards), nil)
		got.Run(90*time.Second, nil)
		if got.Dropped() != 0 {
			t.Fatalf("shards=%d shed %d arrivals", shards, got.Dropped())
		}
		if got.Completed() != ref.Completed() {
			t.Fatalf("shards=%d completed %d, want %d", shards, got.Completed(), ref.Completed())
		}
		if got.TraceHash() != ref.TraceHash() {
			t.Fatalf("shards=%d trace hash %#x, want %#x", shards, got.TraceHash(), ref.TraceHash())
		}
	}
}

// TestShardedDriverOpenLoopShedsWhenFull pins the overload behaviour:
// arrivals beyond the slot budget are dropped and counted, never queued.
// TestShardedDriverOpenLoopShedDeterministic pins determinism in the
// saturated regime: admission budgets are lane-local (laneCapacity), so
// an overloaded run sheds the same arrivals — same drops, same
// completions, same checksum — for any shard count. A shard-local free
// pool would break this: whether an arrival finds a slot would depend on
// how sessions happened to be spread over shards.
func TestShardedDriverOpenLoopShedDeterministic(t *testing.T) {
	cfg := func(shards int) ShardedConfig {
		return ShardedConfig{
			Shards:            shards,
			Seed:              11,
			Mix:               Shopping,
			Arrival:           OpenLoop,
			Rate:              2000,
			MeanSessionLength: 20,
			MaxSessions:       4096,
		}
	}
	ref := NewShardedDriver(cfg(1), nil)
	ref.Run(90*time.Second, nil)
	if ref.Dropped() == 0 {
		t.Fatal("reference did not saturate; raise Rate or shrink MaxSessions")
	}
	for _, shards := range []int{2, 5} {
		got := NewShardedDriver(cfg(shards), nil)
		got.Run(90*time.Second, nil)
		if got.Dropped() != ref.Dropped() || got.Completed() != ref.Completed() {
			t.Fatalf("shards=%d completed/dropped %d/%d, want %d/%d",
				shards, got.Completed(), got.Dropped(), ref.Completed(), ref.Dropped())
		}
		if got.Checksum() != ref.Checksum() {
			t.Fatalf("shards=%d checksum %#x, want %#x", shards, got.Checksum(), ref.Checksum())
		}
	}
}

func TestShardedDriverOpenLoopShedsWhenFull(t *testing.T) {
	d := NewShardedDriver(ShardedConfig{
		Seed:              3,
		Arrival:           OpenLoop,
		Rate:              200,
		MeanSessionLength: 50,
		MaxSessions:       8,
	}, nil)
	d.Run(60*time.Second, nil)
	if d.Dropped() == 0 {
		t.Fatal("overloaded open loop dropped nothing")
	}
	if d.Completed() == 0 {
		t.Fatal("overloaded open loop completed nothing")
	}
}

// TestShardedDriverSteadyStateAllocFree is the load-tier memory claim in
// miniature: after construction, driving sessions — schedule, submit,
// complete, think, reschedule, and open-loop slot recycling — allocates
// nothing per event. Total run-side mallocs are bounded by a constant
// (bucket slices, a few amortised arena doublings), not by event count.
func TestShardedDriverSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; malloc counting is meaningless")
	}
	d := NewShardedDriver(ShardedConfig{
		Seed:     11,
		Sessions: 400,
	}, nil)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	d.Run(5*time.Minute, nil)
	runtime.ReadMemStats(&after)

	events := d.group.Shard(0).Executed()
	if events < 10000 {
		t.Fatalf("run executed only %d events; not a steady-state sample", events)
	}
	mallocs := after.Mallocs - before.Mallocs
	// A per-event allocation would show up as >=10k mallocs here.
	if mallocs > 500 {
		t.Fatalf("run performed %d mallocs over %d events; hot path is allocating", mallocs, events)
	}
}

// TestSessionTableMatchesIDNotSlot pins the identity rule that makes slot
// recycling safe: a session's request stream is a function of its id, not
// of the slot or table it lands in.
func TestSessionTableMatchesIDNotSlot(t *testing.T) {
	zipf := sim.NewZipfTable(1000, 0.8)
	matrix := compileMatrix(TransitionMatrix(Shopping))
	unames := unameVocabulary(1440)

	a := newSessionTable(4, 42, zipf, matrix, unames)
	b := newSessionTable(16, 42, zipf, matrix, unames)
	a.bind(0, 77)
	b.bind(9, 77)

	ok := &servlet.Response{Status: servlet.StatusOK}
	for i := 0; i < 200; i++ {
		ra := a.buildRequest(0)
		rb := b.buildRequest(9)
		if ra.Interaction != rb.Interaction {
			t.Fatalf("step %d: interactions diverged: %s vs %s", i, ra.Interaction, rb.Interaction)
		}
		for _, p := range []string{"SUBJECT", "FIELD", "TERM", "ACTION", "UNAME"} {
			if ra.Param(p) != rb.Param(p) {
				t.Fatalf("step %d %s: %q vs %q", i, p, ra.Param(p), rb.Param(p))
			}
		}
		for _, p := range []string{"I_ID", "QTY"} {
			va, oka := ra.Int64Param(p)
			vb, okb := rb.Int64Param(p)
			if va != vb || oka != okb {
				t.Fatalf("step %d %s: %d/%v vs %d/%v", i, p, va, oka, vb, okb)
			}
		}
		a.observe(0, ok)
		b.observe(9, ok)
		servlet.ReleaseRequest(ra)
		servlet.ReleaseRequest(rb)
	}
}

// TestSessionTableWalksLikeBrowser drives a table slot and a Browser with
// the same matrix over many steps and checks the visit distributions
// roughly agree — the SoA walk is a re-representation of Browser, not a
// new workload. (Exact trace equality is impossible: Browser's *Stream
// and the table's Rand64 are different generators by design.)
func TestSessionTableWalksLikeBrowser(t *testing.T) {
	const steps = 60000
	matrix := TransitionMatrix(Shopping)

	browserVisits := map[string]int{}
	br := NewBrowser(1, 9, matrix, 1000, 1440)
	ok := &servlet.Response{Status: servlet.StatusOK}
	for i := 0; i < steps; i++ {
		req := br.NextRequest()
		browserVisits[req.Interaction]++
		br.Observe(ok)
		servlet.ReleaseRequest(req)
	}

	tableVisits := map[string]int{}
	tb := newSessionTable(1, 9, sim.NewZipfTable(1000, 0.8), compileMatrix(matrix), unameVocabulary(1440))
	tb.bind(0, 1)
	for i := 0; i < steps; i++ {
		req := tb.buildRequest(0)
		tableVisits[req.Interaction]++
		tb.observe(0, ok)
		servlet.ReleaseRequest(req)
	}

	for _, name := range tpcw.Interactions {
		bf := float64(browserVisits[name]) / steps
		tf := float64(tableVisits[name]) / steps
		if diff := bf - tf; diff > 0.01 || diff < -0.01 {
			t.Errorf("%s: browser %.4f vs table %.4f", name, bf, tf)
		}
	}
}

// TestCompiledMatrixCoversSource checks the lowering is lossless: every
// row's targets and cumulative total match the source matrix.
func TestCompiledMatrixCoversSource(t *testing.T) {
	for _, mix := range []Mix{Browsing, Shopping, Ordering} {
		src := TransitionMatrix(mix)
		cm := compileMatrix(src)
		for from, row := range src {
			cr := cm.rows[interIndex[from]]
			if len(cr.to) != len(row) {
				t.Fatalf("%v/%s: %d targets, want %d", mix, from, len(cr.to), len(row))
			}
			var total float64
			for i, tr := range row {
				if tpcw.Interactions[cr.to[i]] != tr.To {
					t.Fatalf("%v/%s[%d]: target %s, want %s", mix, from, i, tpcw.Interactions[cr.to[i]], tr.To)
				}
				total += tr.Weight
			}
			if got := cr.cum[len(cr.cum)-1]; got < total-1e-9 || got > total+1e-9 {
				t.Fatalf("%v/%s: cumulative %v, want %v", mix, from, got, total)
			}
		}
	}
}

// TestModelTargetRecyclesRequests pins the pooling contract: requests and
// responses flow back to the servlet pools after completion, so a fixed
// in-flight population reuses a fixed working set.
func TestModelTargetRecyclesRequests(t *testing.T) {
	engine := sim.NewEngine()
	mt := NewModelTarget(engine, 1, time.Millisecond, 0, 100)
	var completions int
	for i := 0; i < 100; i++ {
		req := servlet.AcquireRequest()
		req.Interaction = tpcw.CompHome
		mt.Submit(req, func(_ *servlet.Request, resp *servlet.Response) {
			if !resp.OK() {
				t.Error("model response not OK")
			}
			if len(resp.ItemIDs()) == 0 {
				t.Error("model response has no item ids")
			}
			completions++
		})
		engine.RunFor(2 * time.Millisecond)
	}
	if completions != 100 {
		t.Fatalf("completions = %d", completions)
	}
	if mt.Completed() != 100 {
		t.Fatalf("target counted %d", mt.Completed())
	}
	if inflight := len(mt.pend) - len(mt.free); inflight != 0 {
		t.Fatalf("%d requests still pending", inflight)
	}
}

// BenchmarkDriverMillionSessions is the headline load-tier benchmark: one
// million concurrent closed-loop sessions on the session table, driven
// against per-shard model targets. Timed region is the steady-state run;
// construction (tables, arena reservation, vocabulary) is untimed. Run
// with -benchtime=1x as a smoke test; allocs/op stays bounded by the
// per-run bucket slice, not by the ~10^5 events driven.
func BenchmarkDriverMillionSessions(b *testing.B) {
	benchmarkDriverSessions(b, 1_000_000, 2*time.Second)
}

// BenchmarkDriverSessions100k is the continuously-gated sibling: big
// enough to exercise the table at scale, cheap enough for benchdiff runs.
func BenchmarkDriverSessions100k(b *testing.B) {
	benchmarkDriverSessions(b, 100_000, 2*time.Second)
}

func benchmarkDriverSessions(b *testing.B, sessions int, horizon time.Duration) {
	b.ReportAllocs()
	var events uint64
	var perSession float64
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		d := NewShardedDriver(ShardedConfig{
			Seed:     1,
			Sessions: sessions,
		}, nil)
		runtime.ReadMemStats(&after)
		perSession = float64(after.HeapAlloc-before.HeapAlloc) / float64(sessions)
		b.StartTimer()
		d.Run(horizon, nil)
		b.StopTimer()
		for s := 0; s < d.group.N(); s++ {
			events += d.group.Shard(s).Executed()
		}
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(perSession, "B/session")
}

package eb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"repro/internal/sim"
)

// The multi-process load tier: K DriverNode processes each drive their
// modulo slice of the session population (ShardedConfig.DriverIndex /
// DriverCount) and a LoadCoordinator paces them through virtual time and
// merges their telemetry. The protocol is conservative-lookahead window
// granting, the wire-level analogue of ShardGroup's barrier:
//
//	node  → coord   magic, HELLO(index, count)
//	coord → node    magic, then per window GRANT(seq, endNs)
//	node  → coord   BATCH(seq, Δcompleted, Δfailed, Δdropped, Δchecksum,
//	                      touched per-second buckets as (sec, Δcount))
//	coord → node    FIN after the last window
//
// A node never runs past its latest grant, and the coordinator grants
// window W+1 only after every node's BATCH for W arrived, so no process's
// virtual clock leads another's by more than one window. All telemetry
// rides as varint deltas in the spirit of the cluster binary codec:
// steady-state batches are a handful of bytes. Because session behaviour
// is a pure function of (seed, id) and ownership is id mod K, the merged
// counters, WIPS buckets and completion checksum are identical for any K —
// TestDriverWireKParity pins that against the in-process driver.

// loadWireMagic opens both directions of a driver wire stream: three
// identifying bytes and a version byte, after the cluster codec's
// convention. Bump the version on any incompatible change.
var loadWireMagic = [4]byte{'E', 'B', 'L', 1}

// Message type bytes.
const (
	loadMsgHello = 'H'
	loadMsgGrant = 'G'
	loadMsgBatch = 'B'
	loadMsgFin   = 'F'
)

// uvarint-write scratch; writers are single-goroutine so a local is fine.
func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

// DriverNode is one process's slice of the load fleet: a ShardedDriver
// plus the wire endpoint that lets a LoadCoordinator pace it. The node's
// shard count is its own affair (per-core sharding inside the process);
// the coordinator only sees windows and telemetry.
type DriverNode struct {
	driver   *ShardedDriver
	duration time.Duration

	// Shadow of what the coordinator has been told, for delta batches.
	sentCompleted uint64
	sentFailed    uint64
	sentDropped   uint64
	sentChecksum  uint64
	shadow        []uint32
	prevEndNs     int64
}

// NewDriverNode builds a node for one fleet slice. cfg.DriverIndex /
// DriverCount place it; duration must match the coordinator's.
func NewDriverNode(cfg ShardedConfig, duration time.Duration, factory TargetFactory) *DriverNode {
	return NodeForDriver(NewShardedDriver(cfg, factory), duration)
}

// NodeForDriver wraps an already-assembled (not yet started) driver as a
// wire node — for callers that build their own backends (the experiment
// layer's LoadStack).
func NodeForDriver(d *ShardedDriver, duration time.Duration) *DriverNode {
	if duration <= 0 {
		panic("eb: DriverNode needs a positive duration")
	}
	return &DriverNode{driver: d, duration: duration}
}

// Driver exposes the underlying sharded driver (telemetry after Serve).
func (n *DriverNode) Driver() *ShardedDriver { return n.driver }

// Serve runs the node's side of the protocol over an established
// connection until the coordinator sends FIN (returns nil) or the stream
// breaks (returns the error). It drives virtual time strictly as granted.
func (n *DriverNode) Serve(conn net.Conn) error {
	bw := bufio.NewWriter(conn)
	br := bufio.NewReader(conn)

	// Introduce ourselves first; the coordinator speaks only after it has
	// heard from every node (synchronous pipes deadlock if both ends open
	// with a write).
	if _, err := bw.Write(loadWireMagic[:]); err != nil {
		return err
	}
	if err := bw.WriteByte(loadMsgHello); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(n.driver.cfg.DriverIndex)); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(n.driver.cfg.DriverCount)); err != nil {
		return err
	}
	if err := bw.Flush(); err != nil {
		return err
	}

	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return err
	}
	if magic != loadWireMagic {
		return fmt.Errorf("eb: not a load-coordinator stream (magic %x)", magic)
	}

	n.driver.Start(n.duration)
	n.shadow = make([]uint32, len(n.driver.shards[0].buckets))

	for {
		msg, err := br.ReadByte()
		if err != nil {
			return err
		}
		switch msg {
		case loadMsgFin:
			return nil
		case loadMsgGrant:
			seq, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			endNs, err := binary.ReadUvarint(br)
			if err != nil {
				return err
			}
			n.driver.AdvanceTo(sim.Epoch.Add(time.Duration(endNs)))
			if err := n.sendBatch(bw, seq, int64(endNs)); err != nil {
				return err
			}
		default:
			return fmt.Errorf("eb: unexpected message %q from coordinator", msg)
		}
	}
}

// sendBatch ships the telemetry accumulated since the previous grant as
// varint deltas. Only seconds the window could have touched are scanned.
func (n *DriverNode) sendBatch(bw *bufio.Writer, seq uint64, endNs int64) error {
	d := n.driver
	completed, failed, dropped, checksum := d.Completed(), d.Failed(), d.Dropped(), d.Checksum()

	if err := bw.WriteByte(loadMsgBatch); err != nil {
		return err
	}
	for _, v := range []uint64{
		seq,
		completed - n.sentCompleted,
		failed - n.sentFailed,
		dropped - n.sentDropped,
		checksum - n.sentChecksum, // wrapping delta; the sum reassembles mod 2^64
	} {
		if err := writeUvarint(bw, v); err != nil {
			return err
		}
	}
	n.sentCompleted, n.sentFailed, n.sentDropped, n.sentChecksum = completed, failed, dropped, checksum

	// Completions since the last batch lie in (prevEnd, end]; diff those
	// seconds against the shadow.
	lo := int(n.prevEndNs / int64(time.Second))
	hi := int(endNs / int64(time.Second))
	if hi >= len(n.shadow) {
		hi = len(n.shadow) - 1
	}
	touched := 0
	for sec := lo; sec <= hi; sec++ {
		if n.bucketAt(sec) != n.shadow[sec] {
			touched++
		}
	}
	if err := writeUvarint(bw, uint64(touched)); err != nil {
		return err
	}
	for sec := lo; sec <= hi; sec++ {
		cur := n.bucketAt(sec)
		if cur == n.shadow[sec] {
			continue
		}
		if err := writeUvarint(bw, uint64(sec)); err != nil {
			return err
		}
		if err := writeUvarint(bw, uint64(cur-n.shadow[sec])); err != nil {
			return err
		}
		n.shadow[sec] = cur
	}
	n.prevEndNs = endNs
	return bw.Flush()
}

// bucketAt sums second sec across the node's shards.
func (n *DriverNode) bucketAt(sec int) uint32 {
	var v uint32
	for _, sh := range n.driver.shards {
		v += sh.buckets[sec]
	}
	return v
}

// LoadCoordinator paces a fleet of DriverNodes through a run and merges
// their telemetry. It owns no sessions itself — it is the experiment-side
// process that turns K driver processes into one load figure.
type LoadCoordinator struct {
	duration time.Duration
	window   time.Duration

	completed uint64
	failed    uint64
	dropped   uint64
	checksum  uint64
	buckets   []uint32
}

// NewLoadCoordinator plans a run of the given duration paced in lookahead
// windows (default 100ms when window <= 0).
func NewLoadCoordinator(duration, window time.Duration) *LoadCoordinator {
	if duration <= 0 {
		panic("eb: LoadCoordinator needs a positive duration")
	}
	if window <= 0 {
		window = 100 * time.Millisecond
	}
	return &LoadCoordinator{
		duration: duration,
		window:   window,
		buckets:  make([]uint32, int(duration/time.Second)+2),
	}
}

// Completed returns the fleet's merged completion count.
func (c *LoadCoordinator) Completed() uint64 { return c.completed }

// Failed returns the fleet's merged failure count.
func (c *LoadCoordinator) Failed() uint64 { return c.failed }

// Dropped returns the fleet's merged shed-arrival count.
func (c *LoadCoordinator) Dropped() uint64 { return c.dropped }

// Checksum returns the fleet's merged completion fingerprint — directly
// comparable with ShardedDriver.Checksum of a single-process run.
func (c *LoadCoordinator) Checksum() uint64 { return c.checksum }

// WIPSBuckets returns the fleet's merged per-second completion counts.
func (c *LoadCoordinator) WIPSBuckets() []uint32 { return c.buckets }

// Run executes the whole protocol over established connections, one per
// node, and blocks until the run completes. Connections are left open;
// close them after Run returns. Nodes may be in-process goroutines
// (net.Pipe) or remote processes (TCP/unix sockets) — the coordinator
// cannot tell.
func (c *LoadCoordinator) Run(conns []net.Conn) error {
	if len(conns) == 0 {
		return errors.New("eb: coordinator with no driver nodes")
	}
	type peer struct {
		br *bufio.Reader
		bw *bufio.Writer
	}
	peers := make([]peer, len(conns))
	seen := make([]bool, len(conns))
	for i, conn := range conns {
		peers[i] = peer{br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}
		var magic [4]byte
		if _, err := io.ReadFull(peers[i].br, magic[:]); err != nil {
			return err
		}
		if magic != loadWireMagic {
			return fmt.Errorf("eb: conn %d is not a driver node (magic %x)", i, magic)
		}
		msg, err := peers[i].br.ReadByte()
		if err != nil {
			return err
		}
		if msg != loadMsgHello {
			return fmt.Errorf("eb: conn %d opened with %q, want HELLO", i, msg)
		}
		index, err := binary.ReadUvarint(peers[i].br)
		if err != nil {
			return err
		}
		count, err := binary.ReadUvarint(peers[i].br)
		if err != nil {
			return err
		}
		if count != uint64(len(conns)) {
			return fmt.Errorf("eb: node %d believes in %d drivers, coordinator has %d", index, count, len(conns))
		}
		if index >= uint64(len(conns)) || seen[index] {
			return fmt.Errorf("eb: bad or duplicate driver index %d", index)
		}
		seen[index] = true
	}
	for i := range peers {
		if _, err := peers[i].bw.Write(loadWireMagic[:]); err != nil {
			return err
		}
		if err := peers[i].bw.Flush(); err != nil {
			return err
		}
	}

	durNs := c.duration.Nanoseconds()
	winNs := c.window.Nanoseconds()
	var seq uint64
	for startNs := int64(0); startNs < durNs; seq++ {
		endNs := startNs + winNs
		if endNs > durNs {
			endNs = durNs
		}
		// Grant the window to every node first — they all advance
		// concurrently — then collect every batch before the next grant:
		// the cross-process barrier.
		for i := range peers {
			if err := peers[i].bw.WriteByte(loadMsgGrant); err != nil {
				return err
			}
			if err := writeUvarint(peers[i].bw, seq); err != nil {
				return err
			}
			if err := writeUvarint(peers[i].bw, uint64(endNs)); err != nil {
				return err
			}
			if err := peers[i].bw.Flush(); err != nil {
				return err
			}
		}
		for i := range peers {
			if err := c.readBatch(peers[i].br, seq); err != nil {
				return fmt.Errorf("eb: node on conn %d: %w", i, err)
			}
		}
		startNs = endNs
	}

	for i := range peers {
		if err := peers[i].bw.WriteByte(loadMsgFin); err != nil {
			return err
		}
		if err := peers[i].bw.Flush(); err != nil {
			return err
		}
	}
	return nil
}

// readBatch consumes one BATCH frame and folds it into the merged
// telemetry.
func (c *LoadCoordinator) readBatch(br *bufio.Reader, wantSeq uint64) error {
	msg, err := br.ReadByte()
	if err != nil {
		return err
	}
	if msg != loadMsgBatch {
		return fmt.Errorf("unexpected message %q, want BATCH", msg)
	}
	var fields [5]uint64
	for i := range fields {
		if fields[i], err = binary.ReadUvarint(br); err != nil {
			return err
		}
	}
	if fields[0] != wantSeq {
		return fmt.Errorf("batch for window %d, want %d", fields[0], wantSeq)
	}
	c.completed += fields[1]
	c.failed += fields[2]
	c.dropped += fields[3]
	c.checksum += fields[4]
	touched, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if touched > uint64(len(c.buckets)) {
		return fmt.Errorf("batch touches %d seconds, run has %d", touched, len(c.buckets))
	}
	for j := uint64(0); j < touched; j++ {
		sec, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return err
		}
		if sec >= uint64(len(c.buckets)) {
			return fmt.Errorf("bucket second %d out of range", sec)
		}
		c.buckets[sec] += uint32(delta)
	}
	return nil
}

package eb

import (
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/sqldb"
	"repro/internal/tpcw"
)

func TestMatrixValidAllMixes(t *testing.T) {
	for _, mix := range []Mix{Browsing, Shopping, Ordering} {
		if err := TransitionMatrix(mix).Validate(); err != nil {
			t.Errorf("%v matrix invalid: %v", mix, err)
		}
	}
}

func TestMatrixValidateCatchesErrors(t *testing.T) {
	bad := Matrix{"ghost": {{To: tpcw.CompHome, Weight: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown row accepted")
	}
	bad = Matrix{tpcw.CompHome: {{To: "ghost", Weight: 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("unknown target accepted")
	}
	bad = Matrix{tpcw.CompHome: {{To: tpcw.CompHome, Weight: -1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative weight accepted")
	}
	bad = Matrix{tpcw.CompHome: {{To: tpcw.CompHome, Weight: 0}}}
	if err := bad.Validate(); err == nil {
		t.Error("zero-weight row accepted")
	}
}

func TestMixString(t *testing.T) {
	if Browsing.String() != "browsing" || Shopping.String() != "shopping" ||
		Ordering.String() != "ordering" || Mix(9).String() != "unknown" {
		t.Fatal("Mix.String wrong")
	}
}

func TestUnknownMixPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown mix did not panic")
		}
	}()
	TransitionMatrix(Mix(42))
}

func TestBrowserDeterminism(t *testing.T) {
	mk := func() []string {
		b := NewBrowser(3, 42, TransitionMatrix(Shopping), 100, 50)
		var seq []string
		for i := 0; i < 50; i++ {
			seq = append(seq, b.NextRequest().Interaction)
		}
		return seq
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("browser walk diverged at step %d", i)
		}
	}
}

func TestBrowserStartsAtHome(t *testing.T) {
	b := NewBrowser(0, 1, TransitionMatrix(Shopping), 100, 50)
	req := b.NextRequest()
	if req.Interaction != tpcw.CompHome {
		t.Fatalf("first interaction = %s", req.Interaction)
	}
	if req.SessionID != "eb-0" {
		t.Fatalf("session = %s", req.SessionID)
	}
}

func TestBrowserFailureRestartsAtHome(t *testing.T) {
	b := NewBrowser(0, 1, TransitionMatrix(Shopping), 100, 50)
	b.NextRequest()
	b.Observe(&servlet.Response{Status: servlet.StatusServerError})
	if b.Failures() != 1 {
		t.Fatalf("failures = %d", b.Failures())
	}
	if b.Current() != tpcw.CompHome {
		t.Fatalf("after failure at %s, want home", b.Current())
	}
}

func TestBrowserFollowsPageLinks(t *testing.T) {
	b := NewBrowser(0, 1, TransitionMatrix(Shopping), 100, 50)
	b.NextRequest()
	b.Observe(&servlet.Response{Status: servlet.StatusOK,
		Data: map[string]any{"item_ids": []int64{77}}})
	linked := 0
	for i := 0; i < 200; i++ {
		req := b.NextRequest()
		if id, ok := req.Int64Param("I_ID"); ok && id == 77 {
			linked++
		}
		servlet.ReleaseRequest(req)
	}
	if linked == 0 {
		t.Fatal("browser never followed a page link")
	}
}

func TestBrowserVisitDistribution(t *testing.T) {
	// Under the shopping mix, browse pages dominate and admin pages are
	// rare — the usage-frequency structure Figs. 5-7 rely on.
	b := NewBrowser(0, 123, TransitionMatrix(Shopping), 1000, 100)
	visits := make(map[string]int)
	for i := 0; i < 20000; i++ {
		visits[b.NextRequest().Interaction]++
		b.Observe(&servlet.Response{Status: servlet.StatusOK})
	}
	if visits[tpcw.CompHome] < 2000 {
		t.Fatalf("home visits = %d, want heavy usage", visits[tpcw.CompHome])
	}
	if visits[tpcw.CompProductDetail] < 2000 {
		t.Fatalf("product_detail visits = %d", visits[tpcw.CompProductDetail])
	}
	admin := visits[tpcw.CompAdminConfirm]
	if admin >= visits[tpcw.CompHome]/20 {
		t.Fatalf("admin_confirm = %d vs home = %d; admin should be rare",
			admin, visits[tpcw.CompHome])
	}
	if visits[tpcw.CompBuyConfirm] == 0 {
		t.Fatal("shopping mix never bought anything")
	}
}

func TestOrderingMixBuysMore(t *testing.T) {
	count := func(mix Mix) int {
		b := NewBrowser(0, 5, TransitionMatrix(mix), 1000, 100)
		buys := 0
		for i := 0; i < 20000; i++ {
			if b.NextRequest().Interaction == tpcw.CompBuyConfirm {
				buys++
			}
			b.Observe(&servlet.Response{Status: servlet.StatusOK})
		}
		return buys
	}
	browsing, ordering := count(Browsing), count(Ordering)
	if ordering <= browsing*2 {
		t.Fatalf("ordering mix buys (%d) not clearly above browsing (%d)", ordering, browsing)
	}
}

func newLoadedStack(t *testing.T) (*sim.Engine, *servlet.Container) {
	t.Helper()
	engine := sim.NewEngine()
	weaver := aspect.NewWeaver(engine.Clock())
	db := sqldb.NewDB()
	app, err := tpcw.NewApp(db, weaver, engine.Clock(), tpcw.Scale{Items: 100, Customers: 50, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	heap := jvmheap.New(1<<28, engine.Clock())
	c := servlet.NewContainer(engine, weaver, db, heap, servlet.Config{})
	if err := app.DeployAll(c); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	return engine, c
}

func TestDriverRunsSchedule(t *testing.T) {
	engine, c := newLoadedStack(t)
	d := NewDriver(engine, c, Config{Mix: Shopping, Seed: 9, Items: 100, Customers: 50})
	total := d.Run([]Phase{
		{Duration: 2 * time.Minute, EBs: 5},
		{Duration: 3 * time.Minute, EBs: 10},
	})
	if total != 5*time.Minute {
		t.Fatalf("schedule duration = %v", total)
	}
	if d.Completed() == 0 {
		t.Fatal("no interactions completed")
	}
	// 10 EBs × ~7s think over 5 minutes ≈ 400 requests; anything in the
	// hundreds confirms the population drove load.
	if d.Completed() < 100 {
		t.Fatalf("completed = %d, want hundreds", d.Completed())
	}
	failRatio := float64(d.Failed()) / float64(d.Completed())
	if failRatio > 0.02 {
		t.Fatalf("failure ratio %.3f, want ~0 on a healthy app", failRatio)
	}
	if d.WIPS().Len() == 0 {
		t.Fatal("no WIPS samples recorded")
	}
	if d.ActiveEBs() != 0 {
		t.Fatalf("active EBs after run = %d", d.ActiveEBs())
	}
}

func TestDriverPopulationScalesThroughput(t *testing.T) {
	run := func(ebs int) float64 {
		engine, c := newLoadedStack(t)
		d := NewDriver(engine, c, Config{Mix: Shopping, Seed: 9, Items: 100, Customers: 50})
		d.Run([]Phase{{Duration: 10 * time.Minute, EBs: ebs}})
		return float64(d.Completed())
	}
	small, large := run(5), run(20)
	if large < small*2.5 {
		t.Fatalf("throughput did not scale with population: 5 EBs=%v, 20 EBs=%v", small, large)
	}
}

func TestDriverDeterminism(t *testing.T) {
	run := func() int64 {
		engine, c := newLoadedStack(t)
		d := NewDriver(engine, c, Config{Mix: Shopping, Seed: 77, Items: 100, Customers: 50})
		d.Run([]Phase{{Duration: 5 * time.Minute, EBs: 8}})
		return d.Completed()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("driver runs diverged: %d vs %d", a, b)
	}
}

func TestDriverPopulationChurnAllocFree(t *testing.T) {
	// Regression for the per-phase churn: growing and quiescing the
	// population repeatedly must reuse the active set (formerly a map
	// reallocated every quiesce) and the engine's recycled timer entries.
	engine, c := newLoadedStack(t)
	d := NewDriver(engine, c, Config{Mix: Shopping, Seed: 9, Items: 100, Customers: 50})
	d.Run([]Phase{{Duration: 2 * time.Minute, EBs: 30}})

	churn := func() {
		d.setPopulation(30)
		// Shrink to zero; the staggered start events fire as deactivating
		// no-ops, clearing the active set without submitting requests.
		d.target = 0
		engine.RunFor(2 * d.cfg.ThinkMean)
	}
	churn() // warm: grow the active slice and timer arena to steady state
	if allocs := testing.AllocsPerRun(10, churn); allocs != 0 {
		t.Fatalf("population churn allocated %.1f allocs/cycle, want 0", allocs)
	}
	if d.ActiveEBs() != 0 {
		t.Fatalf("active EBs after churn = %d", d.ActiveEBs())
	}
}

func TestDriverPanicsOnBadSchedule(t *testing.T) {
	engine, c := newLoadedStack(t)
	d := NewDriver(engine, c, Config{})
	for _, phases := range [][]Phase{
		{},
		{{Duration: 0, EBs: 5}},
		{{Duration: time.Minute, EBs: -1}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad schedule %v did not panic", phases)
				}
			}()
			d.Run(phases)
		}()
	}
}

func TestFig3Schedule(t *testing.T) {
	phases := Fig3Schedule()
	if len(phases) != 3 {
		t.Fatalf("phases = %d", len(phases))
	}
	if phases[0].EBs != 50 || phases[1].EBs != 100 || phases[2].EBs != 200 {
		t.Fatalf("populations = %v", phases)
	}
	var total time.Duration
	for _, p := range phases {
		total += p.Duration
	}
	if total != 62*time.Minute {
		t.Fatalf("total = %v, want 62m (2+30+30)", total)
	}
}

package eb

import (
	"fmt"
	"math"
	"time"

	"repro/internal/metrics"
	"repro/internal/servlet"
	"repro/internal/sim"
)

// Phase is one segment of the load schedule: a population held for a
// duration.
type Phase struct {
	Duration time.Duration
	EBs      int
}

// Fig3Schedule returns the paper's dynamic workload: a two-minute warm-up
// at 50 EBs, thirty minutes at 100 EBs and thirty minutes at 200 EBs.
func Fig3Schedule() []Phase {
	return []Phase{
		{Duration: 2 * time.Minute, EBs: 50},
		{Duration: 30 * time.Minute, EBs: 100},
		{Duration: 30 * time.Minute, EBs: 200},
	}
}

// MixedPhase is a Phase that may also change the workload mix — the
// request-type distribution — while it runs. A shift in mix with a steady
// population is the classic false-alarm trap for static aging detectors,
// which is exactly what the detect package's shift guard exists for.
type MixedPhase struct {
	Duration time.Duration
	EBs      int
	// Mix selects the transition matrix for requests issued during the
	// phase.
	Mix Mix
}

// ProfileSchedule discretises a load profile into a phase schedule: one
// phase per merged profile step, with the level rounded to a browser
// population.
func ProfileSchedule(p sim.LoadProfile, total, step time.Duration) []Phase {
	steps := sim.DiscretizeProfile(p, total, step)
	out := make([]Phase, len(steps))
	for i, st := range steps {
		ebs := int(math.Round(st.Level))
		if ebs < 0 {
			ebs = 0
		}
		out[i] = Phase{Duration: st.Duration, EBs: ebs}
	}
	return out
}

// Config parameterises a Driver.
type Config struct {
	// Mix selects the transition matrix (Shopping in all experiments).
	Mix Mix
	// Seed derives every browser's random stream.
	Seed uint64
	// ThinkMean is the mean think time (default 7s, the TPC-W value).
	ThinkMean time.Duration
	// ThinkCap truncates think time (default 70s).
	ThinkCap time.Duration
	// Items and Customers mirror the database scale for parameter
	// generation.
	Items     int
	Customers int
}

func (c Config) withDefaults() Config {
	if c.ThinkMean <= 0 {
		c.ThinkMean = 7 * time.Second
	}
	if c.ThinkCap <= 0 {
		c.ThinkCap = 70 * time.Second
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Items <= 0 {
		c.Items = 1000
	}
	if c.Customers <= 0 {
		c.Customers = 1440
	}
	return c
}

// Target is the surface the driver submits interactions to: a single
// servlet container in the paper's one-node testbed, or a cluster
// balancer fronting N containers. *servlet.Container satisfies it
// directly.
type Target interface {
	// Submit enqueues one request; done runs when it completes.
	Submit(req *servlet.Request, done servlet.Completion)
	// Throughput reports the recent completion rate (requests/second),
	// sampled into the WIPS series.
	Throughput() float64
}

// Driver runs a population of emulated browsers against a target on the
// discrete-event engine, following a phase schedule. The number of
// concurrent EBs is exactly the phase population, as the TPC-W
// specification requires.
type Driver struct {
	engine  *sim.Engine
	backend Target
	cfg     Config
	matrix  Matrix

	target      int
	browsers    []*Browser
	active      []bool // indexed by browser id; reused across phases
	activeCount int

	completed metrics.Counter
	failed    metrics.Counter
	wips      *metrics.Series
}

// NewDriver creates a driver over a target (a container or a balancer).
func NewDriver(engine *sim.Engine, target Target, cfg Config) *Driver {
	cfg = cfg.withDefaults()
	m := TransitionMatrix(cfg.Mix)
	if err := m.Validate(); err != nil {
		panic(err)
	}
	return &Driver{
		engine:  engine,
		backend: target,
		cfg:     cfg,
		matrix:  m,
		wips:    metrics.NewSeries("wips"),
	}
}

// WIPS returns the web-interactions-per-second series sampled during Run.
func (d *Driver) WIPS() *metrics.Series { return d.wips }

// Completed returns the total completed interactions.
func (d *Driver) Completed() int64 { return d.completed.Value() }

// Failed returns the total failed interactions.
func (d *Driver) Failed() int64 { return d.failed.Value() }

// ActiveEBs returns the current concurrent browser population.
func (d *Driver) ActiveEBs() int { return d.activeCount }

// SetMix swaps the workload mix at runtime: requests issued after the
// call follow the new transition matrix. Live browsers pick it up on
// their next transition, so a mid-run mix shift is seamless — no session
// is restarted.
func (d *Driver) SetMix(mix Mix) {
	m := TransitionMatrix(mix)
	if err := m.Validate(); err != nil {
		panic(err)
	}
	d.matrix = m
	for _, b := range d.browsers {
		b.SetMatrix(m)
	}
}

// Run schedules the phase transitions and a 30-second WIPS sampler, then
// runs the engine until the schedule ends. It returns the total schedule
// duration.
func (d *Driver) Run(phases []Phase) time.Duration {
	mixed := make([]MixedPhase, len(phases))
	for i, ph := range phases {
		mixed[i] = MixedPhase{Duration: ph.Duration, EBs: ph.EBs, Mix: d.cfg.Mix}
	}
	return d.RunMixed(mixed)
}

// RunMixed is Run for schedules that also shift the workload mix between
// phases (the workload-shift scenarios of the adaptive-detection
// literature).
func (d *Driver) RunMixed(phases []MixedPhase) time.Duration {
	if len(phases) == 0 {
		panic("eb: empty phase schedule")
	}
	var offset time.Duration
	for _, ph := range phases {
		if ph.Duration <= 0 || ph.EBs < 0 {
			panic(fmt.Sprintf("eb: bad phase %+v", ph))
		}
		ebs, mix := ph.EBs, ph.Mix
		at := offset
		d.engine.Schedule(d.engine.Now().Add(at), func(time.Time) {
			d.SetMix(mix)
			d.setPopulation(ebs)
		})
		offset += ph.Duration
	}
	stopSampler := d.engine.Every(30*time.Second, func(now time.Time) {
		d.wips.Append(now, d.backend.Throughput())
	})
	defer stopSampler()

	end := d.engine.Now().Add(offset)
	d.engine.RunUntil(end)
	// Quiesce: browsers frozen mid-think will see the zero target if the
	// engine ever resumes, and the driver reports an empty population. The
	// active slice is cleared in place so repeated schedules reuse it.
	d.target = 0
	for i := range d.active {
		d.active[i] = false
	}
	d.activeCount = 0
	return offset
}

// setPopulation grows or shrinks the live browser set. Growth starts new
// browser loops with a small random stagger; shrinkage lets excess
// browsers finish their in-flight request and then stop.
func (d *Driver) setPopulation(n int) {
	d.target = n
	for len(d.active) < n {
		d.active = append(d.active, false)
	}
	for id := 0; id < n; id++ {
		if d.active[id] {
			continue
		}
		d.active[id] = true
		d.activeCount++
		b := d.browserFor(id)
		// Stagger session starts across one mean think time. The browser's
		// pre-bound step callback keeps re-activation closure-free.
		delay := time.Duration(b.rng.Float64() * float64(d.cfg.ThinkMean))
		d.engine.ScheduleAfter(delay, b.stepFn)
	}
}

func (d *Driver) browserFor(id int) *Browser {
	for id >= len(d.browsers) {
		b := NewBrowser(len(d.browsers), d.cfg.Seed, d.matrix, d.cfg.Items, d.cfg.Customers)
		// The completion and think-time callbacks are bound once per
		// browser: the issue loop then schedules every subsequent request
		// through them without allocating closures per interaction.
		b.stepFn = func(time.Time) { d.step(b) }
		b.done = func(_ *servlet.Request, resp *servlet.Response) {
			d.completed.Inc()
			if !resp.OK() {
				d.failed.Inc()
			}
			b.Observe(resp)
			think := time.Duration(b.rng.TruncExp(
				d.cfg.ThinkMean.Seconds(), d.cfg.ThinkCap.Seconds()) * float64(time.Second))
			d.engine.ScheduleAfter(think, b.stepFn)
		}
		d.browsers = append(d.browsers, b)
	}
	return d.browsers[id]
}

// Matrix returns the driver's current transition matrix.
func (d *Driver) Matrix() Matrix { return d.matrix }

// step issues one request for browser b and schedules the next one after
// the think time (through the browser's pre-bound completion callback),
// unless the population shrank below b's id.
func (d *Driver) step(b *Browser) {
	if b.ID() >= d.target {
		if id := b.ID(); id < len(d.active) && d.active[id] {
			d.active[id] = false
			d.activeCount--
		}
		return
	}
	d.backend.Submit(b.NextRequest(), b.done)
}

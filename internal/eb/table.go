package eb

import (
	"strconv"

	"repro/internal/servlet"
	"repro/internal/sim"
	"repro/internal/tpcw"
)

// This file holds the million-session representation of browser state: a
// struct-of-arrays session table over a compiled (integer-indexed)
// transition matrix. A *Browser is ~200 bytes of its own fields plus a
// *Stream (two heap objects), a *Zipf (an O(items) zetan sum computed per
// browser) and a per-browser session-id string — fine for the paper's 200
// EBs, untenable for the load tier's 10^6. A table slot is ~60 bytes flat
// across a handful of parallel arrays, draws from an 8-byte value-type
// Rand64, and shares one ZipfTable and one uname vocabulary across every
// session, so populating a million sessions costs megabytes and arriving
// sessions (open loop) cost zero allocations.
//
// Behavioural contract: slots walk the same fourteen-interaction graph
// with the same parameter fabrication rules as Browser.paramsInto —
// Zipf-skewed item picks with page-link affinity, subject and search-term
// vocabularies, an assigned customer identity. Sequences are a pure
// function of (seed, session id), never of shard count or arrival order,
// which is what the shards=1 vs shards=N golden test pins.

// interCount is the number of TPC-W interactions (indices into
// tpcw.Interactions).
const interCount = 14

// interIndex maps interaction names to their stable index.
var interIndex = func() map[string]uint8 {
	m := make(map[string]uint8, len(tpcw.Interactions))
	for i, name := range tpcw.Interactions {
		m[name] = uint8(i)
	}
	if len(m) != interCount {
		panic("eb: interaction count drifted")
	}
	return m
}()

// compiledRow is one matrix row in integer form: cumulative weights over
// target indices, so a transition is one uniform draw and a short scan.
type compiledRow struct {
	to  []uint8
	cum []float64 // cumulative; cum[len-1] is the row total
}

// compiledMatrix is a Matrix resolved to interaction indices, built once
// per mix and shared by every session.
type compiledMatrix struct {
	rows [interCount]compiledRow
}

// compileMatrix validates and lowers a transition matrix. Rows absent from
// the source matrix stay empty; transitions out of them fall back to home,
// matching Browser.pickNext.
func compileMatrix(m Matrix) *compiledMatrix {
	if err := m.Validate(); err != nil {
		panic(err)
	}
	cm := &compiledMatrix{}
	for from, row := range m {
		fi := interIndex[from]
		cr := compiledRow{
			to:  make([]uint8, len(row)),
			cum: make([]float64, len(row)),
		}
		var total float64
		for i, tr := range row {
			cr.to[i] = interIndex[tr.To]
			total += tr.Weight
			cr.cum[i] = total
		}
		cm.rows[fi] = cr
	}
	return cm
}

// next picks the successor of interaction cur using one uniform draw.
func (cm *compiledMatrix) next(cur uint8, u float64) uint8 {
	row := &cm.rows[cur]
	if len(row.to) == 0 {
		return interIndex[tpcw.CompHome]
	}
	x := u * row.cum[len(row.cum)-1]
	for i, c := range row.cum {
		if x < c {
			return row.to[i]
		}
	}
	return row.to[len(row.to)-1]
}

// maxPageLinks bounds the page links a slot remembers (Browser keeps the
// whole slice; six covers every response the tpcw servlets emit and keeps
// the array inline).
const maxPageLinks = 6

// sessionTable is the struct-of-arrays browser state for one shard's
// sessions. Index = slot. In closed-loop mode a slot is one session for
// the whole run; in open-loop mode slots are recycled across arriving
// sessions (the slot's identity fields are re-derived from the new
// session's id, so reuse never couples two sessions' draws).
type sessionTable struct {
	// Immutable per-table collaborators, shared across slots.
	zipf   *sim.ZipfTable
	matrix *compiledMatrix
	unames []string // uname vocabulary, indexed by customer number

	// Per-slot state, parallel arrays.
	id        []int64 // global session id; -1 when the slot is idle
	rng       []sim.Rand64
	current   []uint8
	issued    []uint32
	failures  []uint32
	unameIdx  []int32
	lastItems [][maxPageLinks]int64
	lastN     []uint8

	// sessionID strings are built once at construction and reused across
	// slot generations: the wire/container session key tracks the slot, not
	// the logical session. (A recycled slot therefore reuses the
	// server-side HTTP session; see docs/architecture.md's load-tier
	// notes.) Building them up front keeps bind — which runs on the
	// open-loop arrival path — allocation-free.
	sessionID []string

	seed uint64
}

// newSessionTable sizes a table for capacity slots.
func newSessionTable(capacity int, seed uint64, zipf *sim.ZipfTable, matrix *compiledMatrix, unames []string) *sessionTable {
	tb := &sessionTable{
		zipf:      zipf,
		matrix:    matrix,
		unames:    unames,
		seed:      seed,
		id:        make([]int64, capacity),
		rng:       make([]sim.Rand64, capacity),
		current:   make([]uint8, capacity),
		issued:    make([]uint32, capacity),
		failures:  make([]uint32, capacity),
		unameIdx:  make([]int32, capacity),
		lastItems: make([][maxPageLinks]int64, capacity),
		lastN:     make([]uint8, capacity),
		sessionID: make([]string, capacity),
	}
	for i := range tb.id {
		tb.id[i] = -1
		tb.sessionID[i] = "ebs-" + strconv.Itoa(i)
	}
	return tb
}

// capacity returns the slot count.
func (tb *sessionTable) capacity() int { return len(tb.id) }

// bind assigns a session id to a slot, deriving its stream and identity.
// All state a session draws from is a function of (seed, id) alone.
func (tb *sessionTable) bind(slot int, id int64) {
	tb.id[slot] = id
	tb.rng[slot] = sim.DeriveRand64(tb.seed, uint64(id)+1)
	tb.current[slot] = interIndex[tpcw.CompHome]
	tb.issued[slot] = 0
	tb.failures[slot] = 0
	tb.unameIdx[slot] = int32(id % int64(len(tb.unames)))
	tb.lastN[slot] = 0
}

// release frees a slot (open-loop session end).
func (tb *sessionTable) release(slot int) { tb.id[slot] = -1 }

// idle reports whether a slot is unbound.
func (tb *sessionTable) idle(slot int) bool { return tb.id[slot] < 0 }

// think draws the slot's next think time in seconds (TPC-W truncated
// exponential).
func (tb *sessionTable) think(slot int, mean, cap float64) float64 {
	return tb.rng[slot].TruncExp(mean, cap)
}

// buildRequest advances the slot's walk and fabricates the request,
// borrowing from the servlet pool — the container (or ModelTarget)
// recycles it after completion. Mirrors Browser.NextRequest + paramsInto.
func (tb *sessionTable) buildRequest(slot int) *servlet.Request {
	rng := &tb.rng[slot]
	cur := tb.current[slot]
	if tb.issued[slot] > 0 {
		cur = tb.matrix.next(cur, rng.Float64())
		tb.current[slot] = cur
	}
	tb.issued[slot]++

	req := servlet.AcquireRequest()
	name := tpcw.Interactions[cur]
	req.Interaction = name
	req.SessionID = tb.sessionID[slot]

	switch name {
	case tpcw.CompHome, tpcw.CompProductDetail, tpcw.CompAdminRequest, tpcw.CompAdminConfirm:
		req.SetInt64Param("I_ID", tb.pickItem(slot))
	case tpcw.CompNewProducts, tpcw.CompBestSellers:
		req.SetParam("SUBJECT", tpcw.Subjects[rng.IntN(len(tpcw.Subjects))])
	case tpcw.CompSearchResults:
		if rng.Float64() < 0.8 {
			req.SetParam("FIELD", "title")
			req.SetParam("TERM", searchTerms[rng.IntN(len(searchTerms))])
		} else {
			req.SetParam("FIELD", "author")
			req.SetParam("TERM", authorTerms[rng.IntN(20)])
		}
	case tpcw.CompShoppingCart:
		req.SetParam("ACTION", "add")
		req.SetInt64Param("I_ID", tb.pickItem(slot))
		req.SetInt64Param("QTY", 1+int64(rng.IntN(3)))
	case tpcw.CompBuyRequest:
		if rng.Float64() < 0.8 {
			req.SetParam("UNAME", tb.unames[tb.unameIdx[slot]])
		}
	case tpcw.CompOrderDisplay:
		req.SetParam("UNAME", tb.unames[tb.unameIdx[slot]])
	}
	return req
}

// pickItem prefers a link from the last page, otherwise draws a
// Zipf-popular item — Browser.pickItem over table state.
func (tb *sessionTable) pickItem(slot int) int64 {
	rng := &tb.rng[slot]
	if n := int(tb.lastN[slot]); n > 0 && rng.Float64() < 0.7 {
		return tb.lastItems[slot][rng.IntN(n)]
	}
	return int64(tb.zipf.Next(rng.Float64()))
}

// observe feeds a response back: failures restart the walk at home, page
// links are copied inline for pickItem affinity.
func (tb *sessionTable) observe(slot int, resp *servlet.Response) {
	if !resp.OK() {
		tb.failures[slot]++
		tb.current[slot] = interIndex[tpcw.CompHome]
		return
	}
	if ids := resp.ItemIDs(); len(ids) > 0 {
		n := len(ids)
		if n > maxPageLinks {
			n = maxPageLinks
		}
		copy(tb.lastItems[slot][:n], ids[:n])
		tb.lastN[slot] = uint8(n)
	}
}

// unameVocabulary precomputes the customer identity strings shared by all
// sessions (Browser formats one per browser).
func unameVocabulary(customers int) []string {
	out := make([]string, customers)
	for i := range out {
		out[i] = tpcw.Uname(i + 1)
	}
	return out
}

package eb

import (
	"net"
	"testing"
	"time"
)

// runFleet drives K wire-connected driver nodes under one coordinator
// over in-memory pipes and returns the coordinator with merged telemetry.
func runFleet(t *testing.T, base ShardedConfig, k int, duration time.Duration) *LoadCoordinator {
	t.Helper()
	coord := NewLoadCoordinator(duration, 100*time.Millisecond)
	conns := make([]net.Conn, k)
	errCh := make(chan error, k)
	for i := 0; i < k; i++ {
		cfg := base
		cfg.DriverIndex = i
		cfg.DriverCount = k
		// Vary shard counts across nodes: a fleet need not be homogeneous,
		// and the merged result must not care.
		cfg.Shards = 1 + i%3
		node := NewDriverNode(cfg, duration, nil)
		local, remote := net.Pipe()
		conns[i] = local
		go func() { errCh <- node.Serve(remote) }()
	}
	if err := coord.Run(conns); err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	for i := 0; i < k; i++ {
		if err := <-errCh; err != nil {
			t.Fatalf("node: %v", err)
		}
	}
	for _, conn := range conns {
		conn.Close()
	}
	return coord
}

// TestDriverWireKParity is the multi-process acceptance bar: splitting
// the load over K wire-paced driver processes must reproduce the
// single-process run exactly — counters, per-second WIPS buckets and the
// completion checksum all merge to the same values for K = 1, 2, 5.
func TestDriverWireKParity(t *testing.T) {
	const duration = 2 * time.Minute
	base := ShardedConfig{Seed: 42, Mix: Shopping, Sessions: 120}

	ref := NewShardedDriver(base, nil)
	ref.Run(duration, nil)
	if ref.Completed() == 0 {
		t.Fatal("reference run completed nothing")
	}
	refBuckets := ref.WIPSBuckets()

	for _, k := range []int{1, 2, 5} {
		coord := runFleet(t, base, k, duration)
		if coord.Completed() != ref.Completed() || coord.Failed() != ref.Failed() {
			t.Fatalf("K=%d: completed/failed %d/%d, want %d/%d",
				k, coord.Completed(), coord.Failed(), ref.Completed(), ref.Failed())
		}
		if coord.Checksum() != ref.Checksum() {
			t.Fatalf("K=%d: checksum %#x, want %#x", k, coord.Checksum(), ref.Checksum())
		}
		cb := coord.WIPSBuckets()
		if len(cb) != len(refBuckets) {
			t.Fatalf("K=%d: %d buckets, want %d", k, len(cb), len(refBuckets))
		}
		for i := range cb {
			if cb[i] != refBuckets[i] {
				t.Fatalf("K=%d: bucket %d = %d, want %d", k, i, cb[i], refBuckets[i])
			}
		}
	}
}

// TestDriverWireOpenLoopParity runs the parity check under Poisson
// arrivals: lane ownership (lane mod K) must partition the arrival
// process without changing it.
func TestDriverWireOpenLoopParity(t *testing.T) {
	const duration = 90 * time.Second
	base := ShardedConfig{
		Seed:              7,
		Mix:               Browsing,
		Arrival:           OpenLoop,
		Rate:              40,
		MeanSessionLength: 10,
		MaxSessions:       8192,
	}
	ref := NewShardedDriver(base, nil)
	ref.Run(duration, nil)
	if ref.Dropped() != 0 {
		t.Fatalf("reference shed %d arrivals", ref.Dropped())
	}
	coord := runFleet(t, base, 3, duration)
	if coord.Dropped() != 0 {
		t.Fatalf("fleet shed %d arrivals", coord.Dropped())
	}
	if coord.Completed() != ref.Completed() {
		t.Fatalf("fleet completed %d, want %d", coord.Completed(), ref.Completed())
	}
	if coord.Checksum() != ref.Checksum() {
		t.Fatalf("fleet checksum %#x, want %#x", coord.Checksum(), ref.Checksum())
	}
}

// TestDriverWireSaturatedParity runs the K-parity check in the shedding
// regime: lane-local admission budgets make even the dropped arrivals
// identical between one process and a fleet.
func TestDriverWireSaturatedParity(t *testing.T) {
	const duration = 90 * time.Second
	base := ShardedConfig{
		Seed:              11,
		Mix:               Shopping,
		Arrival:           OpenLoop,
		Rate:              2000,
		MeanSessionLength: 20,
		MaxSessions:       4096,
	}
	ref := NewShardedDriver(base, nil)
	ref.Run(duration, nil)
	if ref.Dropped() == 0 {
		t.Fatal("reference did not saturate")
	}
	coord := runFleet(t, base, 3, duration)
	if coord.Dropped() != ref.Dropped() || coord.Completed() != ref.Completed() {
		t.Fatalf("fleet completed/dropped %d/%d, want %d/%d",
			coord.Completed(), coord.Dropped(), ref.Completed(), ref.Dropped())
	}
	if coord.Checksum() != ref.Checksum() {
		t.Fatalf("fleet checksum %#x, want %#x", coord.Checksum(), ref.Checksum())
	}
}

// TestDriverWireRejectsStrangers pins the fail-loud behaviour on protocol
// mismatch: a coordinator fed a non-node stream errors instead of
// wedging, as does a node fed a non-coordinator stream.
func TestDriverWireRejectsStrangers(t *testing.T) {
	coord := NewLoadCoordinator(time.Second, 0)
	local, remote := net.Pipe()
	go func() {
		remote.Write([]byte("GET / HTTP/1.1\r\n"))
	}()
	if err := coord.Run([]net.Conn{local}); err == nil {
		t.Fatal("coordinator accepted a stranger")
	}
	local.Close()
	remote.Close()

	node := NewDriverNode(ShardedConfig{Seed: 1, Sessions: 4}, time.Second, nil)
	local2, remote2 := net.Pipe()
	done := make(chan error, 1)
	go func() { done <- node.Serve(remote2) }()
	buf := make([]byte, 64)
	local2.Read(buf) // swallow the HELLO
	local2.Write([]byte("nope"))
	if err := <-done; err == nil {
		t.Fatal("node accepted a stranger")
	}
	local2.Close()
	remote2.Close()
}

// TestDriverWireMismatchedFleetSize pins the HELLO validation: a node
// configured for a different fleet size is refused at connect time.
func TestDriverWireMismatchedFleetSize(t *testing.T) {
	coord := NewLoadCoordinator(time.Second, 0)
	node := NewDriverNode(ShardedConfig{Seed: 1, Sessions: 4, DriverIndex: 0, DriverCount: 2}, time.Second, nil)
	local, remote := net.Pipe()
	go func() { _ = node.Serve(remote) }()
	if err := coord.Run([]net.Conn{local}); err == nil {
		t.Fatal("coordinator accepted a node from a differently-sized fleet")
	}
	local.Close()
	remote.Close()
}

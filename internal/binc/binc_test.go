package binc

import (
	"math"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	var b []byte
	b = AppendUvarint(b, 0)
	b = AppendUvarint(b, 1<<40)
	b = AppendVarint(b, -12345)
	b = AppendVarint(b, math.MaxInt64)
	b = AppendFloat(b, math.Pi)
	b = AppendFloat(b, math.NaN())
	b = AppendString(b, "component.Ünïcode")
	b = AppendString(b, "")
	b = AppendBytes(b, []byte{0, 1, 2})
	b = AppendBool(b, true)
	b = AppendBool(b, false)

	p := NewParser(b)
	if got := p.Uvarint(); got != 0 {
		t.Errorf("uvarint = %d", got)
	}
	if got := p.Uvarint(); got != 1<<40 {
		t.Errorf("uvarint = %d", got)
	}
	if got := p.Varint(); got != -12345 {
		t.Errorf("varint = %d", got)
	}
	if got := p.Varint(); got != math.MaxInt64 {
		t.Errorf("varint = %d", got)
	}
	if got := p.Float(); got != math.Pi {
		t.Errorf("float = %v", got)
	}
	if got := p.Float(); !math.IsNaN(got) {
		t.Errorf("float = %v, want NaN", got)
	}
	if got := p.String(64); got != "component.Ünïcode" {
		t.Errorf("string = %q", got)
	}
	if got := p.String(64); got != "" {
		t.Errorf("string = %q", got)
	}
	if got := p.Bytes(8); len(got) != 3 || got[2] != 2 {
		t.Errorf("bytes = %v", got)
	}
	if !p.Bool() || p.Bool() {
		t.Error("bool round trip failed")
	}
	if err := p.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestFloatBitExact(t *testing.T) {
	// Snapshot parity depends on floats surviving bit-for-bit, including
	// negative zero and NaN payloads.
	for _, bits := range []uint64{0, 1, 1 << 63, 0x7ff8000000000001, 0xfff0000000000000} {
		b := AppendFloat(nil, math.Float64frombits(bits))
		p := NewParser(b)
		if got := math.Float64bits(p.Float()); got != bits {
			t.Errorf("bits %#x round-tripped to %#x", bits, got)
		}
	}
}

func TestStickyError(t *testing.T) {
	p := NewParser([]byte{0x80}) // truncated uvarint
	if p.Uvarint() != 0 || p.Err() == nil {
		t.Fatal("want sticky error after bad uvarint")
	}
	// Every subsequent read is a zero value, same error.
	first := p.Err()
	if p.Float() != 0 || p.Bool() || p.String(8) != "" || p.Err() != first {
		t.Error("sticky error not preserved")
	}
	if p.Done() != first {
		t.Error("Done must surface the sticky error")
	}
}

func TestCountBound(t *testing.T) {
	b := AppendUvarint(nil, 1<<32)
	if NewParser(b).Count(1024) != 0 {
		t.Error("oversized count must fail, not allocate")
	}
	p := NewParser(b)
	p.Count(1024)
	if p.Err() == nil {
		t.Error("oversized count must set the error")
	}
}

func TestNonMinimalVarintRejected(t *testing.T) {
	// 0x84 0x00 decodes to 4 under encoding/binary but is not the
	// minimal encoding; canonical snapshots must reject it.
	p := NewParser([]byte{0x84, 0x00})
	if p.Uvarint() != 0 || p.Err() == nil {
		t.Error("padded uvarint must be rejected")
	}
	p = NewParser([]byte{0x84, 0x00})
	if p.Varint() != 0 || p.Err() == nil {
		t.Error("padded varint must be rejected")
	}
	// The minimal encodings still round-trip.
	p = NewParser(AppendVarint(AppendUvarint(nil, 4), -2))
	if p.Uvarint() != 4 || p.Varint() != -2 || p.Done() != nil {
		t.Error("minimal encodings must still parse")
	}
}

func TestBadBool(t *testing.T) {
	p := NewParser([]byte{2})
	if p.Bool() || p.Err() == nil {
		t.Error("bool byte 2 must be rejected (canonical encoding)")
	}
}

func TestTrailingBytes(t *testing.T) {
	b := AppendBool(nil, true)
	b = append(b, 0xff)
	p := NewParser(b)
	p.Bool()
	if p.Done() == nil {
		t.Error("trailing bytes must fail Done")
	}
}

func TestStringTooLong(t *testing.T) {
	b := AppendString(nil, "abcdefgh")
	p := NewParser(b)
	if p.String(4) != "" || p.Err() == nil {
		t.Error("over-limit string must fail")
	}
}

// Package binc holds the low-level binary snapshot codec shared by the
// durable-state surfaces (detect, cluster, rejuv): append-style writers
// over varints/floats/strings and a bounds-checked sticky-error Parser.
// It mirrors the idiom of the cluster wire codec's byteParser but lives
// below detect in the import graph, because detect cannot import cluster.
//
// Encoding conventions, shared by every snapshot format built on top:
//
//   - unsigned counts and sizes are uvarints;
//   - signed integers (sequence numbers, epochs, UnixNano timestamps,
//     clock offsets) are zigzag varints;
//   - float64 values are the 8 raw IEEE-754 bits, little-endian, so a
//     snapshot/restore round trip is bit-exact (NaN payloads included);
//   - strings are uvarint length + raw bytes;
//   - booleans are one byte, 0 or 1 (any other value is a parse error);
//   - maps are serialised as a count followed by key-sorted entries, so
//     the encoding of a given state is canonical: snapshotting a
//     restored object yields byte-identical output.
//
// The Parser is sticky: the first failure latches and every subsequent
// read returns a zero value, so restore code can decode a whole struct
// linearly and check Err once. Length and count reads are capped by the
// caller (Count, String, Bytes), so a fuzzed or corrupt snapshot can
// never drive an allocation beyond the declared bound.
package binc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// AppendUvarint appends u as a uvarint.
func AppendUvarint(dst []byte, u uint64) []byte {
	return binary.AppendUvarint(dst, u)
}

// AppendVarint appends v as a zigzag varint.
func AppendVarint(dst []byte, v int64) []byte {
	return binary.AppendVarint(dst, v)
}

// AppendFloat appends the 8 raw IEEE-754 bits of f, little-endian.
func AppendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

// AppendString appends a uvarint length followed by the string bytes.
func AppendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBytes appends a uvarint length followed by the raw bytes.
func AppendBytes(dst, b []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

// AppendBool appends one byte, 1 for true and 0 for false.
func AppendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

// Parser decodes a snapshot buffer with sticky-error semantics: after the
// first failure every read returns the zero value and Err reports the
// original failure. Not safe for concurrent use.
type Parser struct {
	b   []byte
	i   int
	err error
}

// NewParser returns a parser over b. The parser borrows b; Bytes results
// alias it.
func NewParser(b []byte) *Parser { return &Parser{b: b} }

// Err returns the first decode failure, nil while none has occurred.
func (p *Parser) Err() error { return p.err }

// Remaining returns the number of unconsumed bytes.
func (p *Parser) Remaining() int { return len(p.b) - p.i }

func (p *Parser) fail(format string, args ...any) {
	if p.err == nil {
		p.err = fmt.Errorf("binc: "+format+" at offset %d", append(args, p.i)...)
	}
}

// uvarintLen returns the byte length of v's minimal uvarint encoding.
func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// Uvarint reads one uvarint. Non-minimal encodings (continuation-padded,
// e.g. 0x84 0x00 for 4) are rejected: every value has exactly one valid
// encoding, which is what makes snapshot formats canonical.
func (p *Parser) Uvarint() uint64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Uvarint(p.b[p.i:])
	if n <= 0 {
		p.fail("bad uvarint")
		return 0
	}
	if n != uvarintLen(v) {
		p.fail("non-minimal uvarint")
		return 0
	}
	p.i += n
	return v
}

// Varint reads one zigzag varint, rejecting non-minimal encodings like
// Uvarint.
func (p *Parser) Varint() int64 {
	if p.err != nil {
		return 0
	}
	v, n := binary.Varint(p.b[p.i:])
	if n <= 0 {
		p.fail("bad varint")
		return 0
	}
	if n != uvarintLen(uint64(v)<<1^uint64(v>>63)) {
		p.fail("non-minimal varint")
		return 0
	}
	p.i += n
	return v
}

// Float reads one little-endian float64.
func (p *Parser) Float() float64 {
	if p.err != nil {
		return 0
	}
	if p.i+8 > len(p.b) {
		p.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(p.b[p.i:]))
	p.i += 8
	return v
}

// Byte reads one raw byte.
func (p *Parser) Byte() byte {
	if p.err != nil {
		return 0
	}
	if p.i >= len(p.b) {
		p.fail("truncated byte")
		return 0
	}
	v := p.b[p.i]
	p.i++
	return v
}

// Bool reads one boolean byte; values other than 0 and 1 are an error,
// so every state has exactly one valid encoding.
func (p *Parser) Bool() bool {
	v := p.Byte()
	if p.err != nil {
		return false
	}
	if v > 1 {
		p.fail("bad bool %d", v)
		return false
	}
	return v == 1
}

// Count reads a uvarint bounded by max, for element counts that size an
// allocation. A count above max fails the parse instead of allocating.
func (p *Parser) Count(max int) int {
	v := p.Uvarint()
	if p.err != nil {
		return 0
	}
	if v > uint64(max) {
		p.fail("count %d exceeds bound %d", v, max)
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string of at most max bytes.
func (p *Parser) String(max int) string {
	return string(p.Bytes(max))
}

// Bytes reads a length-prefixed byte run of at most max bytes. The result
// aliases the parser's buffer.
func (p *Parser) Bytes(max int) []byte {
	n := p.Count(max)
	if p.err != nil {
		return nil
	}
	if p.i+n > len(p.b) {
		p.fail("truncated %d-byte run", n)
		return nil
	}
	v := p.b[p.i : p.i+n]
	p.i += n
	return v
}

// Done returns the sticky error if any, and otherwise fails when
// unconsumed bytes remain — a snapshot must be read exactly.
func (p *Parser) Done() error {
	if p.err != nil {
		return p.err
	}
	if p.i != len(p.b) {
		return fmt.Errorf("binc: %d trailing bytes after offset %d", len(p.b)-p.i, p.i)
	}
	return nil
}

// ErrVersion is wrapped by snapshot decoders rejecting an unknown format
// version, so callers can distinguish incompatibility from corruption.
var ErrVersion = errors.New("unsupported snapshot version")

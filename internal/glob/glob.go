// Package glob implements the '*' wildcard matching shared by JMX object
// name patterns and aspect pointcut expressions.
package glob

// Match reports whether s matches pattern, where '*' matches any (possibly
// empty) substring and every other byte matches itself.
func Match(pattern, s string) bool {
	px, sx := 0, 0
	star, mark := -1, 0
	for sx < len(s) {
		switch {
		case px < len(pattern) && pattern[px] == s[sx]:
			px++
			sx++
		case px < len(pattern) && pattern[px] == '*':
			star = px
			mark = sx
			px++
		case star != -1:
			px = star + 1
			mark++
			sx = mark
		default:
			return false
		}
	}
	for px < len(pattern) && pattern[px] == '*' {
		px++
	}
	return px == len(pattern)
}

// IsPattern reports whether pattern contains a wildcard.
func IsPattern(pattern string) bool {
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '*' {
			return true
		}
	}
	return false
}

package glob

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"*", "", true},
		{"*", "x", true},
		{"", "", true},
		{"", "x", false},
		{"abc", "abc", true},
		{"abc", "abd", false},
		{"a*c", "abc", true},
		{"a*c", "ac", true},
		{"a*c", "abd", false},
		{"*suffix", "hassuffix", true},
		{"prefix*", "prefixhas", true},
		{"*mid*", "XmidY", true},
		{"a**b", "aXb", true},
		{"tpcw.*", "tpcw.home", true},
		{"tpcw.*", "other.home", false},
		{"*.Service", "tpcw.home.Service", true},
	}
	for _, tc := range cases {
		if got := Match(tc.pat, tc.s); got != tc.want {
			t.Errorf("Match(%q,%q) = %v, want %v", tc.pat, tc.s, got, tc.want)
		}
	}
}

func TestIsPattern(t *testing.T) {
	if IsPattern("abc") || !IsPattern("a*c") {
		t.Fatal("IsPattern misclassified")
	}
}

func TestExactAlwaysMatchesSelf(t *testing.T) {
	f := func(s string) bool {
		if strings.Contains(s, "*") {
			return true
		}
		return Match(s, s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestStarMatchesEverything(t *testing.T) {
	f := func(s string) bool { return Match("*", s) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPrefixProperty(t *testing.T) {
	f := func(prefix, rest string) bool {
		if strings.Contains(prefix, "*") {
			return true
		}
		return Match(prefix+"*", prefix+rest)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

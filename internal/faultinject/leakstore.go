// Package faultinject reproduces the paper's aging-error injection. The
// paper modifies TPC-W servlets so that a random draw in [0,N] decides how
// many requests use the servlet before the next memory leak of a fixed
// size is injected; the average consumption rate then depends on the
// component's usage frequency — which is exactly what the experiments
// exploit. This package implements that scheme (plus the CPU-hog and
// thread-leak injectors of the paper's future work) as aspects, so faults
// are attached to unmodified components at runtime.
package faultinject

import (
	"sync"
)

// LeakStore is the retention point embedded in every injectable component.
// Leaked bytes are appended to one flat buffer so the paper's one-level
// object-size policy measures them (a fresh allocation per leak would hide
// behind a second level of indirection). A LeakStore is safe for
// concurrent use.
type LeakStore struct {
	mu  sync.Mutex
	buf []byte
}

// Retain appends n leaked bytes to the store.
func (s *LeakStore) Retain(n int) {
	if n < 0 {
		panic("faultinject: negative leak size")
	}
	s.mu.Lock()
	s.buf = append(s.buf, make([]byte, n)...)
	s.mu.Unlock()
}

// LeakedBytes returns the number of bytes retained so far.
func (s *LeakStore) LeakedBytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Release drops every retained byte (micro-reboot of the component) and
// returns how many were held.
func (s *LeakStore) Release() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.buf)
	s.buf = nil
	return n
}

// Retainer is what the memory-leak injector needs from its target: any
// component embedding a LeakStore satisfies it.
type Retainer interface {
	Retain(n int)
}

var _ Retainer = (*LeakStore)(nil)

package faultinject

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/sim"
)

// storeSink records everything offered to it, concurrently.
type storeSink struct {
	mu   sync.Mutex
	got  []uint64
	drop bool
}

func (s *storeSink) Ingest(v uint64) {
	s.mu.Lock()
	if !s.drop {
		s.got = append(s.got, v)
	}
	s.mu.Unlock()
}

func stormValues(seed uint64) []uint64 {
	sink := &storeSink{}
	storm := &RoundStorm[uint64]{
		Publishers: 4,
		Rounds:     8,
		Seed:       seed,
		Make:       func(_, _, _ int, rng *sim.Stream) uint64 { return rng.Uint64() },
	}
	if n := storm.Fire(sink); n != 4*8 {
		panic("short storm")
	}
	out := append([]uint64(nil), sink.got...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestRoundStormDeterministicOffers pins that equal seeds offer
// bit-identical round sets (as a multiset — the interleaving is the
// storm's only nondeterminism) and unequal seeds do not.
func TestRoundStormDeterministicOffers(t *testing.T) {
	a, b := stormValues(7), stormValues(7)
	if len(a) != len(b) {
		t.Fatalf("offer counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("offered sets diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := stormValues(8)
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds offered identical round sets")
	}
}

// TestRoundStormCounters pins Offered/Storms across consecutive fires,
// and that later storms draw fresh streams (the storm ordinal feeds the
// derivation).
func TestRoundStormCounters(t *testing.T) {
	sink := &storeSink{}
	storm := &RoundStorm[uint64]{
		Publishers: 2,
		Rounds:     3,
		Seed:       1,
		Make:       func(_, _, _ int, rng *sim.Stream) uint64 { return rng.Uint64() },
	}
	storm.Fire(sink)
	storm.Fire(sink)
	if storm.Storms() != 2 || storm.Offered() != 12 {
		t.Fatalf("Storms=%d Offered=%d, want 2 and 12", storm.Storms(), storm.Offered())
	}
	seen := map[uint64]int{}
	for _, v := range sink.got {
		seen[v]++
	}
	if len(seen) != 12 {
		t.Fatalf("consecutive storms reused draws: %d distinct of 12", len(seen))
	}
}

// TestRoundStormDefaults pins the documented defaults and the config
// panics.
func TestRoundStormDefaults(t *testing.T) {
	sink := &storeSink{drop: true}
	storm := &RoundStorm[uint64]{Make: func(_, _, _ int, _ *sim.Stream) uint64 { return 0 }}
	if n := storm.Fire(sink); n != 64*32 {
		t.Fatalf("default storm offered %d, want %d", n, 64*32)
	}

	mustPanic(t, "nil sink", func() { storm.Fire(nil) })
	bad := &RoundStorm[uint64]{}
	mustPanic(t, "nil Make", func() { bad.Fire(sink) })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

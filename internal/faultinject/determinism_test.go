package faultinject

import (
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
)

// The catalog's reproducibility contract: with the same seed an injector
// fires at exactly the same requests with exactly the same magnitudes,
// run after run. These tests capture the full injection schedule — the
// request index of every firing — not just the totals, so a reseeding or
// draw-order bug cannot hide behind an unchanged count.

// schedule invokes component n times through a fresh weaver and records,
// for each request, the injector's counter after that request — the
// complete injection schedule.
func schedule(t *testing.T, w *aspect.Weaver, component string, n int, counter func() int64) []int64 {
	t.Helper()
	fn := w.Weave(component, "Service", func(args ...any) (any, error) { return nil, nil })
	out := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		if _, err := fn(); err != nil {
			t.Fatal(err)
		}
		out = append(out, counter())
	}
	return out
}

func sameSchedule(t *testing.T, name string, a, b []int64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: schedule lengths diverged: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("%s: schedules diverge at request %d: %d vs %d", name, i, a[i], b[i])
		}
	}
	if len(a) > 0 && a[len(a)-1] == 0 {
		t.Fatalf("%s: injector never fired — schedule comparison is vacuous", name)
	}
}

func TestMemoryLeakScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		leak := &MemoryLeak{Component: "c", Target: &fakeComponent{}, Size: 10, N: 50, Seed: 42}
		w := aspect.NewWeaver(nil)
		if err := w.Register(leak.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 3000, leak.Injections)
	}
	sameSchedule(t, "MemoryLeak", run(), run())
}

func TestCPUHogScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		hog := &CPUHog{Component: "c", Extra: time.Millisecond, EveryN: 7}
		w := aspect.NewWeaver(nil)
		if err := w.Register(hog.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 3000, hog.Hits)
	}
	sameSchedule(t, "CPUHog", run(), run())
}

func TestThreadLeakScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		tl := &ThreadLeak{Component: "c", N: 50, Agent: monitor.NewThreadAgent(), Seed: 42}
		w := aspect.NewWeaver(nil)
		if err := w.Register(tl.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 3000, tl.Leaked)
	}
	sameSchedule(t, "ThreadLeak", run(), run())
}

func TestThreadLeakCountersDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		heap := jvmheap.New(1<<30, nil)
		tl := &ThreadLeak{Component: "c", N: 20, Agent: monitor.NewThreadAgent(), Heap: heap, Seed: 9}
		w := aspect.NewWeaver(nil)
		if err := w.Register(tl.Aspect()); err != nil {
			t.Fatal(err)
		}
		invokeN(t, w, "c", 2000)
		return tl.Leaked(), heap.RetainedBy("c")
	}
	l1, h1 := run()
	l2, h2 := run()
	if l1 != l2 || h1 != h2 {
		t.Fatalf("counters diverged: leaked %d vs %d, heap %d vs %d", l1, l2, h1, h2)
	}
}

func TestPoolExhaustionScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		p := &PoolExhaustion{
			Component: "c", N: 50, PerHandleWait: time.Millisecond,
			Agent: monitor.NewHandleAgent(), Seed: 42,
		}
		w := aspect.NewWeaver(nil)
		if err := w.Register(p.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 3000, p.Leaked)
	}
	sameSchedule(t, "PoolExhaustion", run(), run())
}

func TestHandleLeakScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		h := &HandleLeak{Component: "c", N: 50, Agent: monitor.NewHandleAgent(), Seed: 42}
		w := aspect.NewWeaver(nil)
		if err := w.Register(h.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 3000, h.Leaked)
	}
	sameSchedule(t, "HandleLeak", run(), run())
}

func TestLockContentionScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		l := &LockContention{
			Component: "c", Step: time.Millisecond, Growth: 100,
			Jitter: 100 * time.Microsecond, Seed: 42,
		}
		w := aspect.NewWeaver(nil)
		if err := w.Register(l.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 3000, func() int64 { return int64(l.Waited()) })
	}
	sameSchedule(t, "LockContention", run(), run())
}

func TestFragmentationBloatScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		f := &FragmentationBloat{
			Component: "c", Target: &fakeComponent{}, Base: 1024, N: 50, Seed: 42,
		}
		w := aspect.NewWeaver(nil)
		if err := w.Register(f.Aspect()); err != nil {
			t.Fatal(err)
		}
		// Bloated bytes, not fragment count: jittered sizes must replay too.
		return schedule(t, w, "c", 3000, f.BloatedBytes)
	}
	sameSchedule(t, "FragmentationBloat", run(), run())
}

func TestStaleCacheDecayScheduleDeterministic(t *testing.T) {
	run := func() []int64 {
		s := &StaleCacheDecay{Component: "c", MissCost: time.Millisecond, Decay: 2000, Seed: 42}
		w := aspect.NewWeaver(nil)
		if err := w.Register(s.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 3000, s.Misses)
	}
	sameSchedule(t, "StaleCacheDecay", run(), run())
}

func TestSeedsActuallyChangeSchedules(t *testing.T) {
	run := func(seed uint64) []int64 {
		leak := &MemoryLeak{Component: "c", Target: &fakeComponent{}, Size: 10, N: 50, Seed: seed}
		w := aspect.NewWeaver(nil)
		if err := w.Register(leak.Aspect()); err != nil {
			t.Fatal(err)
		}
		return schedule(t, w, "c", 500, leak.Injections)
	}
	a, b := run(1), run(2)
	for i := range a {
		if a[i] != b[i] {
			return
		}
	}
	t.Fatal("different seeds produced identical schedules")
}

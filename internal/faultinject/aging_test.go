package faultinject

import (
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
)

// latReq implements both injection sinks the way the servlet request
// does: AddCost charges CPU, AddWait charges latency-only delay.
type latReq struct {
	cost time.Duration
	wait time.Duration
}

func (r *latReq) AddCost(d time.Duration) { r.cost += d }
func (r *latReq) AddWait(d time.Duration) { r.wait += d }

func invokeNWith(t *testing.T, w *aspect.Weaver, component string, n int, arg any) {
	t.Helper()
	fn := w.Weave(component, "Service", func(args ...any) (any, error) { return nil, nil })
	for i := 0; i < n; i++ {
		if _, err := fn(arg); err != nil {
			t.Fatal(err)
		}
	}
}

func TestPoolExhaustion(t *testing.T) {
	agent := monitor.NewHandleAgent()
	p := &PoolExhaustion{
		Component: "c", N: 10, PerHandleWait: time.Millisecond, Agent: agent, Seed: 3,
	}
	w := aspect.NewWeaver(nil)
	if err := w.Register(p.Aspect()); err != nil {
		t.Fatal(err)
	}
	req := &latReq{}
	invokeNWith(t, w, "c", 1000, req)
	leaked := p.Leaked()
	expected := 1000.0 / (10.0/2 + 1)
	if leaked < int64(expected*0.7) || leaked > int64(expected*1.3) {
		t.Fatalf("leaked = %d, want ~%.0f", leaked, expected)
	}
	if agent.LiveOf("c") != leaked {
		t.Fatalf("agent live = %d, injector %d", agent.LiveOf("c"), leaked)
	}
	// The wait grows with the leak: the last request alone waits
	// leaked·PerHandleWait (minus the final request's own injection),
	// so the total must exceed a triangular lower bound.
	if req.wait < time.Duration(leaked-1)*p.PerHandleWait {
		t.Fatalf("total wait %v below last request's own wait", req.wait)
	}
	if req.cost != 0 {
		t.Fatalf("pool exhaustion charged CPU cost %v, want none", req.cost)
	}
}

func TestHandleLeak(t *testing.T) {
	agent := monitor.NewHandleAgent()
	heap := jvmheap.New(1<<30, nil)
	h := &HandleLeak{Component: "c", N: 10, Agent: agent, Heap: heap, Seed: 3}
	w := aspect.NewWeaver(nil)
	if err := w.Register(h.Aspect()); err != nil {
		t.Fatal(err)
	}
	invokeN(t, w, "c", 1000)
	leaked := h.Leaked()
	expected := 1000.0 / (10.0/2 + 1)
	if leaked < int64(expected*0.7) || leaked > int64(expected*1.3) {
		t.Fatalf("leaked = %d, want ~%.0f", leaked, expected)
	}
	if agent.LiveOf("c") != leaked {
		t.Fatalf("agent live = %d, injector %d", agent.LiveOf("c"), leaked)
	}
	if heap.RetainedBy("c") != leaked*handleBytes {
		t.Fatalf("heap = %d, want %d", heap.RetainedBy("c"), leaked*handleBytes)
	}
}

func TestLockContentionGrowsWaitOnly(t *testing.T) {
	l := &LockContention{Component: "c", Step: time.Millisecond, Growth: 10, Seed: 1}
	w := aspect.NewWeaver(nil)
	if err := w.Register(l.Aspect()); err != nil {
		t.Fatal(err)
	}
	early := &latReq{}
	invokeNWith(t, w, "c", 100, early)
	late := &latReq{}
	invokeNWith(t, w, "c", 100, late)
	if late.wait <= early.wait {
		t.Fatalf("contention wait not growing: early %v, late %v", early.wait, late.wait)
	}
	if early.cost != 0 || late.cost != 0 {
		t.Fatal("lock contention charged CPU cost")
	}
	if l.Waited() != early.wait+late.wait {
		t.Fatalf("Waited() = %v, requests saw %v", l.Waited(), early.wait+late.wait)
	}
}

func TestFragmentationBloatRetainsJitteredFragments(t *testing.T) {
	comp := &fakeComponent{}
	heap := jvmheap.New(1<<30, nil)
	f := &FragmentationBloat{Component: "c", Target: comp, Base: 1024, N: 10, Heap: heap, Seed: 3}
	w := aspect.NewWeaver(nil)
	if err := w.Register(f.Aspect()); err != nil {
		t.Fatal(err)
	}
	invokeN(t, w, "c", 1000)
	if f.Fragments() == 0 {
		t.Fatal("no fragments injected")
	}
	if int64(comp.LeakedBytes()) != f.BloatedBytes() {
		t.Fatalf("component retained %d, injector says %d", comp.LeakedBytes(), f.BloatedBytes())
	}
	if heap.RetainedBy("c") != f.BloatedBytes() {
		t.Fatalf("heap charged %d, want %d", heap.RetainedBy("c"), f.BloatedBytes())
	}
	// Jittered sizes: mean fragment must sit near Base, not at it.
	mean := f.BloatedBytes() / f.Fragments()
	if mean < int64(f.Base)/2 || mean > 3*int64(f.Base)/2 {
		t.Fatalf("mean fragment %d outside [Base/2, 3·Base/2]", mean)
	}
}

func TestStaleCacheDecayMissRateClimbs(t *testing.T) {
	s := &StaleCacheDecay{Component: "c", MissCost: time.Millisecond, Decay: 1000, Seed: 3}
	w := aspect.NewWeaver(nil)
	if err := w.Register(s.Aspect()); err != nil {
		t.Fatal(err)
	}
	early := &latReq{}
	invokeNWith(t, w, "c", 200, early)
	earlyMisses := s.Misses()
	late := &latReq{}
	invokeNWith(t, w, "c", 200, late)
	lateMisses := s.Misses() - earlyMisses
	if lateMisses <= earlyMisses {
		t.Fatalf("miss rate not climbing: %d early, %d late", earlyMisses, lateMisses)
	}
	if late.cost != time.Duration(lateMisses)*s.MissCost {
		t.Fatalf("late cost %v, want %v", late.cost, time.Duration(lateMisses)*s.MissCost)
	}
	if early.wait != 0 || late.wait != 0 {
		t.Fatal("cache decay charged wait")
	}
	// Past Decay requests every request must miss.
	invokeNWith(t, w, "c", 700, &latReq{})
	before := s.Misses()
	invokeNWith(t, w, "c", 50, &latReq{})
	if s.Misses()-before != 50 {
		t.Fatalf("past full decay, %d/50 requests missed", s.Misses()-before)
	}
}

func TestAgingInjectorValidation(t *testing.T) {
	agent := monitor.NewHandleAgent()
	for name, fn := range map[string]func(){
		"pool no agent":    func() { (&PoolExhaustion{Component: "c", N: 1, PerHandleWait: 1}).Aspect() },
		"pool no wait":     func() { (&PoolExhaustion{Component: "c", N: 1, Agent: agent}).Aspect() },
		"handle no agent":  func() { (&HandleLeak{Component: "c", N: 1}).Aspect() },
		"lock no step":     func() { (&LockContention{Component: "c", Growth: 1}).Aspect() },
		"lock no growth":   func() { (&LockContention{Component: "c", Step: 1}).Aspect() },
		"frag no target":   func() { (&FragmentationBloat{Component: "c", Base: 2, N: 1}).Aspect() },
		"cache no cost":    func() { (&StaleCacheDecay{Component: "c", Decay: 1}).Aspect() },
		"cache no decay":   func() { (&StaleCacheDecay{Component: "c", MissCost: 1}).Aspect() },
		"chaos no inner":   func() { NewChaosTransport[cluster.Round](nil) },
		"nodekill no node": func() { NodeKill{Window: time.Second}.Offset() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

// recordingTransport captures published rounds for the chaos tests.
type recordingTransport struct {
	rounds []cluster.Round
	closed bool
}

func (r *recordingTransport) Publish(round cluster.Round) error {
	r.rounds = append(r.rounds, round)
	return nil
}

func (r *recordingTransport) Close() error {
	r.closed = true
	return nil
}

func TestChaosTransportPartitionAndSkew(t *testing.T) {
	inner := &recordingTransport{}
	ch := NewChaosTransport[cluster.Round](inner)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	mk := func(seq int64) cluster.Round {
		return cluster.Round{Node: "n1", Seq: seq, Time: t0.Add(time.Duration(seq) * time.Second),
			Samples: []core.ComponentSample{{Component: "c", Usage: seq}}}
	}

	if err := ch.Publish(mk(1)); err != nil {
		t.Fatal(err)
	}
	ch.SetPartitioned(true)
	if err := ch.Publish(mk(2)); err != nil {
		t.Fatal(err)
	}
	if err := ch.Publish(mk(3)); err != nil {
		t.Fatal(err)
	}
	ch.SetPartitioned(false)
	if err := ch.Publish(mk(4)); err != nil {
		t.Fatal(err)
	}
	if len(inner.rounds) != 2 || inner.rounds[0].Seq != 1 || inner.rounds[1].Seq != 4 {
		t.Fatalf("partition did not drop the partitioned rounds: %+v", inner.rounds)
	}
	if ch.Dropped() != 2 {
		t.Fatalf("Dropped = %d, want 2", ch.Dropped())
	}

	ch.SetSkew(5 * time.Minute)
	if err := ch.Publish(mk(5)); err != nil {
		t.Fatal(err)
	}
	got := inner.rounds[len(inner.rounds)-1]
	if want := mk(5).Time.Add(5 * time.Minute); !got.Time.Equal(want) {
		t.Fatalf("skewed time = %v, want %v", got.Time, want)
	}
	if got.Seq != 5 {
		t.Fatalf("skew corrupted the round: %+v", got)
	}

	if err := ch.Close(); err != nil || !inner.closed {
		t.Fatal("Close not forwarded")
	}
}

func TestNodeKillDeterministicWithinWindow(t *testing.T) {
	k := NodeKill{Node: "node2", Window: 10 * time.Minute, Seed: 42}
	off := k.Offset()
	if off != k.Offset() {
		t.Fatal("kill offset not deterministic")
	}
	if off < 0 || off >= k.Window {
		t.Fatalf("kill offset %v outside [0, %v)", off, k.Window)
	}
	other := NodeKill{Node: "node3", Window: 10 * time.Minute, Seed: 42}
	if other.Offset() == off {
		t.Fatal("different nodes drew the same kill instant")
	}
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	if !k.At(t0).Equal(t0.Add(off)) {
		t.Fatal("At does not resolve against start")
	}
}

package faultinject

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// MemoryLeak injects the paper's aging error: after a component execution,
// a countdown drawn uniformly from [0,N] decides how many further requests
// use the component before Size bytes are leaked into it. The injected
// bytes are retained by the component object itself (via its LeakStore),
// so the object-size agent measures them, and are charged to the simulated
// heap so global exhaustion behaviour is realistic.
type MemoryLeak struct {
	// Component is the target component name.
	Component string
	// Target is the live component object (must embed a LeakStore).
	Target Retainer
	// Size is the bytes leaked per injection (the paper uses 10 KB,
	// 100 KB and 1 MB).
	Size int
	// N parameterises the countdown draw in [0,N] (the paper uses 100).
	N int
	// Heap, when non-nil, is charged Size bytes per injection under the
	// component's name.
	Heap *jvmheap.Heap
	// Seed derives the injector's random stream.
	Seed uint64

	mu         sync.Mutex
	rng        *sim.Stream
	countdown  int
	armed      bool
	injections int64
}

// Aspect returns the advice that performs the injection. Register it with
// the weaver to arm the fault.
func (l *MemoryLeak) Aspect() *aspect.Aspect {
	if l.Component == "" || l.Target == nil {
		panic("faultinject: MemoryLeak needs Component and Target")
	}
	if l.Size <= 0 || l.N <= 0 {
		panic("faultinject: MemoryLeak needs positive Size and N")
	}
	l.rng = sim.DeriveStable(l.Seed, 0x11ea)
	return &aspect.Aspect{
		Name:     "inject.mem." + l.Component,
		Order:    100, // innermost: monitoring aspects observe the leak
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", l.Component)),
		AfterReturning: func(*aspect.JoinPoint) {
			l.onRequest()
		},
	}
}

func (l *MemoryLeak) onRequest() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.armed {
		l.countdown = l.rng.IntN(l.N + 1)
		l.armed = true
	}
	if l.countdown > 0 {
		l.countdown--
		return
	}
	l.Target.Retain(l.Size)
	if l.Heap != nil {
		// A failed allocation is the application crashing from aging,
		// not an injector error; the heap records the OOM.
		_ = l.Heap.Allocate(l.Component, int64(l.Size))
	}
	l.injections++
	l.countdown = l.rng.IntN(l.N + 1)
}

// Injections returns how many leaks have fired.
func (l *MemoryLeak) Injections() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.injections
}

// LeakedBytes returns the total bytes injected so far.
func (l *MemoryLeak) LeakedBytes() int64 {
	return l.Injections() * int64(l.Size)
}

// costSink is how the CPU hog reaches the request without depending on the
// servlet package: the container's request type implements it.
type costSink interface {
	AddCost(d time.Duration)
}

// CPUHog models a computational aging bug (the paper's future work): every
// EveryN-th execution of the component burns Extra additional CPU time,
// inflating its service time and its share on the CPU agent.
type CPUHog struct {
	// Component is the target component name.
	Component string
	// Extra is the additional CPU time per triggered request.
	Extra time.Duration
	// EveryN triggers on every N-th request (1 = every request).
	EveryN int

	mu       sync.Mutex
	requests int64
	hits     int64
}

// Aspect returns the advice implementing the hog.
func (h *CPUHog) Aspect() *aspect.Aspect {
	if h.Component == "" || h.Extra <= 0 {
		panic("faultinject: CPUHog needs Component and positive Extra")
	}
	if h.EveryN <= 0 {
		h.EveryN = 1
	}
	return &aspect.Aspect{
		Name:     "inject.cpu." + h.Component,
		Order:    100,
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", h.Component)),
		Before: func(jp *aspect.JoinPoint) {
			h.mu.Lock()
			h.requests++
			fire := h.requests%int64(h.EveryN) == 0
			if fire {
				h.hits++
			}
			h.mu.Unlock()
			if !fire {
				return
			}
			for _, arg := range jp.Args {
				if sink, ok := arg.(costSink); ok {
					sink.AddCost(h.Extra)
					return
				}
			}
		},
	}
}

// Hits returns how many requests were slowed.
func (h *CPUHog) Hits() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.hits
}

// threadStackBytes approximates a JVM thread stack charged per leaked
// thread.
const threadStackBytes int64 = 256 << 10

// ThreadLeak models unterminated threads (another classic aging vector the
// paper lists): with the same [0,N] countdown scheme, an execution spawns
// a thread that never terminates. Leaked threads are visible on the
// thread agent and charge stack memory to the heap.
type ThreadLeak struct {
	// Component is the target component name.
	Component string
	// N parameterises the countdown draw in [0,N].
	N int
	// Agent records the leaked (never-finished) threads.
	Agent *monitor.ThreadAgent
	// Heap, when non-nil, is charged one stack per leaked thread.
	Heap *jvmheap.Heap
	// Seed derives the injector's random stream.
	Seed uint64

	mu        sync.Mutex
	rng       *sim.Stream
	countdown int
	armed     bool
	leaked    int64
}

// Aspect returns the advice implementing the leak.
func (t *ThreadLeak) Aspect() *aspect.Aspect {
	if t.Component == "" || t.Agent == nil {
		panic("faultinject: ThreadLeak needs Component and Agent")
	}
	if t.N <= 0 {
		panic("faultinject: ThreadLeak needs positive N")
	}
	t.rng = sim.DeriveStable(t.Seed, 0x7157)
	return &aspect.Aspect{
		Name:     "inject.thread." + t.Component,
		Order:    100,
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", t.Component)),
		AfterReturning: func(*aspect.JoinPoint) {
			t.onRequest()
		},
	}
}

func (t *ThreadLeak) onRequest() {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.armed {
		t.countdown = t.rng.IntN(t.N + 1)
		t.armed = true
	}
	if t.countdown > 0 {
		t.countdown--
		return
	}
	t.Agent.ThreadStarted(t.Component)
	if t.Heap != nil {
		_ = t.Heap.Allocate(t.Component, threadStackBytes)
	}
	t.leaked++
	t.countdown = t.rng.IntN(t.N + 1)
}

// Leaked returns how many threads were leaked.
func (t *ThreadLeak) Leaked() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.leaked
}

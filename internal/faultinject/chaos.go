package faultinject

import (
	"sync"
	"time"

	"repro/internal/sim"
)

// Cluster chaos primitives — the litmus-style harness's environment
// faults, as opposed to the component faults above: a killed node, a
// partitioned monitoring transport, a skewed node clock. Each is
// deterministic (kill instants derive from sim.Rand64; partitions and
// skew are switched by the scenario at scheduled virtual instants) so a
// chaos scenario replays bit-identically. The steady-state hypothesis the
// scenarios verify is the detection plane's: infrastructure chaos alone
// must raise no aging alarm, and attribution must survive it.

// ChaosTransport wraps a collector→aggregator transport with partition
// and clock-skew faults. While partitioned, published rounds are silently
// dropped — the node keeps sampling, the aggregator just stops hearing
// from it, exactly what a network partition looks like from both ends.
// Skew shifts the timestamps the node stamps on its rounds, modelling a
// drifting node clock (the aggregator's skew normalisation is the
// defence under test).
//
// Wrap the transport ABOVE any framing codec (around cluster.InProc, or
// around a whole Wire), never between a wire and its connection: the
// binary codec's delta chains assume no frame is lost in the middle of a
// stream.
//
// The wrapper is generic over the round type rather than naming
// cluster.Round: core's tests import this package and cluster imports
// core, so a direct cluster dependency would be an import cycle.
// Instantiate as ChaosTransport[cluster.Round]; the transport and
// shiftable constraints mirror cluster.Transport and Round.Shifted
// structurally.
type ChaosTransport[R shiftable[R]] struct {
	inner transport[R]

	mu          sync.Mutex
	partitioned bool
	skew        time.Duration
	dropped     int64
}

// transport is the wrapped transport's method set (structurally,
// cluster.Transport).
type transport[R any] interface {
	Publish(R) error
	Close() error
}

// shiftable is a round whose timestamp can be displaced by the clock
// skew (structurally, cluster.Round's Shifted method).
type shiftable[R any] interface {
	Shifted(time.Duration) R
}

// NewChaosTransport wraps a transport with chaos controls (all initially
// inactive: the wrapper is transparent until a fault is switched on).
func NewChaosTransport[R shiftable[R]](inner transport[R]) *ChaosTransport[R] {
	if inner == nil {
		panic("faultinject: NewChaosTransport needs a transport")
	}
	return &ChaosTransport[R]{inner: inner}
}

// SetPartitioned opens or heals the partition.
func (c *ChaosTransport[R]) SetPartitioned(on bool) {
	c.mu.Lock()
	c.partitioned = on
	c.mu.Unlock()
}

// SetSkew sets the clock skew added to every published round's timestamp.
func (c *ChaosTransport[R]) SetSkew(d time.Duration) {
	c.mu.Lock()
	c.skew = d
	c.mu.Unlock()
}

// Dropped returns how many rounds the partition has swallowed.
func (c *ChaosTransport[R]) Dropped() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Publish implements cluster.Transport.
func (c *ChaosTransport[R]) Publish(r R) error {
	c.mu.Lock()
	if c.partitioned {
		c.dropped++
		c.mu.Unlock()
		return nil
	}
	skew := c.skew
	c.mu.Unlock()
	if skew != 0 {
		r = r.Shifted(skew)
	}
	return c.inner.Publish(r)
}

// Close implements cluster.Transport.
func (c *ChaosTransport[R]) Close() error { return c.inner.Close() }

// NodeKill plans a deterministic node-kill: the kill instant is drawn
// uniformly in [0, Window) from the (Seed, node-label) stream, so a chaos
// scenario kills the same node at the same virtual instant on every run.
// The scenario schedules the actual removal (ClusterStack.Leave) at the
// planned instant; the primitive only owns the draw.
type NodeKill struct {
	// Node is the victim node name.
	Node string
	// Window bounds the kill instant offset.
	Window time.Duration
	// Seed derives the draw.
	Seed uint64
}

// Offset returns the kill instant's offset from the chaos epoch.
func (k NodeKill) Offset() time.Duration {
	if k.Node == "" || k.Window <= 0 {
		panic("faultinject: NodeKill needs Node and positive Window")
	}
	label := uint64(0xdead)
	for _, b := range []byte(k.Node) {
		label = label*131 + uint64(b)
	}
	rng := sim.DeriveRand64(k.Seed, label)
	return time.Duration(rng.IntN(int(k.Window)))
}

// At resolves the kill instant against a start time.
func (k NodeKill) At(start time.Time) time.Time {
	return start.Add(k.Offset())
}

package faultinject

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
	"repro/internal/sim"
)

// This file is the non-heap half of the aging-fault catalog: the chaos
// literature's indicators beyond the paper's leak-every-[0,N]-requests
// error — handle leaks, latency-only contention aging, fragmentation-style
// bloat and cache decay. Every injector draws its schedule from a
// sim.Rand64 stream derived from (Seed, injector label), so two runs with
// the same seed inject at exactly the same requests with exactly the same
// magnitudes; the determinism tests pin that contract.

// waitSink is how the latency injectors reach the request without
// depending on the servlet package: the container's request type
// implements it. Added wait stretches the response latency the container
// schedules without charging CPU cost — the signature of contention.
type waitSink interface {
	AddWait(d time.Duration)
}

// addWait finds the request among the join point's arguments and charges
// it wait time.
func addWait(jp *aspect.JoinPoint, d time.Duration) {
	if d <= 0 {
		return
	}
	for _, arg := range jp.Args {
		if sink, ok := arg.(waitSink); ok {
			sink.AddWait(d)
			return
		}
	}
}

// PoolExhaustion models connection-pool exhaustion: with the paper's
// [0,N] countdown scheme the component leaks a pool handle — checked out
// and never returned, visible on the handle agent — and every request
// queues behind the shrunken pool for PerHandleWait per leaked handle.
// The indicator pair is exactly what a real exhaustion shows: a growing
// live-handle level plus degrading per-invocation latency, with flat CPU
// and heap.
type PoolExhaustion struct {
	// Component is the target component name.
	Component string
	// N parameterises the countdown draw in [0,N].
	N int
	// PerHandleWait is the added queueing delay per leaked handle.
	PerHandleWait time.Duration
	// Agent records the leaked handles.
	Agent *monitor.HandleAgent
	// Seed derives the injector's random stream.
	Seed uint64

	mu        sync.Mutex
	rng       sim.Rand64
	countdown int
	armed     bool
	leaked    int64
}

// Aspect returns the advice implementing the exhaustion. Register it with
// the weaver to arm the fault.
func (p *PoolExhaustion) Aspect() *aspect.Aspect {
	if p.Component == "" || p.Agent == nil {
		panic("faultinject: PoolExhaustion needs Component and Agent")
	}
	if p.N <= 0 || p.PerHandleWait <= 0 {
		panic("faultinject: PoolExhaustion needs positive N and PerHandleWait")
	}
	p.rng = sim.DeriveRand64(p.Seed, 0x9001)
	return &aspect.Aspect{
		Name:     "inject.pool." + p.Component,
		Order:    100, // innermost: monitoring aspects observe the effects
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", p.Component)),
		Before: func(jp *aspect.JoinPoint) {
			p.mu.Lock()
			wait := time.Duration(p.leaked) * p.PerHandleWait
			p.mu.Unlock()
			addWait(jp, wait)
		},
		AfterReturning: func(*aspect.JoinPoint) {
			p.onRequest()
		},
	}
}

func (p *PoolExhaustion) onRequest() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.armed {
		p.countdown = p.rng.IntN(p.N + 1)
		p.armed = true
	}
	if p.countdown > 0 {
		p.countdown--
		return
	}
	p.Agent.HandleOpened(p.Component)
	p.leaked++
	p.countdown = p.rng.IntN(p.N + 1)
}

// Leaked returns how many pool handles were leaked.
func (p *PoolExhaustion) Leaked() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.leaked
}

// handleBytes approximates the kernel/session buffer charged per leaked
// handle — enough to be honest about the cost, small enough that the
// memory detectors stay quiet and the handle stream carries the verdict.
const handleBytes int64 = 4 << 10

// HandleLeak models a file-descriptor or session-handle leak: the [0,N]
// countdown scheme opens a handle that is never closed. Leaked handles
// are visible on the handle agent and charge a small per-handle buffer to
// the heap — the resource that actually exhausts is the handle table, not
// memory, which is what separates this fault from MemoryLeak.
type HandleLeak struct {
	// Component is the target component name.
	Component string
	// N parameterises the countdown draw in [0,N].
	N int
	// Agent records the leaked (never-closed) handles.
	Agent *monitor.HandleAgent
	// Heap, when non-nil, is charged handleBytes per leaked handle.
	Heap *jvmheap.Heap
	// Seed derives the injector's random stream.
	Seed uint64

	mu        sync.Mutex
	rng       sim.Rand64
	countdown int
	armed     bool
	leaked    int64
}

// Aspect returns the advice implementing the leak.
func (h *HandleLeak) Aspect() *aspect.Aspect {
	if h.Component == "" || h.Agent == nil {
		panic("faultinject: HandleLeak needs Component and Agent")
	}
	if h.N <= 0 {
		panic("faultinject: HandleLeak needs positive N")
	}
	h.rng = sim.DeriveRand64(h.Seed, 0xfd1e)
	return &aspect.Aspect{
		Name:     "inject.handle." + h.Component,
		Order:    100,
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", h.Component)),
		AfterReturning: func(*aspect.JoinPoint) {
			h.onRequest()
		},
	}
}

func (h *HandleLeak) onRequest() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.armed {
		h.countdown = h.rng.IntN(h.N + 1)
		h.armed = true
	}
	if h.countdown > 0 {
		h.countdown--
		return
	}
	h.Agent.HandleOpened(h.Component)
	if h.Heap != nil {
		_ = h.Heap.Allocate(h.Component, handleBytes)
	}
	h.leaked++
	h.countdown = h.rng.IntN(h.N + 1)
}

// Leaked returns how many handles were leaked.
func (h *HandleLeak) Leaked() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.leaked
}

// LockContention models contention aging: a lock (or a similar serialised
// section) whose critical section creeps as internal state degrades, so
// every execution waits longer than the last — latency degrades with NO
// resource growth anywhere. Each request is charged
// Step·(requests/Growth) of wait plus a seeded jitter in [0,Jitter), so
// mean latency climbs one Step every Growth requests. This is the
// catalog's pure-latency fault: memory, CPU, threads and handles all stay
// flat, and only the latency-trend detector can name the component.
type LockContention struct {
	// Component is the target component name.
	Component string
	// Step is the wait growth applied per Growth executions.
	Step time.Duration
	// Growth is how many executions raise the wait by one Step.
	Growth int
	// Jitter bounds the per-request uniform wait jitter (0 disables).
	Jitter time.Duration
	// Seed derives the injector's random stream.
	Seed uint64

	mu       sync.Mutex
	rng      sim.Rand64
	requests int64
	waited   time.Duration
}

// Aspect returns the advice implementing the contention.
func (l *LockContention) Aspect() *aspect.Aspect {
	if l.Component == "" || l.Step <= 0 {
		panic("faultinject: LockContention needs Component and positive Step")
	}
	if l.Growth <= 0 {
		panic("faultinject: LockContention needs positive Growth")
	}
	if l.Jitter < 0 {
		panic("faultinject: LockContention needs non-negative Jitter")
	}
	l.rng = sim.DeriveRand64(l.Seed, 0x10c7)
	return &aspect.Aspect{
		Name:     "inject.lock." + l.Component,
		Order:    100,
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", l.Component)),
		Before: func(jp *aspect.JoinPoint) {
			l.mu.Lock()
			wait := l.Step * time.Duration(l.requests/int64(l.Growth))
			if l.Jitter > 0 {
				wait += time.Duration(l.rng.IntN(int(l.Jitter)))
			}
			l.requests++
			l.waited += wait
			l.mu.Unlock()
			addWait(jp, wait)
		},
	}
}

// Waited returns the total wait injected so far.
func (l *LockContention) Waited() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.waited
}

// Requests returns how many executions the injector has seen.
func (l *LockContention) Requests() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.requests
}

// FragmentationBloat models fragmentation-style slow bloat: unlike the
// fixed-size paper leak, each [0,N]-countdown injection retains a small
// fragment of jittered size in [Base/2, 3·Base/2] — the shape of a heap
// that fragments or a buffer pool that ratchets. The slope is shallow by
// construction (paper-leak sizes divided by ~100), exercising the memory
// trend detector near its sensitivity floor instead of far above it.
type FragmentationBloat struct {
	// Component is the target component name.
	Component string
	// Target is the live component object (must embed a LeakStore).
	Target Retainer
	// Base is the mean fragment size in bytes.
	Base int
	// N parameterises the countdown draw in [0,N].
	N int
	// Heap, when non-nil, is charged each fragment.
	Heap *jvmheap.Heap
	// Seed derives the injector's random stream.
	Seed uint64

	mu        sync.Mutex
	rng       sim.Rand64
	countdown int
	armed     bool
	bloated   int64
	fragments int64
}

// Aspect returns the advice implementing the bloat.
func (f *FragmentationBloat) Aspect() *aspect.Aspect {
	if f.Component == "" || f.Target == nil {
		panic("faultinject: FragmentationBloat needs Component and Target")
	}
	if f.Base <= 1 || f.N <= 0 {
		panic("faultinject: FragmentationBloat needs Base > 1 and positive N")
	}
	f.rng = sim.DeriveRand64(f.Seed, 0xf4a6)
	return &aspect.Aspect{
		Name:     "inject.frag." + f.Component,
		Order:    100,
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", f.Component)),
		AfterReturning: func(*aspect.JoinPoint) {
			f.onRequest()
		},
	}
}

func (f *FragmentationBloat) onRequest() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if !f.armed {
		f.countdown = f.rng.IntN(f.N + 1)
		f.armed = true
	}
	if f.countdown > 0 {
		f.countdown--
		return
	}
	size := f.Base/2 + f.rng.IntN(f.Base+1)
	f.Target.Retain(size)
	if f.Heap != nil {
		_ = f.Heap.Allocate(f.Component, int64(size))
	}
	f.bloated += int64(size)
	f.fragments++
	f.countdown = f.rng.IntN(f.N + 1)
}

// BloatedBytes returns the total bytes retained so far.
func (f *FragmentationBloat) BloatedBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bloated
}

// Fragments returns how many fragments were retained.
func (f *FragmentationBloat) Fragments() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fragments
}

// StaleCacheDecay models a cache whose hit rate decays as its contents go
// stale: the miss probability climbs linearly from 0 to 1 over Decay
// requests, and each miss costs MissCost of extra CPU (the backing lookup
// the cache existed to avoid). The observable is a growing per-invocation
// CPU trend with no resource-level growth — computational aging without a
// hog's level step, which is what separates it from CPUHog on the
// Page-Hinkley/trend axis.
type StaleCacheDecay struct {
	// Component is the target component name.
	Component string
	// MissCost is the extra CPU charged per cache miss.
	MissCost time.Duration
	// Decay is the request count over which the miss probability reaches 1.
	Decay int
	// Seed derives the injector's random stream.
	Seed uint64

	mu       sync.Mutex
	rng      sim.Rand64
	requests int64
	misses   int64
}

// Aspect returns the advice implementing the decay.
func (s *StaleCacheDecay) Aspect() *aspect.Aspect {
	if s.Component == "" || s.MissCost <= 0 {
		panic("faultinject: StaleCacheDecay needs Component and positive MissCost")
	}
	if s.Decay <= 0 {
		panic("faultinject: StaleCacheDecay needs positive Decay")
	}
	s.rng = sim.DeriveRand64(s.Seed, 0xcace)
	return &aspect.Aspect{
		Name:     "inject.cache." + s.Component,
		Order:    100,
		Pointcut: aspect.MustPointcut(fmt.Sprintf("execution(%s.Service)", s.Component)),
		Before: func(jp *aspect.JoinPoint) {
			s.mu.Lock()
			s.requests++
			p := float64(s.requests) / float64(s.Decay)
			miss := s.rng.Float64() < p
			if miss {
				s.misses++
			}
			s.mu.Unlock()
			if !miss {
				return
			}
			for _, arg := range jp.Args {
				if sink, ok := arg.(costSink); ok {
					sink.AddCost(s.MissCost)
					return
				}
			}
		},
	}
}

// Misses returns how many cache misses have been injected.
func (s *StaleCacheDecay) Misses() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.misses
}

// Requests returns how many executions the injector has seen.
func (s *StaleCacheDecay) Requests() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests
}

package faultinject

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// RoundStorm is the monitoring plane's own overload fault: a burst of
// phantom publishers hammering an aggregator's ingest surface at once,
// the monitoring-traffic analogue of a request flood. The defence under
// test is the aggregator's bounded-lane admission gate
// (cluster.Config.LaneQueueDepth): under a storm it must shed and count
// rounds rather than park publisher goroutines without bound, and the
// verdicts folded from the admitted rounds must stay correct.
//
// Like ChaosTransport above, the storm is generic over the round type
// rather than naming cluster.Round — core's tests import this package
// and cluster imports core, so a direct cluster dependency would be an
// import cycle. Instantiate as RoundStorm[cluster.Round] and point Fire
// at the aggregator (its Ingest method matches ingestSink structurally).
//
// Each publisher draws from its own stream derived from (Seed, storm
// ordinal, publisher ordinal), so the set of offered rounds is
// bit-identical across runs; only the goroutine interleaving — which
// rounds a full lane sheds — varies, exactly the nondeterminism a real
// storm has.
type RoundStorm[R any] struct {
	// Publishers is how many concurrent phantom publishers each Fire
	// launches (default 64).
	Publishers int
	// Rounds is how many rounds each publisher offers per Fire
	// (default 32).
	Rounds int
	// Seed selects the deterministic storm; equal seeds offer equal
	// round sets.
	Seed uint64
	// Make builds publisher p's i-th round of one storm (all 0-based:
	// p in [0,Publishers), i in [0,Rounds), storm is the Fire
	// ordinal), drawing any randomness from rng, the publisher's own
	// stream.
	Make func(storm, p, i int, rng *sim.Stream) R

	mu      sync.Mutex
	storms  int
	offered atomic.Int64
}

// ingestSink is the storm's target surface (structurally,
// *cluster.Aggregator's Ingest method).
type ingestSink[R any] interface {
	Ingest(R)
}

// Fire launches one storm and blocks until every publisher has offered
// all its rounds, returning how many rounds this storm offered. The
// sink's shed counter, sampled before and after, measures how many of
// them the admission gate refused.
func (s *RoundStorm[R]) Fire(sink ingestSink[R]) int64 {
	if sink == nil {
		panic("faultinject: RoundStorm needs a sink")
	}
	if s.Make == nil {
		panic("faultinject: RoundStorm needs a Make round factory")
	}
	s.mu.Lock()
	storm := s.storms
	s.storms++
	publishers := s.Publishers
	if publishers <= 0 {
		publishers = 64
	}
	rounds := s.Rounds
	if rounds <= 0 {
		rounds = 32
	}
	s.mu.Unlock()

	var wg sync.WaitGroup
	wg.Add(publishers)
	for p := 0; p < publishers; p++ {
		go func(p int) {
			defer wg.Done()
			rng := sim.DeriveStable(s.Seed, uint64(storm)<<32|uint64(p)^0x570a)
			for i := 0; i < rounds; i++ {
				sink.Ingest(s.Make(storm, p, i, rng))
				s.offered.Add(1)
			}
		}(p)
	}
	wg.Wait()
	return int64(publishers * rounds)
}

// Offered reports rounds offered across all storms fired so far.
func (s *RoundStorm[R]) Offered() int64 { return s.offered.Load() }

// Storms reports how many storms have been fired.
func (s *RoundStorm[R]) Storms() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.storms
}

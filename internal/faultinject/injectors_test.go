package faultinject

import (
	"testing"
	"time"

	"repro/internal/aspect"
	"repro/internal/jvmheap"
	"repro/internal/monitor"
)

type fakeComponent struct {
	LeakStore
}

func TestLeakStore(t *testing.T) {
	var s LeakStore
	if s.LeakedBytes() != 0 {
		t.Fatal("fresh store not empty")
	}
	s.Retain(100)
	s.Retain(50)
	if s.LeakedBytes() != 150 {
		t.Fatalf("leaked = %d", s.LeakedBytes())
	}
	if got := s.Release(); got != 150 {
		t.Fatalf("Release = %d", got)
	}
	if s.LeakedBytes() != 0 {
		t.Fatal("Release did not clear")
	}
}

func TestLeakStoreNegativePanics(t *testing.T) {
	var s LeakStore
	defer func() {
		if recover() == nil {
			t.Fatal("negative Retain did not panic")
		}
	}()
	s.Retain(-1)
}

func invokeN(t *testing.T, w *aspect.Weaver, component string, n int) {
	t.Helper()
	fn := w.Weave(component, "Service", func(args ...any) (any, error) { return nil, nil })
	for i := 0; i < n; i++ {
		if _, err := fn(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMemoryLeakInjectionRate(t *testing.T) {
	comp := &fakeComponent{}
	heap := jvmheap.New(1<<30, nil)
	leak := &MemoryLeak{
		Component: "tpcw.home", Target: comp,
		Size: 100 << 10, N: 100, Heap: heap, Seed: 5,
	}
	w := aspect.NewWeaver(nil)
	if err := w.Register(leak.Aspect()); err != nil {
		t.Fatal(err)
	}
	const requests = 20000
	invokeN(t, w, "tpcw.home", requests)

	// Expected injections ≈ requests / (mean gap) with mean gap = N/2+1.
	inj := leak.Injections()
	expected := float64(requests) / (float64(leak.N)/2 + 1)
	if inj < int64(expected*0.8) || inj > int64(expected*1.2) {
		t.Fatalf("injections = %d, want ~%.0f", inj, expected)
	}
	if got := int64(comp.LeakedBytes()); got != leak.LeakedBytes() {
		t.Fatalf("component retained %d, injector says %d", got, leak.LeakedBytes())
	}
	if got := heap.RetainedBy("tpcw.home"); got != leak.LeakedBytes() {
		t.Fatalf("heap charged %d, want %d", got, leak.LeakedBytes())
	}
}

func TestMemoryLeakOnlyTargetComponent(t *testing.T) {
	comp := &fakeComponent{}
	leak := &MemoryLeak{Component: "tpcw.home", Target: comp, Size: 1024, N: 1, Seed: 1}
	w := aspect.NewWeaver(nil)
	if err := w.Register(leak.Aspect()); err != nil {
		t.Fatal(err)
	}
	invokeN(t, w, "tpcw.search", 1000)
	if leak.Injections() != 0 {
		t.Fatal("leak fired on wrong component")
	}
}

func TestMemoryLeakDeterministic(t *testing.T) {
	run := func() int64 {
		comp := &fakeComponent{}
		leak := &MemoryLeak{Component: "c", Target: comp, Size: 10, N: 50, Seed: 42}
		w := aspect.NewWeaver(nil)
		if err := w.Register(leak.Aspect()); err != nil {
			t.Fatal(err)
		}
		invokeN(t, w, "c", 5000)
		return leak.Injections()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("injections diverged: %d vs %d", a, b)
	}
}

func TestMemoryLeakValidation(t *testing.T) {
	for name, l := range map[string]*MemoryLeak{
		"no component": {Target: &fakeComponent{}, Size: 1, N: 1},
		"no target":    {Component: "c", Size: 1, N: 1},
		"no size":      {Component: "c", Target: &fakeComponent{}, N: 1},
		"no N":         {Component: "c", Target: &fakeComponent{}, Size: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			l.Aspect()
		}()
	}
}

type fakeReq struct {
	cost time.Duration
}

func (r *fakeReq) AddCost(d time.Duration) { r.cost += d }

func TestCPUHog(t *testing.T) {
	hog := &CPUHog{Component: "c", Extra: 5 * time.Millisecond, EveryN: 2}
	w := aspect.NewWeaver(nil)
	if err := w.Register(hog.Aspect()); err != nil {
		t.Fatal(err)
	}
	req := &fakeReq{}
	fn := w.Weave("c", "Service", func(args ...any) (any, error) { return nil, nil })
	for i := 0; i < 10; i++ {
		if _, err := fn(req); err != nil {
			t.Fatal(err)
		}
	}
	if hog.Hits() != 5 {
		t.Fatalf("hits = %d, want 5 (every 2nd)", hog.Hits())
	}
	if req.cost != 25*time.Millisecond {
		t.Fatalf("cost = %v", req.cost)
	}
}

func TestCPUHogEveryRequestDefault(t *testing.T) {
	hog := &CPUHog{Component: "c", Extra: time.Millisecond}
	w := aspect.NewWeaver(nil)
	if err := w.Register(hog.Aspect()); err != nil {
		t.Fatal(err)
	}
	req := &fakeReq{}
	fn := w.Weave("c", "Service", func(args ...any) (any, error) { return nil, nil })
	for i := 0; i < 4; i++ {
		fn(req)
	}
	if hog.Hits() != 4 {
		t.Fatalf("hits = %d", hog.Hits())
	}
}

func TestCPUHogNoSinkIsHarmless(t *testing.T) {
	hog := &CPUHog{Component: "c", Extra: time.Millisecond}
	w := aspect.NewWeaver(nil)
	if err := w.Register(hog.Aspect()); err != nil {
		t.Fatal(err)
	}
	invokeN(t, w, "c", 3) // no args at all
	if hog.Hits() != 3 {
		t.Fatalf("hits = %d", hog.Hits())
	}
}

func TestCPUHogValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CPUHog without Extra did not panic")
		}
	}()
	(&CPUHog{Component: "c"}).Aspect()
}

func TestThreadLeak(t *testing.T) {
	agent := monitor.NewThreadAgent()
	heap := jvmheap.New(1<<30, nil)
	tl := &ThreadLeak{Component: "c", N: 10, Agent: agent, Heap: heap, Seed: 3}
	w := aspect.NewWeaver(nil)
	if err := w.Register(tl.Aspect()); err != nil {
		t.Fatal(err)
	}
	invokeN(t, w, "c", 1000)
	leaked := tl.Leaked()
	expected := 1000.0 / (10.0/2 + 1)
	if leaked < int64(expected*0.7) || leaked > int64(expected*1.3) {
		t.Fatalf("leaked = %d, want ~%.0f", leaked, expected)
	}
	if agent.LiveOf("c") != leaked {
		t.Fatalf("agent live = %d, injector %d", agent.LiveOf("c"), leaked)
	}
	if heap.RetainedBy("c") != leaked*threadStackBytes {
		t.Fatalf("heap = %d", heap.RetainedBy("c"))
	}
}

func TestThreadLeakValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ThreadLeak without Agent did not panic")
		}
	}()
	(&ThreadLeak{Component: "c", N: 1}).Aspect()
}

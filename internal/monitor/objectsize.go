package monitor

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/jmx"
	"repro/internal/objsize"
)

// ObjectSizeAgent measures the retained size of registered component
// objects — the reproduction of the paper's agent that "allows us to know
// the real size of a Java Object". Components register their live object;
// the agent measures it on demand with the configured depth policy.
type ObjectSizeAgent struct {
	sizer *objsize.Sizer
	bean  *jmx.Bean

	mu      sync.RWMutex
	targets map[string]any
}

// NewObjectSizeAgent creates an agent measuring with the given policy.
func NewObjectSizeAgent(policy objsize.Policy) *ObjectSizeAgent {
	a := &ObjectSizeAgent{
		sizer:   objsize.New(policy),
		targets: make(map[string]any),
	}
	a.bean = jmx.NewBean("component object size monitoring agent").
		Attr("Policy", "reference-following policy", func() any { return policy.String() }).
		Attr("Targets", "registered component names", func() any { return a.Components() }).
		Op("Measure", "retained size of the named component in bytes", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.Measure(name)
		}).
		Op("MeasureAll", "retained size of every registered component", func(...any) (any, error) {
			return a.MeasureAll(), nil
		})
	return a
}

// RegisterTarget makes the live object of component measurable. Passing a
// pointer to the component's state is the caller's responsibility; the
// agent never copies it.
func (a *ObjectSizeAgent) RegisterTarget(component string, target any) {
	if target == nil {
		panic("monitor: nil object-size target")
	}
	a.mu.Lock()
	a.targets[component] = target
	a.mu.Unlock()
}

// UnregisterTarget removes a component's target.
func (a *ObjectSizeAgent) UnregisterTarget(component string) {
	a.mu.Lock()
	delete(a.targets, component)
	a.mu.Unlock()
}

// Components lists registered component names, sorted.
func (a *ObjectSizeAgent) Components() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.targets))
	for c := range a.targets {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Measure returns the current retained size of the named component.
func (a *ObjectSizeAgent) Measure(component string) (int64, error) {
	a.mu.RLock()
	target, ok := a.targets[component]
	a.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("monitor: no size target for component %q", component)
	}
	return a.sizer.Of(target), nil
}

// MeasureAll measures every registered component.
func (a *ObjectSizeAgent) MeasureAll() map[string]int64 {
	out := make(map[string]int64)
	for _, c := range a.Components() {
		if n, err := a.Measure(c); err == nil {
			out[c] = n
		}
	}
	return out
}

// ObjectName implements Agent.
func (a *ObjectSizeAgent) ObjectName() jmx.ObjectName { return AgentName("ObjectSize") }

// Bean implements Agent.
func (a *ObjectSizeAgent) Bean() *jmx.Bean { return a.bean }

package monitor

import (
	"errors"

	"repro/internal/jmx"
	"repro/internal/jvmheap"
)

// MemoryAgent exposes the JVM heap as a monitoring agent. ACs query it
// before and after component executions to learn memory deltas, and the
// manager samples it for the global utilisation series.
type MemoryAgent struct {
	heap *jvmheap.Heap
	bean *jmx.Bean
}

// NewMemoryAgent wraps heap.
func NewMemoryAgent(heap *jvmheap.Heap) *MemoryAgent {
	a := &MemoryAgent{heap: heap}
	a.bean = jmx.NewBean("JVM heap monitoring agent").
		Attr("Capacity", "heap capacity in bytes", func() any { return heap.Stats().Capacity }).
		Attr("Used", "bytes in use (retained+transient)", func() any { return heap.Stats().Used }).
		Attr("Retained", "live bytes charged to owners", func() any { return heap.Stats().Retained }).
		Attr("Transient", "garbage awaiting collection", func() any { return heap.Stats().Transient }).
		Attr("Utilization", "fraction of capacity in use", func() any { return heap.Stats().Utilization }).
		Attr("GCCount", "number of collections so far", func() any { return heap.Stats().GCCount }).
		Op("GC", "force a garbage collection", func(...any) (any, error) {
			return heap.GC(), nil
		}).
		Op("RetainedBy", "retained bytes charged to the named owner", func(args ...any) (any, error) {
			owner, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return heap.RetainedBy(owner), nil
		}).
		Op("FreeAll", "release every byte retained by the named owner (micro-reboot)", func(args ...any) (any, error) {
			owner, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return heap.FreeAll(owner), nil
		})
	return a
}

// Heap returns the wrapped heap.
func (a *MemoryAgent) Heap() *jvmheap.Heap { return a.heap }

// ObjectName implements Agent.
func (a *MemoryAgent) ObjectName() jmx.ObjectName { return AgentName("Memory") }

// Bean implements Agent.
func (a *MemoryAgent) Bean() *jmx.Bean { return a.bean }

func oneStringArg(args []any) (string, error) {
	if len(args) != 1 {
		return "", errors.New("monitor: want exactly one argument")
	}
	s, ok := args[0].(string)
	if !ok {
		return "", errors.New("monitor: want a string argument")
	}
	return s, nil
}

package monitor

import (
	"sync"

	"repro/internal/jmx"
)

// ThreadAgent tracks live threads per component. Unterminated threads are
// one of the classic aging vectors the paper lists; a thread-leaking
// component shows a monotonically growing live count here while healthy
// components return to their baseline after each request.
type ThreadAgent struct {
	bean *jmx.Bean

	mu      sync.RWMutex
	live    map[string]int64
	started map[string]int64
	total   int64
}

// NewThreadAgent creates an empty thread accounting agent.
func NewThreadAgent() *ThreadAgent {
	a := &ThreadAgent{live: make(map[string]int64), started: make(map[string]int64)}
	a.bean = jmx.NewBean("per-component live thread monitoring agent").
		Attr("TotalLive", "live threads across all components", func() any { return a.TotalLive() }).
		Op("LiveOf", "live threads owned by the named component", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.LiveOf(name), nil
		}).
		Op("All", "live threads per component", func(...any) (any, error) {
			return a.All(), nil
		})
	return a
}

// ThreadStarted records component starting a thread.
func (a *ThreadAgent) ThreadStarted(component string) {
	a.mu.Lock()
	a.live[component]++
	a.started[component]++
	a.total++
	a.mu.Unlock()
}

// ThreadFinished records a thread of component terminating. Finishing more
// threads than were started panics: it means the instrumentation is
// miscounting, which must not be papered over.
func (a *ThreadAgent) ThreadFinished(component string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.live[component] == 0 {
		panic("monitor: ThreadFinished without matching ThreadStarted for " + component)
	}
	a.live[component]--
	a.total--
	if a.live[component] == 0 {
		delete(a.live, component)
	}
}

// LiveOf returns the live thread count of component.
func (a *ThreadAgent) LiveOf(component string) int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.live[component]
}

// StartedOf returns how many threads component has ever started.
func (a *ThreadAgent) StartedOf(component string) int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.started[component]
}

// TotalLive returns the live thread count across all components.
func (a *ThreadAgent) TotalLive() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.total
}

// All returns a copy of the per-component live counts.
func (a *ThreadAgent) All() map[string]int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make(map[string]int64, len(a.live))
	for c, n := range a.live {
		out[c] = n
	}
	return out
}

// ObjectName implements Agent.
func (a *ThreadAgent) ObjectName() jmx.ObjectName { return AgentName("Thread") }

// Bean implements Agent.
func (a *ThreadAgent) Bean() *jmx.Bean { return a.bean }

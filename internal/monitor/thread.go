package monitor

import (
	"sync"
	"sync/atomic"

	"repro/internal/jmx"
	"repro/internal/metrics"
)

// threadCell tracks one component's thread counts with atomics so starts
// and finishes from concurrent requests never serialise.
type threadCell struct {
	live    atomic.Int64
	started atomic.Int64
}

// ThreadAgent tracks live threads per component. Unterminated threads are
// one of the classic aging vectors the paper lists; a thread-leaking
// component shows a monotonically growing live count here while healthy
// components return to their baseline after each request.
type ThreadAgent struct {
	bean *jmx.Bean

	cells sync.Map // component name -> *threadCell
}

// NewThreadAgent creates an empty thread accounting agent.
func NewThreadAgent() *ThreadAgent {
	a := &ThreadAgent{}
	a.bean = jmx.NewBean("per-component live thread monitoring agent").
		Attr("TotalLive", "live threads across all components", func() any { return a.TotalLive() }).
		Op("LiveOf", "live threads owned by the named component", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.LiveOf(name), nil
		}).
		Op("All", "live threads per component", func(...any) (any, error) {
			return a.All(), nil
		})
	return a
}

// ThreadStarted records component starting a thread.
func (a *ThreadAgent) ThreadStarted(component string) {
	c := metrics.LoadOrCreate(&a.cells, component, func() *threadCell { return &threadCell{} })
	c.live.Add(1)
	c.started.Add(1)
}

// ThreadFinished records a thread of component terminating. Finishing more
// threads than were started panics: it means the instrumentation is
// miscounting, which must not be papered over.
func (a *ThreadAgent) ThreadFinished(component string) {
	v, ok := a.cells.Load(component)
	if !ok {
		panic("monitor: ThreadFinished without matching ThreadStarted for " + component)
	}
	c := v.(*threadCell)
	for {
		l := c.live.Load()
		if l == 0 {
			panic("monitor: ThreadFinished without matching ThreadStarted for " + component)
		}
		if c.live.CompareAndSwap(l, l-1) {
			break
		}
	}
}

// LiveOf returns the live thread count of component.
func (a *ThreadAgent) LiveOf(component string) int64 {
	if v, ok := a.cells.Load(component); ok {
		return v.(*threadCell).live.Load()
	}
	return 0
}

// StartedOf returns how many threads component has ever started.
func (a *ThreadAgent) StartedOf(component string) int64 {
	if v, ok := a.cells.Load(component); ok {
		return v.(*threadCell).started.Load()
	}
	return 0
}

// TotalLive returns the live thread count across all components. It is
// the sum of the per-component cells — each non-negative by the
// ThreadFinished CAS — so the total can never transiently read negative
// the way a separately maintained global counter could.
func (a *ThreadAgent) TotalLive() int64 {
	var n int64
	a.cells.Range(func(_, v any) bool {
		n += v.(*threadCell).live.Load()
		return true
	})
	return n
}

// All returns the per-component live counts (components whose threads all
// terminated are omitted).
func (a *ThreadAgent) All() map[string]int64 {
	out := make(map[string]int64)
	a.cells.Range(func(k, v any) bool {
		if n := v.(*threadCell).live.Load(); n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// ObjectName implements Agent.
func (a *ThreadAgent) ObjectName() jmx.ObjectName { return AgentName("Thread") }

// Bean implements Agent.
func (a *ThreadAgent) Bean() *jmx.Bean { return a.bean }

// Package monitor implements the JMX Monitoring Agents of the paper's
// architecture: the probes that read resource state on demand when an
// Aspect Component asks, and expose themselves as MBeans so the manager
// and the front-end can discover and operate them at runtime.
//
// The paper ships "a limited set of Monitoring Agents by every resource
// under monitoring"; this package provides agents for heap memory, per-
// component object size, CPU time, live threads, and invocations. Each is
// independent of the aspects that consume it — exactly the JMX decoupling
// the paper emphasises (replacing an agent never requires changing an AC).
//
// Concurrency contract: the recording entry points the AC's advice calls
// on every woven execution (InvocationAgent.Record, CPUAgent.AddTime,
// ThreadAgent spawns/exits) are lock-free — each maps component names to
// padded atomic cells through a sync.Map, whose read path is a lock-free
// hash lookup once a component has been seen, so concurrent recorders
// never serialise. Read-side accessors and the JMX beans may run from any
// goroutine concurrently with recording; they observe monotone counter
// states, not cross-component atomic snapshots. Registration
// (RegisterTarget and friends) is the only mutating cold path.
package monitor

import (
	"fmt"

	"repro/internal/jmx"
)

// Domain is the JMX domain monitoring agents register under.
const Domain = "monitoring"

// Agent is implemented by every monitoring agent: a stable object name and
// a management bean.
type Agent interface {
	// ObjectName returns the agent's JMX name.
	ObjectName() jmx.ObjectName
	// Bean returns the agent's management interface.
	Bean() *jmx.Bean
}

// AgentName builds the canonical object name for a named agent.
func AgentName(agent string) jmx.ObjectName {
	return jmx.MustObjectName(fmt.Sprintf("%s:agent=%s", Domain, agent))
}

// QueryAllAgents is the pattern matching every monitoring agent.
func QueryAllAgents() jmx.ObjectName {
	return jmx.MustObjectName(Domain + ":agent=*,*")
}

// RegisterAll registers every agent with the server, undoing earlier
// registrations on failure so the server is left unchanged.
func RegisterAll(server *jmx.Server, agents ...Agent) error {
	var done []jmx.ObjectName
	for _, a := range agents {
		if err := server.Register(a.ObjectName(), a.Bean()); err != nil {
			for _, n := range done {
				_ = server.Unregister(n)
			}
			return err
		}
		done = append(done, a.ObjectName())
	}
	return nil
}

package monitor

import (
	"sync"
	"sync/atomic"

	"repro/internal/jmx"
	"repro/internal/metrics"
)

// handleCell tracks one component's handle counts with atomics so opens
// and closes from concurrent requests never serialise.
type handleCell struct {
	live   atomic.Int64
	opened atomic.Int64
}

// HandleAgent tracks live resource handles per component: database
// connections held past their request, file descriptors, session handles —
// the non-heap leak vectors the aging literature catalogues next to memory.
// A handle-leaking component shows a monotonically growing live count here
// while healthy components return every handle they open.
type HandleAgent struct {
	bean *jmx.Bean

	cells sync.Map // component name -> *handleCell
}

// NewHandleAgent creates an empty handle accounting agent.
func NewHandleAgent() *HandleAgent {
	a := &HandleAgent{}
	a.bean = jmx.NewBean("per-component live resource-handle monitoring agent").
		Attr("TotalLive", "live handles across all components", func() any { return a.TotalLive() }).
		Op("LiveOf", "live handles owned by the named component", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.LiveOf(name), nil
		}).
		Op("All", "live handles per component", func(...any) (any, error) {
			return a.All(), nil
		})
	return a
}

// HandleOpened records component acquiring a handle.
func (a *HandleAgent) HandleOpened(component string) {
	c := metrics.LoadOrCreate(&a.cells, component, func() *handleCell { return &handleCell{} })
	c.live.Add(1)
	c.opened.Add(1)
}

// HandleClosed records a handle of component being released. Closing more
// handles than were opened panics: it means the instrumentation is
// miscounting, which must not be papered over.
func (a *HandleAgent) HandleClosed(component string) {
	v, ok := a.cells.Load(component)
	if !ok {
		panic("monitor: HandleClosed without matching HandleOpened for " + component)
	}
	c := v.(*handleCell)
	for {
		l := c.live.Load()
		if l == 0 {
			panic("monitor: HandleClosed without matching HandleOpened for " + component)
		}
		if c.live.CompareAndSwap(l, l-1) {
			break
		}
	}
}

// LiveOf returns the live handle count of component.
func (a *HandleAgent) LiveOf(component string) int64 {
	if v, ok := a.cells.Load(component); ok {
		return v.(*handleCell).live.Load()
	}
	return 0
}

// OpenedOf returns how many handles component has ever opened.
func (a *HandleAgent) OpenedOf(component string) int64 {
	if v, ok := a.cells.Load(component); ok {
		return v.(*handleCell).opened.Load()
	}
	return 0
}

// TotalLive returns the live handle count across all components. It is the
// sum of the per-component cells — each non-negative by the HandleClosed
// CAS — so the total can never transiently read negative the way a
// separately maintained global counter could.
func (a *HandleAgent) TotalLive() int64 {
	var n int64
	a.cells.Range(func(_, v any) bool {
		n += v.(*handleCell).live.Load()
		return true
	})
	return n
}

// All returns the per-component live counts (components that closed every
// handle are omitted).
func (a *HandleAgent) All() map[string]int64 {
	out := make(map[string]int64)
	a.cells.Range(func(k, v any) bool {
		if n := v.(*handleCell).live.Load(); n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// ObjectName implements Agent.
func (a *HandleAgent) ObjectName() jmx.ObjectName { return AgentName("Handle") }

// Bean implements Agent.
func (a *HandleAgent) Bean() *jmx.Bean { return a.bean }

package monitor

import (
	"testing"
	"time"

	"repro/internal/jmx"
	"repro/internal/jvmheap"
	"repro/internal/objsize"
)

func TestRegisterAllAndQuery(t *testing.T) {
	server := jmx.NewServer(nil)
	heap := jvmheap.New(1<<20, nil)
	agents := []Agent{
		NewMemoryAgent(heap),
		NewObjectSizeAgent(objsize.Transitive),
		NewCPUAgent(),
		NewThreadAgent(),
		NewInvocationAgent(),
	}
	if err := RegisterAll(server, agents...); err != nil {
		t.Fatal(err)
	}
	found := server.Query(QueryAllAgents())
	if len(found) != len(agents) {
		t.Fatalf("discovered %d agents, want %d", len(found), len(agents))
	}
}

func TestRegisterAllRollsBack(t *testing.T) {
	server := jmx.NewServer(nil)
	cpu := NewCPUAgent()
	// Pre-register a conflicting name so the second registration fails.
	if err := server.Register(AgentName("Thread"), jmx.NewBean("conflict")); err != nil {
		t.Fatal(err)
	}
	err := RegisterAll(server, cpu, NewThreadAgent())
	if err == nil {
		t.Fatal("RegisterAll succeeded despite conflict")
	}
	if server.IsRegistered(cpu.ObjectName()) {
		t.Fatal("partial registration not rolled back")
	}
}

func TestMemoryAgent(t *testing.T) {
	heap := jvmheap.New(1000, nil)
	a := NewMemoryAgent(heap)
	if a.Heap() != heap {
		t.Fatal("Heap accessor broken")
	}
	if err := heap.Allocate("comp", 200); err != nil {
		t.Fatal(err)
	}
	used, err := a.Bean().GetAttribute("Used")
	if err != nil || used.(int64) != 200 {
		t.Fatalf("Used = %v, %v", used, err)
	}
	got, err := a.Bean().Invoke("RetainedBy", "comp")
	if err != nil || got.(int64) != 200 {
		t.Fatalf("RetainedBy = %v, %v", got, err)
	}
	freed, err := a.Bean().Invoke("FreeAll", "comp")
	if err != nil || freed.(int64) != 200 {
		t.Fatalf("FreeAll = %v, %v", freed, err)
	}
	if _, err := a.Bean().Invoke("RetainedBy"); err == nil {
		t.Fatal("RetainedBy with no args should fail")
	}
	if _, err := a.Bean().Invoke("RetainedBy", 7); err == nil {
		t.Fatal("RetainedBy with non-string should fail")
	}
	if _, err := a.Bean().Invoke("GC"); err != nil {
		t.Fatal(err)
	}
	if cap, _ := a.Bean().GetAttribute("Capacity"); cap.(int64) != 1000 {
		t.Fatalf("Capacity = %v", cap)
	}
}

func TestObjectSizeAgent(t *testing.T) {
	a := NewObjectSizeAgent(objsize.OneLevel)
	type comp struct{ leak []byte }
	c := &comp{leak: make([]byte, 4096)}
	a.RegisterTarget("tpcw.A", c)
	n, err := a.Measure("tpcw.A")
	if err != nil || n < 4096 {
		t.Fatalf("Measure = %d, %v", n, err)
	}
	c.leak = append(c.leak, make([]byte, 4096)...)
	n2, _ := a.Measure("tpcw.A")
	if n2 <= n {
		t.Fatalf("size did not grow: %d -> %d", n, n2)
	}
	if _, err := a.Measure("ghost"); err == nil {
		t.Fatal("Measure of unknown target succeeded")
	}
	all := a.MeasureAll()
	if len(all) != 1 || all["tpcw.A"] != n2 {
		t.Fatalf("MeasureAll = %v", all)
	}
	via, err := a.Bean().Invoke("Measure", "tpcw.A")
	if err != nil || via.(int64) != n2 {
		t.Fatalf("bean Measure = %v, %v", via, err)
	}
	if pol, _ := a.Bean().GetAttribute("Policy"); pol.(string) != "one-level" {
		t.Fatalf("Policy = %v", pol)
	}
	a.UnregisterTarget("tpcw.A")
	if len(a.Components()) != 0 {
		t.Fatal("UnregisterTarget left target behind")
	}
}

func TestObjectSizeAgentNilTargetPanics(t *testing.T) {
	a := NewObjectSizeAgent(objsize.Transitive)
	defer func() {
		if recover() == nil {
			t.Fatal("nil target did not panic")
		}
	}()
	a.RegisterTarget("x", nil)
}

func TestCPUAgent(t *testing.T) {
	a := NewCPUAgent()
	a.AddTime("A", 100*time.Millisecond)
	a.AddTime("A", 200*time.Millisecond)
	a.AddTime("B", 50*time.Millisecond)
	if got := a.TimeOf("A"); got != 300*time.Millisecond {
		t.Fatalf("TimeOf(A) = %v", got)
	}
	if got := a.Total(); got != 350*time.Millisecond {
		t.Fatalf("Total = %v", got)
	}
	all := a.All()
	if len(all) != 2 || all["B"] != 50*time.Millisecond {
		t.Fatalf("All = %v", all)
	}
	sec, err := a.Bean().Invoke("TimeOf", "A")
	if err != nil || sec.(float64) != 0.3 {
		t.Fatalf("bean TimeOf = %v, %v", sec, err)
	}
	if tot, _ := a.Bean().GetAttribute("TotalSeconds"); tot.(float64) != 0.35 {
		t.Fatalf("TotalSeconds = %v", tot)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("negative AddTime did not panic")
		}
	}()
	a.AddTime("A", -time.Second)
}

func TestThreadAgent(t *testing.T) {
	a := NewThreadAgent()
	a.ThreadStarted("A")
	a.ThreadStarted("A")
	a.ThreadStarted("B")
	if a.LiveOf("A") != 2 || a.TotalLive() != 3 {
		t.Fatalf("live A=%d total=%d", a.LiveOf("A"), a.TotalLive())
	}
	a.ThreadFinished("A")
	if a.LiveOf("A") != 1 || a.StartedOf("A") != 2 {
		t.Fatalf("after finish: live=%d started=%d", a.LiveOf("A"), a.StartedOf("A"))
	}
	all := a.All()
	if all["A"] != 1 || all["B"] != 1 {
		t.Fatalf("All = %v", all)
	}
	n, err := a.Bean().Invoke("LiveOf", "B")
	if err != nil || n.(int64) != 1 {
		t.Fatalf("bean LiveOf = %v, %v", n, err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("unbalanced ThreadFinished did not panic")
		}
	}()
	a.ThreadFinished("ghost")
}

func TestInvocationAgent(t *testing.T) {
	a := NewInvocationAgent()
	a.Record("A", 10*time.Millisecond, false)
	a.Record("A", 20*time.Millisecond, true)
	a.Record("B", 5*time.Millisecond, false)
	st := a.StatsOf("A")
	if st.Count != 2 || st.Failures != 1 || st.TotalDuration != 30*time.Millisecond {
		t.Fatalf("StatsOf(A) = %+v", st)
	}
	if st.MeanDuration() != 15*time.Millisecond {
		t.Fatalf("MeanDuration = %v", st.MeanDuration())
	}
	if (InvocationStats{}).MeanDuration() != 0 {
		t.Fatal("empty MeanDuration != 0")
	}
	if a.Total() != 3 {
		t.Fatalf("Total = %d", a.Total())
	}
	comps := a.Components()
	if len(comps) != 2 || comps[0] != "A" || comps[1] != "B" {
		t.Fatalf("Components = %v", comps)
	}
	if ghost := a.StatsOf("ghost"); ghost.Count != 0 {
		t.Fatalf("ghost stats = %+v", ghost)
	}
	n, err := a.Bean().Invoke("CountOf", "A")
	if err != nil || n.(int64) != 2 {
		t.Fatalf("bean CountOf = %v, %v", n, err)
	}
	allAny, err := a.Bean().Invoke("All")
	if err != nil || allAny.(map[string]int64)["B"] != 1 {
		t.Fatalf("bean All = %v, %v", allAny, err)
	}
}

func TestAgentNames(t *testing.T) {
	if got := AgentName("Memory").String(); got != "monitoring:agent=Memory" {
		t.Fatalf("AgentName = %q", got)
	}
	if !QueryAllAgents().Matches(AgentName("CPU")) {
		t.Fatal("QueryAllAgents does not match agent names")
	}
}

func TestInvocationErrorArgs(t *testing.T) {
	a := NewInvocationAgent()
	if _, err := a.Bean().Invoke("CountOf"); err == nil {
		t.Fatal("CountOf without args should fail")
	}
	if _, err := a.Bean().Invoke("CountOf", 3); err == nil {
		t.Fatal("CountOf with int should fail")
	}
}

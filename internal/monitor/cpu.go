package monitor

import (
	"sync"
	"time"

	"repro/internal/jmx"
)

// CPUAgent accumulates per-component CPU time. In the simulation the
// container charges each request's modelled service time to the component
// that executed it; a CPU-hogging aging bug therefore shows up as one
// component's share growing without a matching workload change — the CPU
// analogue of the paper's future-work direction.
type CPUAgent struct {
	bean *jmx.Bean

	mu    sync.RWMutex
	times map[string]time.Duration
	total time.Duration
}

// NewCPUAgent creates an empty CPU accounting agent.
func NewCPUAgent() *CPUAgent {
	a := &CPUAgent{times: make(map[string]time.Duration)}
	a.bean = jmx.NewBean("per-component CPU time monitoring agent").
		Attr("TotalSeconds", "CPU seconds charged across all components", func() any {
			return a.Total().Seconds()
		}).
		Op("TimeOf", "CPU seconds charged to the named component", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.TimeOf(name).Seconds(), nil
		}).
		Op("All", "CPU seconds per component", func(...any) (any, error) {
			out := make(map[string]float64)
			for c, d := range a.All() {
				out[c] = d.Seconds()
			}
			return out, nil
		})
	return a
}

// AddTime charges d of CPU time to component.
func (a *CPUAgent) AddTime(component string, d time.Duration) {
	if d < 0 {
		panic("monitor: negative CPU time")
	}
	a.mu.Lock()
	a.times[component] += d
	a.total += d
	a.mu.Unlock()
}

// TimeOf returns the CPU time charged to component.
func (a *CPUAgent) TimeOf(component string) time.Duration {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.times[component]
}

// Total returns the CPU time charged across all components.
func (a *CPUAgent) Total() time.Duration {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return a.total
}

// All returns a copy of the per-component CPU times.
func (a *CPUAgent) All() map[string]time.Duration {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make(map[string]time.Duration, len(a.times))
	for c, d := range a.times {
		out[c] = d
	}
	return out
}

// ObjectName implements Agent.
func (a *CPUAgent) ObjectName() jmx.ObjectName { return AgentName("CPU") }

// Bean implements Agent.
func (a *CPUAgent) Bean() *jmx.Bean { return a.bean }

package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jmx"
	"repro/internal/metrics"
)

// CPUAgent accumulates per-component CPU time. In the simulation the
// container charges each request's modelled service time to the component
// that executed it; a CPU-hogging aging bug therefore shows up as one
// component's share growing without a matching workload change — the CPU
// analogue of the paper's future-work direction. Charging is lock-free:
// per-component atomic nanosecond accumulators behind a sync.Map.
type CPUAgent struct {
	bean *jmx.Bean

	times sync.Map // component name -> *atomic.Int64 (nanoseconds)
	total atomic.Int64
}

// NewCPUAgent creates an empty CPU accounting agent.
func NewCPUAgent() *CPUAgent {
	a := &CPUAgent{}
	a.bean = jmx.NewBean("per-component CPU time monitoring agent").
		Attr("TotalSeconds", "CPU seconds charged across all components", func() any {
			return a.Total().Seconds()
		}).
		Op("TimeOf", "CPU seconds charged to the named component", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.TimeOf(name).Seconds(), nil
		}).
		Op("All", "CPU seconds per component", func(...any) (any, error) {
			out := make(map[string]float64)
			for c, d := range a.All() {
				out[c] = d.Seconds()
			}
			return out, nil
		})
	return a
}

// AddTime charges d of CPU time to component.
func (a *CPUAgent) AddTime(component string, d time.Duration) {
	if d < 0 {
		panic("monitor: negative CPU time")
	}
	cell := metrics.LoadOrCreate(&a.times, component, func() *atomic.Int64 { return new(atomic.Int64) })
	cell.Add(int64(d))
	a.total.Add(int64(d))
}

// TimeOf returns the CPU time charged to component.
func (a *CPUAgent) TimeOf(component string) time.Duration {
	if v, ok := a.times.Load(component); ok {
		return time.Duration(v.(*atomic.Int64).Load())
	}
	return 0
}

// Total returns the CPU time charged across all components.
func (a *CPUAgent) Total() time.Duration {
	return time.Duration(a.total.Load())
}

// All returns a copy of the per-component CPU times.
func (a *CPUAgent) All() map[string]time.Duration {
	out := make(map[string]time.Duration)
	a.times.Range(func(k, v any) bool {
		out[k.(string)] = time.Duration(v.(*atomic.Int64).Load())
		return true
	})
	return out
}

// ObjectName implements Agent.
func (a *CPUAgent) ObjectName() jmx.ObjectName { return AgentName("CPU") }

// Bean implements Agent.
func (a *CPUAgent) Bean() *jmx.Bean { return a.bean }

package monitor

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jmx"
	"repro/internal/metrics"
)

// InvocationStats aggregates the executions of one component.
type InvocationStats struct {
	Count         int64
	Failures      int64
	TotalDuration time.Duration
}

// MeanDuration returns the mean execution time (0 when never invoked).
func (s InvocationStats) MeanDuration() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.TotalDuration / time.Duration(s.Count)
}

// invocationCell holds one component's live counters. All fields are
// atomic so Record — which runs inside the AC's after-advice on every
// woven execution — touches no lock.
type invocationCell struct {
	count    atomic.Int64
	failures atomic.Int64
	durNanos atomic.Int64
	latNanos atomic.Int64
}

// InvocationAgent counts component executions and their outcomes. Its
// counters are the usage-frequency axis of the paper's resource-consumption
// × usage map, and its failure counts feed the Pinpoint-style baseline.
// Recording is lock-free: components map to atomic counter cells through a
// sync.Map, whose read path is a lock-free hash lookup once a component
// has been seen.
type InvocationAgent struct {
	bean *jmx.Bean

	stats sync.Map // component name -> *invocationCell
}

// NewInvocationAgent creates an empty invocation accounting agent.
func NewInvocationAgent() *InvocationAgent {
	a := &InvocationAgent{}
	a.bean = jmx.NewBean("per-component invocation monitoring agent").
		Attr("Total", "executions across all components", func() any { return a.Total() }).
		Attr("Components", "component names seen so far", func() any { return a.Components() }).
		Op("CountOf", "executions of the named component", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.StatsOf(name).Count, nil
		}).
		Op("All", "execution counts per component", func(...any) (any, error) {
			out := make(map[string]int64)
			for c, st := range a.All() {
				out[c] = st.Count
			}
			return out, nil
		})
	return a
}

// Record notes one execution of component taking d, failed or not.
func (a *InvocationAgent) Record(component string, d time.Duration, failed bool) {
	c := metrics.LoadOrCreate(&a.stats, component, func() *invocationCell { return &invocationCell{} })
	c.count.Add(1)
	if failed {
		c.failures.Add(1)
	}
	c.durNanos.Add(int64(d))
}

// RecordLatency notes the response latency of one execution of component.
// Latency is recorded separately from Record's duration: duration is the
// CPU cost the execution consumed, latency is the wall time the caller
// waited — contention and queueing widen the gap, which is exactly the
// aging signal the latency-trend detector watches.
func (a *InvocationAgent) RecordLatency(component string, d time.Duration) {
	c := metrics.LoadOrCreate(&a.stats, component, func() *invocationCell { return &invocationCell{} })
	c.latNanos.Add(int64(d))
}

// LatencyOf returns the cumulative response latency recorded for
// component. Like the CPU agent's cumulative time, the collector samples
// it per round and the detector normalises by the usage delta.
func (a *InvocationAgent) LatencyOf(component string) time.Duration {
	if v, ok := a.stats.Load(component); ok {
		return time.Duration(v.(*invocationCell).latNanos.Load())
	}
	return 0
}

// StatsOf returns a copy of the stats of component.
func (a *InvocationAgent) StatsOf(component string) InvocationStats {
	if v, ok := a.stats.Load(component); ok {
		c := v.(*invocationCell)
		return InvocationStats{
			Count:         c.count.Load(),
			Failures:      c.failures.Load(),
			TotalDuration: time.Duration(c.durNanos.Load()),
		}
	}
	return InvocationStats{}
}

// Total returns the execution count across all components.
func (a *InvocationAgent) Total() int64 {
	var n int64
	a.stats.Range(func(_, v any) bool {
		n += v.(*invocationCell).count.Load()
		return true
	})
	return n
}

// Components lists component names seen so far, sorted.
func (a *InvocationAgent) Components() []string {
	var out []string
	a.stats.Range(func(k, _ any) bool {
		out = append(out, k.(string))
		return true
	})
	sort.Strings(out)
	return out
}

// All returns a copy of the per-component stats.
func (a *InvocationAgent) All() map[string]InvocationStats {
	out := make(map[string]InvocationStats)
	a.stats.Range(func(k, v any) bool {
		c := v.(*invocationCell)
		out[k.(string)] = InvocationStats{
			Count:         c.count.Load(),
			Failures:      c.failures.Load(),
			TotalDuration: time.Duration(c.durNanos.Load()),
		}
		return true
	})
	return out
}

// ObjectName implements Agent.
func (a *InvocationAgent) ObjectName() jmx.ObjectName { return AgentName("Invocation") }

// Bean implements Agent.
func (a *InvocationAgent) Bean() *jmx.Bean { return a.bean }

package monitor

import (
	"sort"
	"sync"
	"time"

	"repro/internal/jmx"
)

// InvocationStats aggregates the executions of one component.
type InvocationStats struct {
	Count         int64
	Failures      int64
	TotalDuration time.Duration
}

// MeanDuration returns the mean execution time (0 when never invoked).
func (s InvocationStats) MeanDuration() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.TotalDuration / time.Duration(s.Count)
}

// InvocationAgent counts component executions and their outcomes. Its
// counters are the usage-frequency axis of the paper's resource-consumption
// × usage map, and its failure counts feed the Pinpoint-style baseline.
type InvocationAgent struct {
	bean *jmx.Bean

	mu    sync.RWMutex
	stats map[string]*InvocationStats
}

// NewInvocationAgent creates an empty invocation accounting agent.
func NewInvocationAgent() *InvocationAgent {
	a := &InvocationAgent{stats: make(map[string]*InvocationStats)}
	a.bean = jmx.NewBean("per-component invocation monitoring agent").
		Attr("Total", "executions across all components", func() any { return a.Total() }).
		Attr("Components", "component names seen so far", func() any { return a.Components() }).
		Op("CountOf", "executions of the named component", func(args ...any) (any, error) {
			name, err := oneStringArg(args)
			if err != nil {
				return nil, err
			}
			return a.StatsOf(name).Count, nil
		}).
		Op("All", "execution counts per component", func(...any) (any, error) {
			out := make(map[string]int64)
			for c, st := range a.All() {
				out[c] = st.Count
			}
			return out, nil
		})
	return a
}

// Record notes one execution of component taking d, failed or not.
func (a *InvocationAgent) Record(component string, d time.Duration, failed bool) {
	a.mu.Lock()
	st, ok := a.stats[component]
	if !ok {
		st = &InvocationStats{}
		a.stats[component] = st
	}
	st.Count++
	if failed {
		st.Failures++
	}
	st.TotalDuration += d
	a.mu.Unlock()
}

// StatsOf returns a copy of the stats of component.
func (a *InvocationAgent) StatsOf(component string) InvocationStats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	if st, ok := a.stats[component]; ok {
		return *st
	}
	return InvocationStats{}
}

// Total returns the execution count across all components.
func (a *InvocationAgent) Total() int64 {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var n int64
	for _, st := range a.stats {
		n += st.Count
	}
	return n
}

// Components lists component names seen so far, sorted.
func (a *InvocationAgent) Components() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.stats))
	for c := range a.stats {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// All returns a copy of the per-component stats.
func (a *InvocationAgent) All() map[string]InvocationStats {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make(map[string]InvocationStats, len(a.stats))
	for c, st := range a.stats {
		out[c] = *st
	}
	return out
}

// ObjectName implements Agent.
func (a *InvocationAgent) ObjectName() jmx.ObjectName { return AgentName("Invocation") }

// Bean implements Agent.
func (a *InvocationAgent) Bean() *jmx.Bean { return a.bean }

// Package detect implements online software-aging detection over the
// streaming metrics the monitoring pipeline records: an incremental
// Mann-Kendall/Sen-slope trend detector (OnlineTrend), a CHAOS-style
// sliding-window entropy detector over the per-component consumption
// distribution (EntropyDetector), and a workload-shift guard that watches
// the per-flow usage mix so a traffic change does not masquerade as aging
// (ShiftGuard). A Monitor composes the three per resource and publishes a
// Report after every sampling round.
//
// Concurrency contract: all detector state is owned by the single
// goroutine that calls Observe — in this repo the manager's sampling
// round, which is already serialised by the manager's sampleMu and holds
// no lock the invocation-recording hot path takes. The only cross-
// goroutine surface is the published *Report behind an atomic.Pointer:
// Latest never blocks and never observes a half-built report, so live
// root-cause queries read verdicts concurrently with sampling at zero
// contention. Reports are recycled through a fixed ring so a steady-state
// round produces zero garbage; see Report for the retention contract a
// long-holding consumer must respect.
package detect

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/metrics"
)

// Config tunes a Monitor. The zero value selects the defaults documented
// on every field.
type Config struct {
	// Window is the sliding-window size, in sampling rounds, of the
	// per-component trend detectors and the entropy detector
	// (default 40; at the manager's default 30s sampling interval that
	// is 20 minutes of history).
	Window int
	// Alpha is the Mann-Kendall significance level (default 0.01 — the
	// online detectors test every round, so they need a stricter level
	// than an offline one-shot query to keep the family-wise false-alarm
	// rate down).
	Alpha float64
	// MinSlope is the smallest Sen slope (units per second) that counts
	// as aging; significant trends below it are reported but do not
	// alarm (default 0: any significant increase).
	MinSlope float64
	// MinSamples is the minimum number of window samples before a trend
	// may alarm (default 10).
	MinSamples int
	// Consecutive is how many consecutive alarming rounds are required
	// before a verdict is raised (default 3); it debounces borderline
	// significances that flicker at the alpha boundary.
	Consecutive int
	// PerInvocation, when true, tracks each component's consumption per
	// invocation (the round's consumption delta divided by its usage
	// delta) instead of the raw level. This is the workload
	// normalisation for cumulative resources such as CPU time, whose
	// raw series grows with traffic whether or not anything ages.
	PerInvocation bool
	// ShiftThreshold is the total-variation distance in the usage mix
	// above which a round counts as a workload shift (default 0.15).
	ShiftThreshold float64
	// ShiftHold is how many calm rounds must pass after a shift before
	// alarms are re-enabled (default 5).
	ShiftHold int
	// ShiftEWMA is the adaptation rate of the guard's reference mix
	// (default 0.2).
	ShiftEWMA float64
	// ShiftNoiseMargin scales the guard's adaptive threshold floor
	// (default DefaultShiftNoiseMargin); see ShiftGuard for the noise
	// model.
	ShiftNoiseMargin float64
	// ChangePoint additionally runs a Page-Hinkley level-shift detector
	// per component over the same tracked quantity as the trend detector.
	// The Mann-Kendall trend (with the CPU slope floor) is blind to a
	// resource that steps up once and then stays flat — a constant-cost
	// CPU hog switching on — which is exactly what Page-Hinkley catches.
	// Off by default; the trend-only behaviour is unchanged.
	ChangePoint bool
	// PHDelta is the Page-Hinkley drift tolerance in baseline standard
	// deviations (default DefaultPHDelta).
	PHDelta float64
	// PHLambda is the Page-Hinkley alarm threshold in baseline standard
	// deviations (default DefaultPHLambda).
	PHLambda float64
	// PHWarmup is the number of samples the Page-Hinkley baseline is
	// estimated over (default DefaultPHWarmup).
	PHWarmup int
	// ReportRetention is how many sampling rounds a *Report obtained from
	// Latest (or returned by Observe) remains valid after publication.
	// Reports are recycled through a ring of this size so a steady-state
	// round produces zero garbage; a consumer that holds a report for
	// longer than ReportRetention-1 subsequent rounds must Clone it
	// (default DefaultReportRetention, minimum 2).
	ReportRetention int
}

// DefaultReportRetention is the default size of the recycled report ring.
// At the default 30s sampling cadence it gives consumers ~3.5 minutes to
// read a published report before its buffer is rewritten.
const DefaultReportRetention = 8

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 40
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		c.Alpha = 0.01
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Consecutive <= 0 {
		c.Consecutive = 3
	}
	// The shift-guard defaults mirror NewShiftGuard's own fallbacks so
	// Config() reports the values the guard actually runs with.
	if c.ShiftThreshold <= 0 || c.ShiftThreshold >= 1 {
		c.ShiftThreshold = 0.15
	}
	if c.ShiftHold <= 0 {
		c.ShiftHold = 5
	}
	if c.ShiftEWMA <= 0 || c.ShiftEWMA > 1 {
		c.ShiftEWMA = 0.2
	}
	if c.ShiftNoiseMargin <= 0 {
		c.ShiftNoiseMargin = DefaultShiftNoiseMargin
	}
	if c.ReportRetention <= 0 {
		c.ReportRetention = DefaultReportRetention
	}
	if c.ReportRetention < 2 {
		c.ReportRetention = 2
	}
	return c
}

// Observation is one component's cumulative state at a sampling round.
type Observation struct {
	// Component is the component name.
	Component string
	// Value is the cumulative consumption level of the watched resource
	// (bytes for memory, seconds for CPU, count for threads).
	Value float64
	// Usage is the component's cumulative invocation count, charged per
	// request flow by the join-point taps.
	Usage float64
}

// Verdict is one component's detection state in a Report.
type Verdict struct {
	// Component is the component name.
	Component string
	// Alarm is true when the component is currently flagged as aging.
	Alarm bool
	// Score ranks alarming components (the Sen slope of the watched
	// series, units per second; 0 when not alarming).
	Score float64
	// Trend is the current Mann-Kendall verdict over the window.
	Trend metrics.TrendResult
	// Streak is how many consecutive rounds the raw alarm condition has
	// held.
	Streak int
	// Samples is the current trend-window fill.
	Samples int
	// Share is the component's EWMA share of the resource's total
	// consumption delta (the entropy detector's attribution signal).
	Share float64
	// FirstAlarmRound is the 1-based round at which the component first
	// alarmed (0 when it never has).
	FirstAlarmRound int64
	// ChangePoint is true when the Page-Hinkley level-shift detector is
	// tripped for the component (only with Config.ChangePoint). An alarm
	// with ChangePoint set and an insignificant Trend is a step, not a
	// drift; its Score is the PH excursion in baseline standard
	// deviations rather than a Sen slope.
	ChangePoint bool
}

// Report is the Monitor's published state after a sampling round.
//
// Reports are recycled: the Monitor publishes from a ring of
// Config.ReportRetention buffers, so a *Report stays valid for at least
// ReportRetention-1 rounds after it was published and is then rewritten in
// place by a later round. Consumers that read the latest report promptly
// (the detector bank, live queries, the cluster fold) never notice;
// consumers that retain one across many rounds must Clone it.
type Report struct {
	// Resource names the watched resource.
	Resource string
	// Round is the 1-based number of observation rounds so far.
	Round int64
	// Time is the round's sampling instant.
	Time time.Time
	// Suppressed is true while the shift guard holds detection down.
	Suppressed bool
	// ShiftDistance is the latest usage-mix total-variation distance.
	ShiftDistance float64
	// ShiftRounds counts rounds observed in the shifting state.
	ShiftRounds int64
	// Entropy is the latest normalised consumption entropy. It is
	// meaningful only when EntropyObserved is true; before any
	// consuming round (or right after a shift reset) it is zero, which
	// must not be read as full concentration.
	Entropy float64
	// EntropyObserved reports whether Entropy reflects a measured
	// round.
	EntropyObserved bool
	// EntropyAlarm is true when the entropy shows a significant
	// decreasing trend (CHAOS concentration signal).
	EntropyAlarm bool
	// EntropySuspect is the component the entropy alarm attributes (the
	// largest consumption-delta share), "" when not alarming.
	EntropySuspect string
	// Components holds one verdict per component, highest score first.
	Components []Verdict
}

// Clone returns an independent copy of the report, for consumers that
// keep it beyond the recycled ring's retention window.
func (r *Report) Clone() *Report {
	c := *r
	c.Components = append([]Verdict(nil), r.Components...)
	return &c
}

// Alarms returns the verdicts currently alarming, highest score first.
func (r *Report) Alarms() []Verdict {
	var out []Verdict
	for _, v := range r.Components {
		if v.Alarm {
			out = append(out, v)
		}
	}
	return out
}

// Top returns the highest-scoring alarming verdict.
func (r *Report) Top() (Verdict, bool) {
	a := r.Alarms()
	if len(a) == 0 {
		return Verdict{}, false
	}
	return a[0], true
}

// String renders the report as a table.
func (r *Report) String() string {
	var b strings.Builder
	entropy := "-"
	if r.EntropyObserved {
		entropy = fmt.Sprintf("%.3f", r.Entropy)
	}
	fmt.Fprintf(&b, "detect[%s] round=%d suppressed=%v shift=%.3f entropy=%s",
		r.Resource, r.Round, r.Suppressed, r.ShiftDistance, entropy)
	if r.EntropyAlarm {
		fmt.Fprintf(&b, " entropy-alarm(%s)", r.EntropySuspect)
	}
	b.WriteByte('\n')
	for i, v := range r.Components {
		cp := ""
		if v.ChangePoint {
			cp = " level-shift"
		}
		fmt.Fprintf(&b, "%2d. %-28s alarm=%-5v score=%10.4g z=%6.2f streak=%d n=%d share=%.3f%s\n",
			i+1, v.Component, v.Alarm, v.Score, v.Trend.Z, v.Streak, v.Samples, v.Share, cp)
	}
	return b.String()
}

// componentState is the Monitor's per-component detector state.
type componentState struct {
	trend      *OnlineTrend
	ph         *PageHinkley // nil unless Config.ChangePoint
	prevValue  float64
	prevUsage  float64
	havePrev   bool
	streak     int
	firstAlarm int64
	share      float64 // EWMA consumption-delta share
}

// Monitor composes the trend, entropy and shift detectors for one
// resource. Observe is single-owner (the sampling round); Latest is safe
// from any goroutine. "Single-owner" is a contract, not a serial-world
// assumption: owners may move between goroutines as long as calls never
// overlap — the cluster aggregator's parallel fold pool drives many
// monitors concurrently, one worker per node's bank at a time, and is
// exactly such an owner.
//
// A steady-state Observe round allocates nothing: the round's delta
// scratch, the guard's distributions, every detector's window state and
// the published Report itself are all reused (reports cycle through a
// ring of Config.ReportRetention buffers — see Report for the retention
// contract). The alloc soak test in this package pins that property.
type Monitor struct {
	resource string
	cfg      Config

	comps         map[string]*componentState
	entropy       *EntropyDetector
	entropyStreak int
	guard         *ShiftGuard
	rounds        int64
	shiftRounds   int64

	// Round scratch, reused across Observe calls.
	usageDeltas map[string]float64
	valueDeltas []float64

	// ring holds the recycled report buffers Observe publishes from.
	ring    []Report
	ringIdx int

	report atomic.Pointer[Report]
}

// NewMonitor creates a detector bank for one resource.
func NewMonitor(resource string, cfg Config) *Monitor {
	cfg = cfg.withDefaults()
	return &Monitor{
		resource:    resource,
		cfg:         cfg,
		comps:       make(map[string]*componentState),
		entropy:     NewEntropyDetector(cfg.Window, cfg.Alpha),
		guard:       NewShiftGuardMargin(cfg.ShiftThreshold, cfg.ShiftHold, cfg.ShiftEWMA, cfg.ShiftNoiseMargin),
		usageDeltas: make(map[string]float64),
		ring:        make([]Report, cfg.ReportRetention),
	}
}

// Canonical returns the configuration with all defaults applied — the
// form NewMonitor adopts and Config reports. Snapshot restores compare
// configurations in canonical form, since a Config and its defaulted
// twin construct identical monitors.
func (c Config) Canonical() Config { return c.withDefaults() }

// Resource returns the watched resource name.
func (m *Monitor) Resource() string { return m.resource }

// Config returns the effective (defaulted) configuration.
func (m *Monitor) Config() Config { return m.cfg }

// Rounds returns how many observation rounds have been absorbed.
func (m *Monitor) Rounds() int64 { return m.rounds }

// Latest returns the most recently published report (nil before the first
// round). It never blocks; the pointer is published atomically, and the
// report behind it stays valid for Config.ReportRetention-1 further
// rounds (Clone to keep it longer).
func (m *Monitor) Latest() *Report { return m.report.Load() }

// nextReport takes the next recycled report buffer from the ring and
// resets it for this round, keeping the Components backing array.
func (m *Monitor) nextReport() *Report {
	rep := &m.ring[m.ringIdx]
	m.ringIdx = (m.ringIdx + 1) % len(m.ring)
	comps := rep.Components[:0]
	*rep = Report{Components: comps}
	return rep
}

// Observe absorbs one sampling round and publishes a fresh Report. It
// must be called from a single goroutine (the manager's sampling round).
func (m *Monitor) Observe(now time.Time, obs []Observation) *Report {
	m.rounds++

	// Round deltas feed the shift guard (usage) and the entropy
	// detector (consumption). Both scratch structures are monitor-owned
	// and reused round over round.
	clear(m.usageDeltas)
	usageDeltas := m.usageDeltas
	if cap(m.valueDeltas) < len(obs) {
		m.valueDeltas = make([]float64, len(obs))
	}
	valueDeltas := m.valueDeltas[:len(obs)]
	for i := range valueDeltas {
		valueDeltas[i] = 0
	}
	var totalDelta float64
	for i, o := range obs {
		st := m.comps[o.Component]
		if st == nil {
			st = &componentState{trend: NewOnlineTrend(m.cfg.Window, m.cfg.Alpha)}
			if m.cfg.ChangePoint {
				st.ph = NewPageHinkley(m.cfg.PHDelta, m.cfg.PHLambda, m.cfg.PHWarmup)
			}
			m.comps[o.Component] = st
		}
		if st.havePrev {
			usageDeltas[o.Component] = o.Usage - st.prevUsage
			if d := o.Value - st.prevValue; d > 0 {
				valueDeltas[i] = d
				totalDelta += d
			}
		}
	}

	suppressed := m.guard.Observe(usageDeltas)

	// Feed the per-component trends. The tracked quantity is chosen to
	// be workload-invariant: the raw level for state resources, the
	// per-invocation mean for cumulative ones — so the window stays
	// valid across a shift and only the alarm decision is held down.
	for i, o := range obs {
		st := m.comps[o.Component]
		if st.havePrev {
			tracked, haveTracked := o.Value, true
			if m.cfg.PerInvocation {
				if du := o.Usage - st.prevUsage; du > 0 {
					tracked = (o.Value - st.prevValue) / du
				} else {
					haveTracked = false
				}
			}
			if haveTracked {
				st.trend.Push(now, tracked)
				if st.ph != nil {
					if suppressed {
						// A workload shift invalidates the level baseline
						// the step detector was calibrated against, just as
						// it invalidates the entropy window.
						st.ph.Reset()
					} else {
						st.ph.Push(tracked)
					}
				}
			}
			if totalDelta > 0 {
				st.share = 0.8*st.share + 0.2*(valueDeltas[i]/totalDelta)
			}
		}
		st.prevValue, st.prevUsage, st.havePrev = o.Value, o.Usage, true
	}

	// The entropy series is mix-sensitive by construction, so a shift
	// invalidates its window entirely; the guard resets it rather than
	// letting pre- and post-shift distributions blend into a fake trend.
	if suppressed {
		m.entropy.Reset()
		m.entropyStreak = 0
	} else if totalDelta > 0 {
		m.entropy.Observe(now, valueDeltas)
	}

	if suppressed {
		m.shiftRounds++
	}
	rep := m.nextReport()
	rep.Resource = m.resource
	rep.Round = m.rounds
	rep.Time = now
	rep.Suppressed = suppressed
	rep.ShiftDistance = m.guard.Distance()
	rep.ShiftRounds = m.shiftRounds
	if h, ok := m.entropy.Last(); ok {
		rep.Entropy = h
		rep.EntropyObserved = true
	}

	// Entropy alarm: significant concentration, debounced like the
	// per-component alarms, attributed to the dominant consumer.
	if !suppressed && m.entropy.Alarming() {
		m.entropyStreak++
	} else {
		m.entropyStreak = 0
	}
	if m.entropyStreak >= m.cfg.Consecutive {
		rep.EntropyAlarm = true
		var best string
		var bestShare float64
		for c, st := range m.comps {
			if st.share > bestShare {
				best, bestShare = c, st.share
			}
		}
		rep.EntropySuspect = best
	}

	for _, o := range obs {
		st := m.comps[o.Component]
		v := Verdict{
			Component: o.Component,
			Trend:     st.trend.Result(),
			Samples:   st.trend.Len(),
			Share:     st.share,
		}
		trendRaw := v.Trend.Direction == metrics.TrendIncreasing &&
			v.Trend.SenSlope > m.cfg.MinSlope &&
			v.Samples >= m.cfg.MinSamples
		cpRaw := st.ph != nil && st.ph.Tripped()
		v.ChangePoint = cpRaw
		if (trendRaw || cpRaw) && !suppressed {
			st.streak++
		} else {
			st.streak = 0
		}
		v.Streak = st.streak
		if st.streak >= m.cfg.Consecutive {
			v.Alarm = true
			if trendRaw {
				v.Score = v.Trend.SenSlope
			} else {
				// Step, not drift: rank by how far the level jumped.
				v.Score = st.ph.Magnitude()
			}
			if st.firstAlarm == 0 {
				st.firstAlarm = m.rounds
			}
		}
		v.FirstAlarmRound = st.firstAlarm
		rep.Components = append(rep.Components, v)
	}
	sortVerdicts(rep.Components)

	m.report.Store(rep)
	return rep
}

// sortVerdicts orders verdicts highest score first, ties by component
// name. It is a stable insertion sort: the slices are small (one entry
// per component) and mostly ordered round over round, and unlike
// sort.SliceStable it allocates nothing.
func sortVerdicts(vs []Verdict) {
	for i := 1; i < len(vs); i++ {
		for j := i; j > 0 && verdictBefore(&vs[j], &vs[j-1]); j-- {
			vs[j], vs[j-1] = vs[j-1], vs[j]
		}
	}
}

func verdictBefore(a, b *Verdict) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Component < b.Component
}

package detect

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestMonitorObserveSteadyStateAllocs is the zero-garbage contract of the
// monitoring plane: once every component has been seen and the windows
// are warm, a Monitor.Observe round must not allocate — the round
// scratch, the detector windows, the slope multisets and the published
// report ring are all reused. The long-run soak below keeps cycling a
// window-saturated monitor (with an alarming component present, so the
// significant-trend path is exercised too) and fails on any per-round
// garbage.
func TestMonitorObserveSteadyStateAllocs(t *testing.T) {
	const comps = 14
	m := NewMonitor("memory", Config{})
	obs := make([]Observation, comps)
	now := sim.Epoch
	round := 0
	step := func() {
		round++
		now = now.Add(30 * time.Second)
		for c := range obs {
			obs[c] = Observation{
				Component: names[c],
				Value:     float64(round) * float64(c+1),
				Usage:     float64(round) * 10,
			}
		}
		m.Observe(now, obs)
	}
	// Warm up past the window size so every ring buffer, tie table and
	// slope store has reached steady state, and alarms are live.
	for round < 3*m.Config().Window {
		step()
	}
	if rep := m.Latest(); len(rep.Alarms()) == 0 {
		t.Fatalf("soak premise broken: no component alarming at round %d\n%s", round, rep)
	}
	if allocs := testing.AllocsPerRun(500, step); allocs > 0 {
		t.Fatalf("steady-state Observe allocates %.2f objects per round", allocs)
	}
}

// TestMonitorObserveShiftResetAllocs drives the guard through a workload
// shift mid-soak: the entropy window reset and the suppression path must
// reuse state as well (Reset keeps buffers), so even shifting rounds stay
// allocation-free at steady state.
func TestMonitorObserveShiftResetAllocs(t *testing.T) {
	m := NewMonitor("cpu", Config{PerInvocation: true})
	now := sim.Epoch
	round := 0
	var cumA, cumB, usageA, usageB float64
	step := func() {
		round++
		now = now.Add(30 * time.Second)
		ua, ub := 90.0, 10.0
		if round%40 >= 20 { // mix flips every 20 rounds: the guard stays busy
			ua, ub = 10.0, 90.0
		}
		usageA += ua
		usageB += ub
		cumA += ua * 0.010
		cumB += ub * 0.020
		m.Observe(now, []Observation{
			{Component: "a", Value: cumA, Usage: usageA},
			{Component: "b", Value: cumB, Usage: usageB},
		})
	}
	for round < 120 {
		step()
	}
	if allocs := testing.AllocsPerRun(500, step); allocs > 0 {
		t.Fatalf("shifting-state Observe allocates %.2f objects per round", allocs)
	}
}

// TestReportRetentionRing pins the recycling contract: a report stays
// intact for ReportRetention-1 rounds after publication and is rewritten
// by the ring afterwards, and Clone detaches a kept copy.
func TestReportRetentionRing(t *testing.T) {
	m := NewMonitor("memory", Config{ReportRetention: 3})
	now := sim.Epoch
	push := func() *Report {
		now = now.Add(30 * time.Second)
		return m.Observe(now, []Observation{{Component: "c", Value: float64(m.Rounds()) * 100, Usage: 1}})
	}
	first := push()
	firstRound := first.Round
	kept := first.Clone()
	push() // retention 3: first survives this round and the next...
	if first.Round != firstRound {
		t.Fatalf("report rewritten within its retention window (round %d)", first.Round)
	}
	push()
	push() // ...but the ring has now cycled back over it.
	if first.Round == firstRound {
		t.Fatal("ring did not recycle the report buffer after retention expired")
	}
	if kept.Round != firstRound {
		t.Fatal("Clone did not detach the kept report from the ring")
	}
}

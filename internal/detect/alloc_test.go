package detect

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// TestMonitorObserveSteadyStateAllocs is the zero-garbage contract of the
// monitoring plane: once every component has been seen and the windows
// are warm, a Monitor.Observe round must not allocate — the round
// scratch, the detector windows, the slope multisets and the published
// report ring are all reused. The long-run soak below keeps cycling a
// window-saturated monitor (with an alarming component present, so the
// significant-trend path is exercised too) and fails on any per-round
// garbage.
func TestMonitorObserveSteadyStateAllocs(t *testing.T) {
	const comps = 14
	m := NewMonitor("memory", Config{})
	obs := make([]Observation, comps)
	now := sim.Epoch
	round := 0
	step := func() {
		round++
		now = now.Add(30 * time.Second)
		for c := range obs {
			obs[c] = Observation{
				Component: names[c],
				Value:     float64(round) * float64(c+1),
				Usage:     float64(round) * 10,
			}
		}
		m.Observe(now, obs)
	}
	// Warm up past the window size so every ring buffer, tie table and
	// slope store has reached steady state, and alarms are live.
	for round < 3*m.Config().Window {
		step()
	}
	if rep := m.Latest(); len(rep.Alarms()) == 0 {
		t.Fatalf("soak premise broken: no component alarming at round %d\n%s", round, rep)
	}
	if allocs := testing.AllocsPerRun(500, step); allocs > 0 {
		t.Fatalf("steady-state Observe allocates %.2f objects per round", allocs)
	}
}

// TestMonitorObserveShiftResetAllocs drives the guard through a workload
// shift mid-soak: the entropy window reset and the suppression path must
// reuse state as well (Reset keeps buffers), so even shifting rounds stay
// allocation-free at steady state.
func TestMonitorObserveShiftResetAllocs(t *testing.T) {
	m := NewMonitor("cpu", Config{PerInvocation: true})
	now := sim.Epoch
	round := 0
	var cumA, cumB, usageA, usageB float64
	step := func() {
		round++
		now = now.Add(30 * time.Second)
		ua, ub := 90.0, 10.0
		if round%40 >= 20 { // mix flips every 20 rounds: the guard stays busy
			ua, ub = 10.0, 90.0
		}
		usageA += ua
		usageB += ub
		cumA += ua * 0.010
		cumB += ub * 0.020
		m.Observe(now, []Observation{
			{Component: "a", Value: cumA, Usage: usageA},
			{Component: "b", Value: cumB, Usage: usageB},
		})
	}
	for round < 120 {
		step()
	}
	if allocs := testing.AllocsPerRun(500, step); allocs > 0 {
		t.Fatalf("shifting-state Observe allocates %.2f objects per round", allocs)
	}
}

// TestReportRetentionRing pins the recycling contract: a report stays
// intact for ReportRetention-1 rounds after publication and is rewritten
// by the ring afterwards, and Clone detaches a kept copy.
func TestReportRetentionRing(t *testing.T) {
	m := NewMonitor("memory", Config{ReportRetention: 3})
	now := sim.Epoch
	push := func() *Report {
		now = now.Add(30 * time.Second)
		return m.Observe(now, []Observation{{Component: "c", Value: float64(m.Rounds()) * 100, Usage: 1}})
	}
	first := push()
	firstRound := first.Round
	kept := first.Clone()
	push() // retention 3: first survives this round and the next...
	if first.Round != firstRound {
		t.Fatalf("report rewritten within its retention window (round %d)", first.Round)
	}
	push()
	push() // ...but the ring has now cycled back over it.
	if first.Round == firstRound {
		t.Fatal("ring did not recycle the report buffer after retention expired")
	}
	if kept.Round != firstRound {
		t.Fatal("Clone did not detach the kept report from the ring")
	}
}

// TestMonitorObserveLatencyHandleAllocs extends the soak to the two
// streams the chaos catalog added to the bank: a latency-shaped monitor
// (per-invocation with the DefaultLatencyMinSlope-style floor, fed a
// cumulative-seconds series whose per-invocation mean degrades past the
// floor) and a handles-shaped monitor (raw level, fed the integer
// plateau staircase a countdown handle leak produces — the Sen-median
// staircase fallback path). Both must be alarming and both must stay
// zero-alloc at steady state, so growing the bank from three monitors to
// five cannot reopen the per-round garbage the Observe contract closed.
func TestMonitorObserveLatencyHandleAllocs(t *testing.T) {
	lat := NewMonitor("latency", Config{PerInvocation: true, MinSlope: 5e-4})
	hnd := NewMonitor("handles", Config{})
	now := sim.Epoch
	round := 0
	var cumLat, usage float64
	latObs := make([]Observation, 2)
	hndObs := make([]Observation, 2)
	step := func() {
		round++
		now = now.Add(30 * time.Second)
		// Component "slow" degrades by 20ms of mean latency per round
		// (6.7e-4 s/inv per second, above the 5e-4 floor); "ok" is flat.
		usage += 10
		cumLat += 10 * (0.010 + 0.020*float64(round))
		latObs[0] = Observation{Component: "slow", Value: cumLat, Usage: usage}
		latObs[1] = Observation{Component: "ok", Value: 0.015 * usage, Usage: usage}
		lat.Observe(now, latObs)
		// The leaking component's live-handle level is an integer
		// staircase: one more handle every third round.
		hndObs[0] = Observation{Component: "leaky", Value: float64(round / 3), Usage: usage}
		hndObs[1] = Observation{Component: "ok", Value: 4, Usage: usage}
		hnd.Observe(now, hndObs)
	}
	for round < 3*lat.Config().Window {
		step()
	}
	if rep := lat.Latest(); len(rep.Alarms()) != 1 || rep.Alarms()[0].Component != "slow" {
		t.Fatalf("soak premise broken: latency stream not alarming on slow at round %d\n%s", round, rep)
	}
	if rep := hnd.Latest(); len(rep.Alarms()) != 1 || rep.Alarms()[0].Component != "leaky" {
		t.Fatalf("soak premise broken: handle stream not alarming on leaky at round %d\n%s", round, rep)
	}
	if allocs := testing.AllocsPerRun(500, step); allocs > 0 {
		t.Fatalf("latency/handle steady-state Observe allocates %.2f objects per round", allocs)
	}
}

package detect

import "math"

// PageHinkley is an online change-point detector for upward level shifts,
// complementing OnlineTrend: the Mann-Kendall test (with the Sen-slope
// floor the CPU detector runs with) is built for gradual drifts, so a
// resource that jumps once and then stays flat — the signature of a
// constant-cost CPU hog switching on — can sit below the slope floor
// forever. Page-Hinkley accumulates the deviation of each observation
// above the running mean and alarms when the accumulated excursion since
// its minimum exceeds a threshold, which is exactly a step detector.
//
// Observations are standardised against a baseline estimated from the
// first Warmup samples (mean and standard deviation via Welford), so
// Delta and Lambda are expressed in baseline standard deviations and one
// tuning works across resources with wildly different units (bytes,
// seconds, counts). A degenerate baseline (near-zero variance) falls back
// to a floor of a small fraction of the baseline mean, so a perfectly
// flat healthy series still yields a meaningful scale.
//
// Single-owner, like the other detectors: only the sampling goroutine
// calls Push.
type PageHinkley struct {
	delta  float64 // tolerated drift, in baseline std devs
	lambda float64 // alarm threshold, in baseline std devs
	warmup int

	// Welford state for the baseline.
	n    int
	mean float64
	m2   float64

	base    float64 // frozen baseline mean
	scale   float64 // frozen baseline std dev (with floor)
	ready   bool
	cum     float64 // cumulative standardised deviation minus delta
	minCum  float64
	tripped bool
}

// Page-Hinkley defaults: tolerate ~half a standard deviation of drift,
// alarm when the accumulated excursion exceeds eight standard deviations,
// and estimate the baseline over the first ten samples.
const (
	DefaultPHDelta  = 0.5
	DefaultPHLambda = 8.0
	DefaultPHWarmup = 10
)

// NewPageHinkley creates a detector. delta is the drift tolerance and
// lambda the alarm threshold, both in units of the baseline standard
// deviation; warmup is the number of samples used to estimate the
// baseline. Out-of-range values select the defaults.
func NewPageHinkley(delta, lambda float64, warmup int) *PageHinkley {
	if delta <= 0 {
		delta = DefaultPHDelta
	}
	if lambda <= 0 {
		lambda = DefaultPHLambda
	}
	if warmup < 2 {
		warmup = DefaultPHWarmup
	}
	return &PageHinkley{delta: delta, lambda: lambda, warmup: warmup}
}

// Push absorbs one observation and reports whether the detector is
// (now or already) tripped. Once tripped it stays tripped until Reset —
// a level shift does not un-happen.
func (p *PageHinkley) Push(v float64) bool {
	if !p.ready {
		p.n++
		d := v - p.mean
		p.mean += d / float64(p.n)
		p.m2 += d * (v - p.mean)
		if p.n < p.warmup {
			return false
		}
		p.base = p.mean
		p.scale = math.Sqrt(p.m2 / float64(p.n-1))
		// Floor the scale so a near-constant healthy baseline does not
		// turn measurement noise into instant alarms.
		if floor := math.Abs(p.base) * 0.01; p.scale < floor {
			p.scale = floor
		}
		if p.scale == 0 {
			p.scale = 1e-12
		}
		p.ready = true
		return false
	}
	if p.tripped {
		return true
	}
	p.cum += (v-p.base)/p.scale - p.delta
	if p.cum < p.minCum {
		p.minCum = p.cum
	}
	if p.cum-p.minCum > p.lambda {
		p.tripped = true
	}
	return p.tripped
}

// Tripped reports whether a level shift has been detected.
func (p *PageHinkley) Tripped() bool { return p.tripped }

// Magnitude returns the current accumulated excursion in baseline
// standard deviations (the PH statistic); it keeps growing while the
// shifted level persists, so it orders components by how hard they
// stepped.
func (p *PageHinkley) Magnitude() float64 {
	if !p.ready {
		return 0
	}
	return p.cum - p.minCum
}

// Ready reports whether the baseline warmup has completed.
func (p *PageHinkley) Ready() bool { return p.ready }

// Reset discards all state, baseline included — used when a workload
// shift invalidates the history the baseline was estimated against.
func (p *PageHinkley) Reset() {
	*p = PageHinkley{delta: p.delta, lambda: p.lambda, warmup: p.warmup}
}

package detect

import "math"

// ShiftGuard detects changes in the workload mix from the per-component
// usage (invocation-count) distribution, so the detectors above it can
// tell "the traffic changed" apart from "a component is aging" — the
// false-alarm mode Moura et al. show static detectors suffer under
// workload shift.
//
// Each round the guard receives the per-component usage deltas, computes
// the share distribution, and compares it against an exponentially-
// weighted reference distribution by total-variation distance. A distance
// above the threshold marks the round as shifting; the guard then stays
// in the suppressing state for Hold further calm rounds, because the
// first rounds after a mix change still blend pre- and post-shift
// behaviour. The reference adapts continuously (EWMA), so after a shift
// settles the new mix becomes the baseline and detection resumes — the
// "adaptive" part.
//
// The effective threshold is noise-aware: a round built from n requests
// over k components carries sampling noise of about sqrt(k/(2πn)) in
// total-variation distance even when the true mix is unchanged, so a
// fixed threshold that works for a busy single node misfires on a
// lightly loaded cluster replica seeing a third of the traffic. Each
// round the guard floors the configured threshold at NoiseMargin times
// the expected noise for that round's own n and k.
//
// Single-owner, like the other detectors: only the sampling goroutine
// calls Observe.
type ShiftGuard struct {
	threshold float64
	hold      int
	ewma      float64
	margin    float64

	ref       map[string]float64 // reference share distribution
	shares    map[string]float64 // round scratch, reused
	lastDist  float64
	lastThr   float64 // effective threshold of the latest non-idle round
	calmLeft  int     // rounds of calm still required before unsuppressing
	shifted   bool    // a shift was observed at least once
	rounds    int64
	lastShift int64 // round of the most recent shifting observation
}

// DefaultShiftNoiseMargin multiplies the expected sampling noise of the
// share distribution to form the adaptive threshold floor: 1.5 sits far
// enough above the mean same-mix distance to stay quiet on light
// per-node traffic while real mix changes (total-variation 0.3+ between
// TPC-W mixes) still clear it.
const DefaultShiftNoiseMargin = 1.5

// NewShiftGuard creates a guard. threshold is the total-variation distance
// in [0,1] above which a round counts as shifting (default 0.15); hold is
// the number of calm rounds required before alarms are re-enabled
// (default 5); ewma is the reference adaptation rate in (0,1]
// (default 0.2). The noise margin defaults to DefaultShiftNoiseMargin;
// use NewShiftGuardMargin to tune it.
func NewShiftGuard(threshold float64, hold int, ewma float64) *ShiftGuard {
	return NewShiftGuardMargin(threshold, hold, ewma, 0)
}

// NewShiftGuardMargin is NewShiftGuard with an explicit noise margin
// (out-of-range values select DefaultShiftNoiseMargin).
func NewShiftGuardMargin(threshold float64, hold int, ewma, margin float64) *ShiftGuard {
	if threshold <= 0 || threshold >= 1 {
		threshold = 0.15
	}
	if hold <= 0 {
		hold = 5
	}
	if ewma <= 0 || ewma > 1 {
		ewma = 0.2
	}
	if margin <= 0 {
		margin = DefaultShiftNoiseMargin
	}
	return &ShiftGuard{
		threshold: threshold,
		hold:      hold,
		ewma:      ewma,
		margin:    margin,
		shares:    make(map[string]float64),
	}
}

// Observe absorbs one round of per-component usage deltas and reports
// whether detection should be suppressed this round. The first round only
// seeds the reference and never suppresses.
func (g *ShiftGuard) Observe(usageDeltas map[string]float64) bool {
	g.rounds++
	var total float64
	for _, d := range usageDeltas {
		if d > 0 {
			total += d
		}
	}
	if total <= 0 {
		// An idle round says nothing about the mix.
		return g.Suppressing()
	}
	clear(g.shares)
	shares := g.shares
	for c, d := range usageDeltas {
		if d > 0 {
			shares[c] = d / total
		}
	}
	if g.ref == nil {
		// Seed the reference with a copy — shares is round scratch that
		// the next Observe will clear.
		g.ref = make(map[string]float64, len(shares))
		for c, s := range shares {
			g.ref[c] = s
		}
		return false
	}
	g.lastDist = totalVariation(g.ref, shares)
	// The adaptive floor: the expected total-variation distance between a
	// k-component multinomial sample of size n and its true distribution
	// is about sqrt(k/(2πn)), so anything below margin× that is sampling
	// noise, not a mix change.
	k := len(shares)
	for c, r := range g.ref {
		if r > 0 {
			if _, ok := shares[c]; !ok {
				k++
			}
		}
	}
	g.lastThr = g.threshold
	if floor := g.margin * math.Sqrt(float64(k)/(2*math.Pi*total)); floor > g.lastThr {
		g.lastThr = floor
	}
	if g.lastDist > g.lastThr {
		g.shifted = true
		g.lastShift = g.rounds
		g.calmLeft = g.hold
	} else if g.calmLeft > 0 {
		g.calmLeft--
	}
	// Adapt the reference toward the observed mix.
	for c := range g.ref {
		if _, ok := shares[c]; !ok {
			g.ref[c] *= 1 - g.ewma
		}
	}
	for c, s := range shares {
		g.ref[c] = (1-g.ewma)*g.ref[c] + g.ewma*s
	}
	return g.Suppressing()
}

// Suppressing reports whether the guard currently holds detection down: a
// shift was seen and the calm period has not yet elapsed.
func (g *ShiftGuard) Suppressing() bool { return g.calmLeft > 0 }

// Distance returns the most recent total-variation distance between the
// observed mix and the reference.
func (g *ShiftGuard) Distance() float64 { return g.lastDist }

// Threshold returns the effective (noise-floored) threshold of the most
// recent non-idle round, 0 before any.
func (g *ShiftGuard) Threshold() float64 { return g.lastThr }

// Shifted reports whether any workload shift has ever been observed.
func (g *ShiftGuard) Shifted() bool { return g.shifted }

// LastShiftRound returns the 1-based round index of the most recent
// shifting observation (0 when none).
func (g *ShiftGuard) LastShiftRound() int64 { return g.lastShift }

// totalVariation is half the L1 distance between two share distributions,
// in [0,1].
func totalVariation(a, b map[string]float64) float64 {
	var l1 float64
	for c, pa := range a {
		l1 += abs(pa - b[c])
	}
	for c, pb := range b {
		if _, ok := a[c]; !ok {
			l1 += pb
		}
	}
	return l1 / 2
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

package detect

import (
	"bytes"
	"encoding/hex"
	"math"
	"reflect"
	"testing"
	"time"

	"repro/internal/binc"
	"repro/internal/metrics"
)

// snapObs builds the round-r observation set for the snapshot parity
// workload: two components (so every float accumulation inside the
// monitor is order-independent), a steady one and a leaking one, with a
// workload mix shift at round 30 and an idle round every 11th round.
func snapObs(r int64) []Observation {
	if r%11 == 0 {
		// Idle round: no usage growth, no consumption growth.
		r = (r/11)*11 - 1
		return []Observation{
			{Component: "steady", Value: 1e6 + float64(r)*100, Usage: float64(r) * 12},
			{Component: "leaky", Value: 2e6 + float64(r)*4096, Usage: float64(r) * 4},
		}
	}
	usageA, usageB := float64(r)*12, float64(r)*4
	if r >= 30 {
		usageA, usageB = 30*12+(float64(r)-30)*4, 30*4+(float64(r)-30)*12
	}
	return []Observation{
		{Component: "steady", Value: 1e6 + float64(r)*100, Usage: usageA},
		{Component: "leaky", Value: 2e6 + float64(r)*4096, Usage: usageB},
	}
}

func snapTestConfig() Config {
	return Config{Window: 20, MinSamples: 6, Consecutive: 3, ChangePoint: true}
}

func driveMonitor(m *Monitor, from, to int64, t0 time.Time) []string {
	var out []string
	for r := from; r <= to; r++ {
		rep := m.Observe(t0.Add(time.Duration(r)*30*time.Second), snapObs(r))
		out = append(out, rep.String())
	}
	return out
}

// TestMonitorSnapshotParity is the core exact-state contract: run N
// rounds, snapshot, restore into a fresh monitor, run M more rounds on
// both — every published report must be byte-identical, and the final
// states must re-snapshot to identical bytes.
func TestMonitorSnapshotParity(t *testing.T) {
	const n, m = 35, 30
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"default", Config{}},
		{"tuned-changepoint", snapTestConfig()},
		{"per-invocation", Config{Window: 16, MinSamples: 5, PerInvocation: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			full := NewMonitor("memory", tc.cfg)
			cut := NewMonitor("memory", tc.cfg)
			driveMonitor(full, 1, n, t0)
			driveMonitor(cut, 1, n, t0)

			snap := cut.Snapshot()
			restored, err := RestoreMonitor(snap)
			if err != nil {
				t.Fatalf("RestoreMonitor: %v", err)
			}
			if restored.Latest() != nil {
				t.Fatal("restored monitor must not publish a report before its first Observe")
			}
			if restored.Rounds() != full.Rounds() {
				t.Fatalf("restored rounds = %d, want %d", restored.Rounds(), full.Rounds())
			}

			wantReps := driveMonitor(full, n+1, n+m, t0)
			gotReps := driveMonitor(restored, n+1, n+m, t0)
			for i := range wantReps {
				if gotReps[i] != wantReps[i] {
					t.Fatalf("round %d diverged after restore:\nuninterrupted:\n%s\nrestored:\n%s", int64(n)+int64(i)+1, wantReps[i], gotReps[i])
				}
			}
			if !bytes.Equal(full.Snapshot(), restored.Snapshot()) {
				t.Fatal("final snapshots diverged after identical post-restore rounds")
			}
		})
	}
}

// TestMonitorSnapshotParityMonotonicClock repeats the parity run with a
// wall clock that carries a monotonic reading (time.Now-derived), because
// restored time origins come back wall-only: Add-derived times keep wall
// and monotonic deltas equal, so the restored detector must still agree.
func TestMonitorSnapshotParityMonotonicClock(t *testing.T) {
	const n, m = 25, 20
	t0 := time.Now()
	full := NewMonitor("memory", snapTestConfig())
	cut := NewMonitor("memory", snapTestConfig())
	driveMonitor(full, 1, n, t0)
	driveMonitor(cut, 1, n, t0)
	restored, err := RestoreMonitor(cut.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want := driveMonitor(full, n+1, n+m, t0)
	got := driveMonitor(restored, n+1, n+m, t0)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("monotonic-clock parity diverged at segment round %d:\n%s\nvs\n%s", i+1, want[i], got[i])
		}
	}
}

// TestMonitorSnapshotCanonical pins the canonical-encoding property the
// round-trip fuzz target relies on: Snapshot∘Restore∘Snapshot is the
// identity on bytes.
func TestMonitorSnapshotCanonical(t *testing.T) {
	m := NewMonitor("memory", snapTestConfig())
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	driveMonitor(m, 1, 37, t0)
	snap := m.Snapshot()
	restored, err := RestoreMonitor(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(restored.Snapshot(), snap) {
		t.Fatal("snapshot encoding is not canonical")
	}
}

func TestTrendSnapshotRoundTrip(t *testing.T) {
	o := NewOnlineTrend(12, 0.05)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 30; i++ {
		o.Push(t0.Add(time.Duration(i)*time.Second), float64(i*i%17))
	}
	snap := o.Snapshot()
	r := NewOnlineTrend(4, 0.5) // different config: restore must adopt
	if err := r.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(o.Result(), r.Result()) {
		t.Fatalf("restored result %+v != %+v", r.Result(), o.Result())
	}
	if r.Seen() != o.Seen() || r.Len() != o.Len() || r.Window() != o.Window() {
		t.Fatal("restored counters differ")
	}
	// Derived state must be rebuilt bit-exactly.
	if r.s != o.s || r.tieCorr != o.tieCorr || !reflect.DeepEqual(r.ties, o.ties) {
		t.Fatalf("derived state differs: s=%d/%d tieCorr=%d/%d", r.s, o.s, r.tieCorr, o.tieCorr)
	}
	if r.slopes.Median() != o.slopes.Median() || r.slopes.Len() != o.slopes.Len() {
		t.Fatal("slope store differs after restore")
	}
	// Continued pushes stay identical.
	for i := 30; i < 45; i++ {
		at := t0.Add(time.Duration(i) * time.Second)
		o.Push(at, float64(i*i%17))
		r.Push(at, float64(i*i%17))
	}
	if !bytes.Equal(o.Snapshot(), r.Snapshot()) {
		t.Fatal("trend snapshots diverged after continued pushes")
	}
}

func TestTrendSnapshotEmpty(t *testing.T) {
	o := NewOnlineTrend(8, 0.05)
	r := NewOnlineTrend(8, 0.05)
	if err := r.Restore(o.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if r.Seen() != 0 || r.Len() != 0 {
		t.Fatal("restored empty trend not empty")
	}
}

func TestSlopeStoreSnapshot(t *testing.T) {
	s := metrics.NewSlopeStore(8)
	for _, v := range []float64{3, -1, 2, 2, 0.5, -7} {
		s.Insert(v)
	}
	r := metrics.NewSlopeStore(2)
	if err := r.Restore(s.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if r.Len() != s.Len() || r.Median() != s.Median() {
		t.Fatalf("restored store Len=%d Median=%v, want %d/%v", r.Len(), r.Median(), s.Len(), s.Median())
	}
	if !bytes.Equal(r.Snapshot(), s.Snapshot()) {
		t.Fatal("slope store snapshot not canonical")
	}
	// Unsorted data must be rejected.
	bad := append([]byte(nil), s.Snapshot()...)
	bad[len(bad)-1] ^= 0x80 // flip the sign of the last slope
	if err := r.Restore(bad); err == nil {
		t.Fatal("unsorted snapshot accepted")
	}
}

func TestPageHinkleySnapshotRoundTrip(t *testing.T) {
	ph := NewPageHinkley(0.5, 8, 5)
	for i := 0; i < 20; i++ {
		v := 10.0
		if i > 12 {
			v = 25 // level shift
		}
		ph.Push(v)
	}
	if !ph.Tripped() {
		t.Fatal("setup: detector should have tripped")
	}
	r := NewPageHinkley(0, 0, 0)
	if err := r.Restore(ph.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !r.Tripped() || r.Magnitude() != ph.Magnitude() || !r.Ready() {
		t.Fatalf("restored PH state differs: tripped=%v mag=%v/%v", r.Tripped(), r.Magnitude(), ph.Magnitude())
	}
	if !bytes.Equal(r.Snapshot(), ph.Snapshot()) {
		t.Fatal("page-hinkley snapshot not canonical")
	}
}

func TestShiftGuardSnapshotRoundTrip(t *testing.T) {
	g := NewShiftGuard(0.15, 5, 0.2)
	mix := map[string]float64{"a": 12, "b": 4}
	for i := 0; i < 10; i++ {
		g.Observe(mix)
	}
	g.Observe(map[string]float64{"a": 1, "b": 40}) // shift
	r := NewShiftGuard(0.5, 2, 0.9)
	if err := r.Restore(g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if r.Suppressing() != g.Suppressing() || r.Distance() != g.Distance() ||
		r.Shifted() != g.Shifted() || r.LastShiftRound() != g.LastShiftRound() {
		t.Fatal("restored guard state differs")
	}
	// Continued observations agree.
	for i := 0; i < 8; i++ {
		a, b := g.Observe(mix), r.Observe(mix)
		if a != b {
			t.Fatalf("suppression diverged at continued round %d", i)
		}
	}
	if !bytes.Equal(g.Snapshot(), r.Snapshot()) {
		t.Fatal("guard snapshots diverged after continued rounds")
	}
}

func TestShiftGuardSnapshotNilRef(t *testing.T) {
	g := NewShiftGuard(0.15, 5, 0.2)
	r := NewShiftGuard(0.15, 5, 0.2)
	if err := r.Restore(g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if r.ref != nil {
		t.Fatal("nil reference must restore as nil (next round seeds)")
	}
	// A seeded-but-calm guard restores its reference.
	g.Observe(map[string]float64{"a": 5})
	if err := r.Restore(g.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if r.ref == nil {
		t.Fatal("seeded reference lost in restore")
	}
}

func TestEntropySnapshotRoundTrip(t *testing.T) {
	e := NewEntropyDetector(16, 0.05)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		e.Observe(t0.Add(time.Duration(i)*time.Second), []float64{4, float64(1 + i)})
	}
	r := NewEntropyDetector(4, 0.5)
	if err := r.Restore(e.Snapshot()); err != nil {
		t.Fatal(err)
	}
	lw, okw := e.Last()
	lg, okg := r.Last()
	if lw != lg || okw != okg || e.Alarming() != r.Alarming() {
		t.Fatal("restored entropy state differs")
	}
}

func TestReportSnapshotRoundTrip(t *testing.T) {
	m := NewMonitor("memory", snapTestConfig())
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	var rep *Report
	for r := int64(1); r <= 25; r++ {
		rep = m.Observe(t0.Add(time.Duration(r)*30*time.Second), snapObs(r))
	}
	snap := rep.AppendSnapshot(nil)
	p := binc.NewParser(snap)
	got, err := RestoreReportSnapshot(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Done(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, rep.Clone()) {
		t.Fatalf("restored report differs:\n%+v\nvs\n%+v", got, rep)
	}
	if !bytes.Equal(got.AppendSnapshot(nil), snap) {
		t.Fatal("report snapshot not canonical")
	}
}

// TestMonitorSnapshotGolden pins the v1 monitor snapshot format byte for
// byte. If this fails, the format changed: bump monSnapVersion and keep
// decoding v1, or update the golden only with a deliberate format break.
func TestMonitorSnapshotGolden(t *testing.T) {
	m := NewMonitor("mem", Config{Window: 8, MinSamples: 4, Consecutive: 2})
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	for r := int64(1); r <= 6; r++ {
		m.Observe(t0.Add(time.Duration(r)*30*time.Second), []Observation{
			{Component: "a", Value: float64(1000 + 64*r), Usage: float64(8 * r)},
			{Component: "b", Value: float64(500 + 3*r), Usage: float64(2 * r)},
		})
	}
	const want = "01036d656d087b14ae47e17a843f0000000000000000040200333333333333c33f059a9999999999" +
		"c93f000000000000f83f000000000000000000000000000000000000080c000001333333333333c3" +
		"3f059a9999999999c93f000000000000f83f010201619b9999999999e93f01629b9999999999c93f" +
		"000000000000943c497568d6a920d13f00000c000101087b14ae47e17a843f80e0aaedd8b6cd8423" +
		"0a050000000000000000cd8901c2bae1d03f0000000000003e40cd8901c2bae1d03f000000000000" +
		"4e40cd8901c2bae1d03f0000000000805640cd8901c2bae1d03f0000000000005e40cd8901c2bae1" +
		"d03fcd8901c2bae1d03f0102016101087b14ae47e17a843f80e0aaedd8b6cd84230a050000000000" +
		"0000000000000000a091400000000000003e400000000000a092400000000000004e400000000000" +
		"a0934000000000008056400000000000a094400000000000005e400000000000a095400000000000" +
		"00a0954000000000000048400100006398b9d1088de43f016201087b14ae47e17a843f80e0aaedd8" +
		"b6cd84230a0500000000000000000000000000a07f400000000000003e400000000000d07f400000" +
		"000000004e400000000000008040000000000080564000000000001880400000000000005e400000" +
		"00000030804000000000000030804000000000000028400100009664963a8dd39e3f"
	got := hex.EncodeToString(m.Snapshot())
	if got != want {
		t.Fatalf("monitor snapshot bytes changed:\n got %s\nwant %s", got, want)
	}
}

func TestSnapshotRejectsBadVersion(t *testing.T) {
	m := NewMonitor("mem", Config{})
	snap := m.Snapshot()
	snap[0] = 99
	if _, err := RestoreMonitor(snap); err == nil {
		t.Fatal("future version accepted")
	}
	o := NewOnlineTrend(8, 0.05)
	ts := o.Snapshot()
	ts[0] = 99
	if err := o.Restore(ts); err == nil {
		t.Fatal("future trend version accepted")
	}
}

func TestSnapshotRejectsTruncation(t *testing.T) {
	m := NewMonitor("memory", snapTestConfig())
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	driveMonitor(m, 1, 20, t0)
	snap := m.Snapshot()
	for _, cut := range []int{1, len(snap) / 4, len(snap) / 2, len(snap) - 1} {
		if _, err := RestoreMonitor(snap[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Trailing garbage must be rejected too.
	if _, err := RestoreMonitor(append(append([]byte(nil), snap...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestTrendSnapshotRejectsNonFinite(t *testing.T) {
	o := NewOnlineTrend(8, 0.05)
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	o.Push(t0, 1)
	o.Push(t0.Add(time.Second), 2)
	snap := o.Snapshot()
	// Overwrite the last float (newest y) with NaN.
	nan := binc.AppendFloat(nil, math.NaN())
	copy(snap[len(snap)-8:], nan)
	if err := o.Restore(snap); err == nil {
		t.Fatal("NaN window sample accepted")
	}
}

// FuzzSnapshotRoundTrip is the snapshot fuzz target CI smokes: any buffer
// RestoreMonitor accepts must re-encode to the identical bytes (canonical
// encoding), and the restored monitor must survive an Observe round.
func FuzzSnapshotRoundTrip(f *testing.F) {
	t0 := time.Date(2010, 1, 1, 0, 0, 0, 0, time.UTC)
	empty := NewMonitor("memory", Config{})
	f.Add(empty.Snapshot())
	seeded := NewMonitor("memory", snapTestConfig())
	driveMonitor(seeded, 1, 24, t0)
	f.Add(seeded.Snapshot())
	perInv := NewMonitor("cpu", Config{Window: 12, PerInvocation: true})
	driveMonitor(perInv, 1, 9, t0)
	f.Add(perInv.Snapshot())

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := RestoreMonitor(data)
		if err != nil {
			return
		}
		if got := m.Snapshot(); !bytes.Equal(got, data) {
			t.Fatalf("accepted snapshot is not canonical:\n in %x\nout %x", data, got)
		}
		// The restored monitor must be fully operational.
		rep := m.Observe(t0.Add(time.Hour), []Observation{
			{Component: "steady", Value: 1, Usage: 1},
			{Component: "fresh", Value: 2, Usage: 2},
		})
		if rep == nil {
			t.Fatal("restored monitor returned nil report")
		}
		if _, err := RestoreMonitor(m.Snapshot()); err != nil {
			t.Fatalf("re-snapshot after Observe not restorable: %v", err)
		}
	})
}

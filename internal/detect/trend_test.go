package detect

import (
	"math"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// TestOnlineTrendMatchesBatch verifies the incremental detector agrees
// with the batch Mann-Kendall over the same window on S, Z, P, direction
// and Sen slope, across noisy, trending and tied inputs.
func TestOnlineTrendMatchesBatch(t *testing.T) {
	rng := sim.NewStream(7)
	cases := []struct {
		name string
		gen  func(i int) float64
	}{
		{"noise", func(i int) float64 { return rng.Float64() }},
		{"trend", func(i int) float64 { return float64(i)*0.5 + rng.Float64() }},
		{"down", func(i int) float64 { return -float64(i) + 2*rng.Float64() }},
		{"ties", func(i int) float64 { return float64(i % 3) }},
		{"flat", func(i int) float64 { return 4.2 }},
	}
	const window = 16
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			o := NewOnlineTrend(window, 0.05)
			var xs, ys []float64
			t0 := sim.Epoch
			for i := 0; i < 50; i++ {
				now := t0.Add(time.Duration(i) * 30 * time.Second)
				v := tc.gen(i)
				o.Push(now, v)
				xs = append(xs, now.Sub(t0).Seconds())
				ys = append(ys, v)

				lo := 0
				if len(ys) > window {
					lo = len(ys) - window
				}
				if len(ys)-lo < 4 {
					// Below 4 points both sides must refuse a verdict
					// (the batch code returns early and reports S=0).
					if got := o.Result(); got.Direction != metrics.TrendNone {
						t.Fatalf("i=%d verdict on %d points", i, len(ys)-lo)
					}
					continue
				}
				want := metrics.MannKendall(xs[lo:], ys[lo:], 0.05)
				got := o.Result()
				if got.S != want.S {
					t.Fatalf("i=%d S=%d want %d", i, got.S, want.S)
				}
				if math.Abs(got.Z-want.Z) > 1e-9 || math.Abs(got.P-want.P) > 1e-9 {
					t.Fatalf("i=%d Z/P=%g/%g want %g/%g", i, got.Z, got.P, want.Z, want.P)
				}
				if got.Direction != want.Direction {
					t.Fatalf("i=%d direction=%v want %v", i, got.Direction, want.Direction)
				}
				// The online detector only refreshes the slope on
				// significant trends; compare it there.
				if want.Direction != metrics.TrendNone &&
					math.Abs(got.SenSlope-want.SenSlope) > 1e-9 {
					t.Fatalf("i=%d slope=%g want %g", i, got.SenSlope, want.SenSlope)
				}
			}
		})
	}
}

func TestOnlineTrendReset(t *testing.T) {
	o := NewOnlineTrend(8, 0.05)
	for i := 0; i < 20; i++ {
		o.Push(sim.Epoch.Add(time.Duration(i)*time.Second), float64(i))
	}
	if res := o.Result(); res.Direction != metrics.TrendIncreasing {
		t.Fatalf("want increasing before reset, got %v", res.Direction)
	}
	o.Reset()
	if o.Len() != 0 {
		t.Fatalf("Len=%d after reset", o.Len())
	}
	if res := o.Result(); res.Direction != metrics.TrendNone || res.S != 0 {
		t.Fatalf("want empty verdict after reset, got %+v", res)
	}
	// The detector must keep working after a reset.
	for i := 0; i < 20; i++ {
		o.Push(sim.Epoch.Add(time.Duration(100+i)*time.Second), float64(-i))
	}
	if res := o.Result(); res.Direction != metrics.TrendDecreasing {
		t.Fatalf("want decreasing after refill, got %v", res.Direction)
	}
}

func TestEntropyDetectorConcentration(t *testing.T) {
	e := NewEntropyDetector(32, 0.05)
	now := sim.Epoch
	// Concentrating distribution: one component's delta grows every
	// round while three stay flat — entropy must trend down and alarm.
	for i := 0; i < 40; i++ {
		now = now.Add(30 * time.Second)
		e.Observe(now, []float64{1 + float64(i)*0.5, 1, 1, 1})
	}
	if !e.Alarming() {
		t.Fatalf("entropy detector did not alarm on concentration: %+v", e.Result())
	}
	h, ok := e.Last()
	if !ok || h <= 0 || h >= 1 {
		t.Fatalf("normalised entropy out of range: %v %v", h, ok)
	}

	// A stationary distribution must not alarm.
	e2 := NewEntropyDetector(32, 0.05)
	for i := 0; i < 40; i++ {
		e2.Observe(sim.Epoch.Add(time.Duration(i)*30*time.Second), []float64{2, 1, 1, 3})
	}
	if e2.Alarming() {
		t.Fatal("entropy detector alarmed on a stationary distribution")
	}
}

func TestShiftGuard(t *testing.T) {
	g := NewShiftGuard(0.15, 3, 0.2)
	steady := map[string]float64{"a": 50, "b": 30, "c": 20}
	if g.Observe(steady) {
		t.Fatal("seeding round must not suppress")
	}
	for i := 0; i < 5; i++ {
		if g.Observe(steady) {
			t.Fatalf("steady round %d suppressed (dist=%v)", i, g.Distance())
		}
	}
	// The mix flips: c takes most of the traffic.
	shifted := map[string]float64{"a": 10, "b": 10, "c": 80}
	if !g.Observe(shifted) {
		t.Fatalf("shift not detected (dist=%v)", g.Distance())
	}
	if !g.Shifted() {
		t.Fatal("Shifted() false after a shift")
	}
	// The guard must hold for the calm period, then release once the
	// reference has adapted to the new mix.
	released := false
	for i := 0; i < 30; i++ {
		if !g.Observe(shifted) {
			released = true
			break
		}
	}
	if !released {
		t.Fatal("guard never released after the mix settled")
	}
}

func TestMonitorLeakAlarmsAndFlatDoesNot(t *testing.T) {
	m := NewMonitor("memory", Config{Window: 20, MinSamples: 6, Consecutive: 3})
	now := sim.Epoch
	var alarmRound int64
	for i := 0; i < 30; i++ {
		now = now.Add(30 * time.Second)
		rep := m.Observe(now, []Observation{
			{Component: "leaky", Value: float64(i) * 1000, Usage: float64(i) * 10},
			{Component: "flat", Value: 5000, Usage: float64(i) * 20},
		})
		if top, ok := rep.Top(); ok && alarmRound == 0 {
			if top.Component != "leaky" {
				t.Fatalf("round %d: wrong suspect %q", rep.Round, top.Component)
			}
			alarmRound = rep.Round
		}
	}
	if alarmRound == 0 {
		t.Fatalf("leak never alarmed:\n%s", m.Latest())
	}
	// MinSamples(6) + Consecutive(3) bound the earliest possible alarm;
	// a healthy detector fires within a few rounds of that.
	if alarmRound > 15 {
		t.Fatalf("alarm too late: round %d", alarmRound)
	}
	for _, v := range m.Latest().Components {
		if v.Component == "flat" && v.Alarm {
			t.Fatal("flat component alarmed")
		}
	}
}

// TestMonitorShiftSuppression drives a usage-mix shift with no aging: the
// raw consumption deltas redistribute (which would concentrate the entropy
// signal) but the guard must keep every alarm down.
func TestMonitorShiftSuppression(t *testing.T) {
	m := NewMonitor("cpu", Config{
		Window: 20, MinSamples: 6, Consecutive: 3, PerInvocation: true,
		ShiftThreshold: 0.15, ShiftHold: 5,
	})
	now := sim.Epoch
	cumA, cumB := 0.0, 0.0
	usageA, usageB := 0.0, 0.0
	const costA, costB = 0.010, 0.020 // seconds per invocation, constant: nothing ages
	for i := 0; i < 60; i++ {
		now = now.Add(30 * time.Second)
		// Rounds 0-29: A-heavy mix; rounds 30+: B-heavy.
		ua, ub := 90.0, 10.0
		if i >= 30 {
			ua, ub = 10.0, 90.0
		}
		usageA += ua
		usageB += ub
		cumA += ua * costA
		cumB += ub * costB
		rep := m.Observe(now, []Observation{
			{Component: "a", Value: cumA, Usage: usageA},
			{Component: "b", Value: cumB, Usage: usageB},
		})
		if len(rep.Alarms()) > 0 || rep.EntropyAlarm {
			t.Fatalf("round %d: alarm under pure workload shift:\n%s", rep.Round, rep)
		}
	}
	if !m.guard.Shifted() {
		t.Fatal("the guard never saw the mix shift")
	}
}

func BenchmarkMonitorObserve(b *testing.B) {
	const comps = 14
	m := NewMonitor("memory", Config{})
	obs := make([]Observation, comps)
	now := sim.Epoch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(30 * time.Second)
		for c := range obs {
			obs[c] = Observation{
				Component: names[c],
				Value:     float64(i) * float64(c+1),
				Usage:     float64(i) * 10,
			}
		}
		m.Observe(now, obs)
	}
}

var names = []string{"c0", "c1", "c2", "c3", "c4", "c5", "c6", "c7", "c8", "c9", "c10", "c11", "c12", "c13"}

package detect

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/binc"
	"repro/internal/metrics"
)

// This file gives every detector exact-state binary snapshots, so the
// aggregation plane can persist and restore its per-node detector banks
// across a crash or a warm-standby failover with byte-identical future
// verdicts (the parity tests in snapshot_test.go pin N-rounds +
// snapshot/restore + M-rounds against an uninterrupted N+M run).
//
// Design rules shared by all formats here:
//
//   - Each format carries its own version byte and is fully
//     self-describing (configuration included), so a snapshot restores
//     without out-of-band context and version skew fails loudly.
//   - The encoding is canonical: map-backed state is written key-sorted
//     and derived state is never serialised, so Snapshot∘Restore∘Snapshot
//     is byte-identical — the property the round-trip fuzz target leans
//     on.
//   - OnlineTrend serialises only its primary state (the (x, y) window,
//     oldest first) and recomputes S, the tie table, the tie correction
//     and the Sen slope multiset on restore. Every recomputed float is
//     produced from the very same operands the incremental path used, so
//     the restored state is bit-identical, not just approximately equal.
//   - Times cross the boundary as UnixNano and come back UTC without a
//     monotonic reading, exactly like the cluster wire codec's times.
//   - Snapshotting is off the hot path (it rides the fold stage or an
//     operator request, never Observe), so it may allocate freely.
//
// Not serialised on the Monitor: the recycled report ring and the
// published report pointer. A restored Monitor reports Latest() == nil
// until its first post-restore Observe — the same contract as a freshly
// constructed one.

// Snapshot format versions, one per detector type.
const (
	trendSnapVersion   = 1
	phSnapVersion      = 1
	entropySnapVersion = 1
	guardSnapVersion   = 1
	monSnapVersion     = 1
	reportSnapVersion  = 1
)

// Decode bounds: a corrupt or adversarial snapshot may not drive
// allocations past these.
const (
	maxSnapString = 4096
	// maxSnapWindow bounds the trend window a snapshot may declare.
	// Restore rebuilds the pairwise-slope multiset in O(window²), so this
	// is a CPU bound as much as a memory bound (1024 → ~0.5M pairs);
	// real windows are two orders of magnitude smaller.
	maxSnapWindow  = 1 << 10
	maxSnapComps   = 1 << 16
	maxSnapCounter = 1 << 30
	// maxSnapConfig bounds the small config integers (MinSamples,
	// Consecutive, ShiftHold, PHWarmup) and maxSnapRetention the report
	// ring size — the ring is allocated eagerly by NewMonitor, so an
	// unbounded retention in a corrupt snapshot would be an allocation
	// bomb (the fuzz corpus holds exactly that regression).
	maxSnapConfig    = 1 << 20
	maxSnapRetention = 1 << 12
)

func isFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// ---- OnlineTrend ----

// AppendSnapshot appends the detector's versioned state: configuration,
// time origin, lifetime counter and the raw (x, y) window oldest-first.
// Derived state (S, ties, slope multiset) is recomputed on restore.
func (o *OnlineTrend) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, trendSnapVersion)
	dst = binc.AppendUvarint(dst, uint64(o.window))
	dst = binc.AppendFloat(dst, o.alpha)
	var t0 int64
	if o.seen > 0 {
		t0 = o.t0.UnixNano()
	}
	dst = binc.AppendVarint(dst, t0)
	dst = binc.AppendVarint(dst, o.seen)
	dst = binc.AppendUvarint(dst, uint64(o.n))
	for i := 0; i < o.n; i++ {
		x, y := o.at(i)
		dst = binc.AppendFloat(dst, x)
		dst = binc.AppendFloat(dst, y)
	}
	return dst
}

// Snapshot returns the detector's versioned binary state.
func (o *OnlineTrend) Snapshot() []byte { return o.AppendSnapshot(nil) }

// RestoreSnapshot replaces the receiver's state from a snapshot read off
// p, adopting the snapshot's configuration. S, the tie table and the
// slope multiset are rebuilt from the window pairs; each value is
// computed from the same operands the incremental path used, so the
// restored detector's future outputs are bit-identical to an
// uninterrupted one's.
func (o *OnlineTrend) RestoreSnapshot(p *binc.Parser) error {
	if v := p.Byte(); p.Err() == nil && v != trendSnapVersion {
		return fmt.Errorf("detect: trend snapshot v%d: %w", v, binc.ErrVersion)
	}
	window := p.Count(maxSnapWindow)
	alpha := p.Float()
	t0 := p.Varint()
	seen := p.Varint()
	n := p.Count(maxSnapWindow)
	if err := p.Err(); err != nil {
		return err
	}
	if window < 4 {
		return fmt.Errorf("detect: trend snapshot window %d < 4", window)
	}
	if !(alpha > 0 && alpha < 1) {
		return fmt.Errorf("detect: trend snapshot alpha %v out of (0,1)", alpha)
	}
	if n > window {
		return fmt.Errorf("detect: trend snapshot fill %d exceeds window %d", n, window)
	}
	if seen < int64(n) {
		return fmt.Errorf("detect: trend snapshot seen %d < fill %d", seen, n)
	}
	if seen == 0 && t0 != 0 {
		// The writer emits 0 for an unused time origin; anything else is
		// a non-canonical encoding.
		return fmt.Errorf("detect: trend snapshot time origin %d with no samples", t0)
	}
	if window != o.window {
		o.window = window
		o.xs = make([]float64, window)
		o.ys = make([]float64, window)
		o.slopes = metrics.NewSlopeStore(window)
		o.removals = make([]float64, 0, window)
		o.inserts = make([]float64, 0, window)
	}
	o.alpha = alpha
	o.seen = seen
	o.t0 = time.Time{}
	if seen > 0 {
		o.t0 = time.Unix(0, t0).UTC()
	}
	o.head = 0
	o.n = n
	for i := 0; i < n; i++ {
		x, y := p.Float(), p.Float()
		if p.Err() == nil && (!isFinite(x) || !isFinite(y)) {
			return fmt.Errorf("detect: non-finite trend sample (%v, %v)", x, y)
		}
		o.xs[i], o.ys[i] = x, y
	}
	if err := p.Err(); err != nil {
		return err
	}
	// Rebuild the derived state from the window pairs.
	o.s, o.tieCorr = 0, 0
	clear(o.ties)
	o.slopes.Reset()
	var all []float64
	if n > 1 {
		all = make([]float64, 0, n*(n-1)/2)
	}
	for j := 0; j < n; j++ {
		xj, yj := o.xs[j], o.ys[j]
		for i := 0; i < j; i++ {
			o.s += sign(yj - o.ys[i])
			if dx := xj - o.xs[i]; dx != 0 {
				all = append(all, (yj-o.ys[i])/dx)
			}
		}
		o.retie(yj, 1)
	}
	o.slopes.Update(nil, all)
	return nil
}

// Restore replaces the detector's state from a Snapshot buffer.
func (o *OnlineTrend) Restore(data []byte) error {
	p := binc.NewParser(data)
	if err := o.RestoreSnapshot(p); err != nil {
		return err
	}
	return p.Done()
}

// ---- PageHinkley ----

// AppendSnapshot appends the detector's versioned state (configuration,
// Welford baseline estimate, excursion accumulator).
func (ph *PageHinkley) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, phSnapVersion)
	dst = binc.AppendFloat(dst, ph.delta)
	dst = binc.AppendFloat(dst, ph.lambda)
	dst = binc.AppendUvarint(dst, uint64(ph.warmup))
	dst = binc.AppendUvarint(dst, uint64(ph.n))
	dst = binc.AppendFloat(dst, ph.mean)
	dst = binc.AppendFloat(dst, ph.m2)
	dst = binc.AppendFloat(dst, ph.base)
	dst = binc.AppendFloat(dst, ph.scale)
	dst = binc.AppendBool(dst, ph.ready)
	dst = binc.AppendFloat(dst, ph.cum)
	dst = binc.AppendFloat(dst, ph.minCum)
	dst = binc.AppendBool(dst, ph.tripped)
	return dst
}

// Snapshot returns the detector's versioned binary state.
func (ph *PageHinkley) Snapshot() []byte { return ph.AppendSnapshot(nil) }

// RestoreSnapshot replaces the receiver's state from a snapshot read off
// p, adopting the snapshot's configuration.
func (ph *PageHinkley) RestoreSnapshot(p *binc.Parser) error {
	if v := p.Byte(); p.Err() == nil && v != phSnapVersion {
		return fmt.Errorf("detect: page-hinkley snapshot v%d: %w", v, binc.ErrVersion)
	}
	delta := p.Float()
	lambda := p.Float()
	warmup := p.Count(maxSnapCounter)
	n := p.Count(maxSnapCounter)
	mean := p.Float()
	m2 := p.Float()
	base := p.Float()
	scale := p.Float()
	ready := p.Bool()
	cum := p.Float()
	minCum := p.Float()
	tripped := p.Bool()
	if err := p.Err(); err != nil {
		return err
	}
	if !(delta > 0) || !(lambda > 0) || warmup < 2 {
		return fmt.Errorf("detect: page-hinkley snapshot config (delta=%v lambda=%v warmup=%d)", delta, lambda, warmup)
	}
	// n counts only warmup samples; it freezes at warmup when the
	// baseline locks in.
	if ready && n != warmup {
		return fmt.Errorf("detect: page-hinkley snapshot ready with n=%d != warmup=%d", n, warmup)
	}
	if !ready && n >= warmup {
		return fmt.Errorf("detect: page-hinkley snapshot not ready with n=%d >= warmup=%d", n, warmup)
	}
	ph.delta, ph.lambda, ph.warmup = delta, lambda, warmup
	ph.n, ph.mean, ph.m2 = n, mean, m2
	ph.base, ph.scale, ph.ready = base, scale, ready
	ph.cum, ph.minCum, ph.tripped = cum, minCum, tripped
	return nil
}

// Restore replaces the detector's state from a Snapshot buffer.
func (ph *PageHinkley) Restore(data []byte) error {
	p := binc.NewParser(data)
	if err := ph.RestoreSnapshot(p); err != nil {
		return err
	}
	return p.Done()
}

// ---- EntropyDetector ----

// AppendSnapshot appends the detector's versioned state: the embedded
// entropy trend plus the latest observation.
func (e *EntropyDetector) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, entropySnapVersion)
	dst = e.trend.AppendSnapshot(dst)
	dst = binc.AppendFloat(dst, e.last)
	dst = binc.AppendBool(dst, e.haveObs)
	return dst
}

// Snapshot returns the detector's versioned binary state.
func (e *EntropyDetector) Snapshot() []byte { return e.AppendSnapshot(nil) }

// RestoreSnapshot replaces the receiver's state from a snapshot read off p.
func (e *EntropyDetector) RestoreSnapshot(p *binc.Parser) error {
	if v := p.Byte(); p.Err() == nil && v != entropySnapVersion {
		return fmt.Errorf("detect: entropy snapshot v%d: %w", v, binc.ErrVersion)
	}
	if err := e.trend.RestoreSnapshot(p); err != nil {
		return err
	}
	e.last = p.Float()
	e.haveObs = p.Bool()
	return p.Err()
}

// Restore replaces the detector's state from a Snapshot buffer.
func (e *EntropyDetector) Restore(data []byte) error {
	p := binc.NewParser(data)
	if err := e.RestoreSnapshot(p); err != nil {
		return err
	}
	return p.Done()
}

// ---- ShiftGuard ----

// AppendSnapshot appends the guard's versioned state: configuration, the
// reference mix key-sorted, and the suppression bookkeeping.
func (g *ShiftGuard) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, guardSnapVersion)
	dst = binc.AppendFloat(dst, g.threshold)
	dst = binc.AppendUvarint(dst, uint64(g.hold))
	dst = binc.AppendFloat(dst, g.ewma)
	dst = binc.AppendFloat(dst, g.margin)
	dst = binc.AppendBool(dst, g.ref != nil)
	if g.ref != nil {
		keys := make([]string, 0, len(g.ref))
		for k := range g.ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		dst = binc.AppendUvarint(dst, uint64(len(keys)))
		for _, k := range keys {
			dst = binc.AppendString(dst, k)
			dst = binc.AppendFloat(dst, g.ref[k])
		}
	}
	dst = binc.AppendFloat(dst, g.lastDist)
	dst = binc.AppendFloat(dst, g.lastThr)
	dst = binc.AppendUvarint(dst, uint64(g.calmLeft))
	dst = binc.AppendBool(dst, g.shifted)
	dst = binc.AppendVarint(dst, g.rounds)
	dst = binc.AppendVarint(dst, g.lastShift)
	return dst
}

// Snapshot returns the guard's versioned binary state.
func (g *ShiftGuard) Snapshot() []byte { return g.AppendSnapshot(nil) }

// RestoreSnapshot replaces the receiver's state from a snapshot read off
// p, adopting the snapshot's configuration. A nil reference mix is
// preserved as nil — it means "next non-idle round seeds the baseline",
// which is distinct from an empty reference.
func (g *ShiftGuard) RestoreSnapshot(p *binc.Parser) error {
	if v := p.Byte(); p.Err() == nil && v != guardSnapVersion {
		return fmt.Errorf("detect: shift guard snapshot v%d: %w", v, binc.ErrVersion)
	}
	threshold := p.Float()
	hold := p.Count(maxSnapCounter)
	ewma := p.Float()
	margin := p.Float()
	haveRef := p.Bool()
	var ref map[string]float64
	if p.Err() == nil && haveRef {
		n := p.Count(maxSnapComps)
		ref = make(map[string]float64, n)
		prev := ""
		for i := 0; i < n; i++ {
			k := p.String(maxSnapString)
			v := p.Float()
			if p.Err() != nil {
				break
			}
			if i > 0 && k <= prev {
				return fmt.Errorf("detect: shift guard snapshot reference not key-sorted (%q after %q)", k, prev)
			}
			ref[k] = v
			prev = k
		}
	}
	lastDist := p.Float()
	lastThr := p.Float()
	calmLeft := p.Count(maxSnapCounter)
	shifted := p.Bool()
	rounds := p.Varint()
	lastShift := p.Varint()
	if err := p.Err(); err != nil {
		return err
	}
	if !(threshold > 0 && threshold < 1) || hold <= 0 || !(ewma > 0 && ewma <= 1) || !(margin > 0) {
		return fmt.Errorf("detect: shift guard snapshot config (thr=%v hold=%d ewma=%v margin=%v)", threshold, hold, ewma, margin)
	}
	if calmLeft > hold {
		return fmt.Errorf("detect: shift guard snapshot calmLeft %d > hold %d", calmLeft, hold)
	}
	g.threshold, g.hold, g.ewma, g.margin = threshold, hold, ewma, margin
	g.ref = ref
	g.lastDist, g.lastThr = lastDist, lastThr
	g.calmLeft, g.shifted = calmLeft, shifted
	g.rounds, g.lastShift = rounds, lastShift
	return nil
}

// Restore replaces the guard's state from a Snapshot buffer.
func (g *ShiftGuard) Restore(data []byte) error {
	p := binc.NewParser(data)
	if err := g.RestoreSnapshot(p); err != nil {
		return err
	}
	return p.Done()
}

// ---- Monitor ----

func appendConfigSnapshot(dst []byte, cfg Config) []byte {
	dst = binc.AppendUvarint(dst, uint64(cfg.Window))
	dst = binc.AppendFloat(dst, cfg.Alpha)
	dst = binc.AppendFloat(dst, cfg.MinSlope)
	dst = binc.AppendUvarint(dst, uint64(cfg.MinSamples))
	dst = binc.AppendUvarint(dst, uint64(cfg.Consecutive))
	dst = binc.AppendBool(dst, cfg.PerInvocation)
	dst = binc.AppendFloat(dst, cfg.ShiftThreshold)
	dst = binc.AppendUvarint(dst, uint64(cfg.ShiftHold))
	dst = binc.AppendFloat(dst, cfg.ShiftEWMA)
	dst = binc.AppendFloat(dst, cfg.ShiftNoiseMargin)
	dst = binc.AppendBool(dst, cfg.ChangePoint)
	dst = binc.AppendFloat(dst, cfg.PHDelta)
	dst = binc.AppendFloat(dst, cfg.PHLambda)
	dst = binc.AppendUvarint(dst, uint64(cfg.PHWarmup))
	dst = binc.AppendUvarint(dst, uint64(cfg.ReportRetention))
	return dst
}

func parseConfigSnapshot(p *binc.Parser) Config {
	var cfg Config
	cfg.Window = p.Count(maxSnapWindow)
	cfg.Alpha = p.Float()
	cfg.MinSlope = p.Float()
	cfg.MinSamples = p.Count(maxSnapConfig)
	cfg.Consecutive = p.Count(maxSnapConfig)
	cfg.PerInvocation = p.Bool()
	cfg.ShiftThreshold = p.Float()
	cfg.ShiftHold = p.Count(maxSnapConfig)
	cfg.ShiftEWMA = p.Float()
	cfg.ShiftNoiseMargin = p.Float()
	cfg.ChangePoint = p.Bool()
	cfg.PHDelta = p.Float()
	cfg.PHLambda = p.Float()
	cfg.PHWarmup = p.Count(maxSnapConfig)
	cfg.ReportRetention = p.Count(maxSnapRetention)
	return cfg
}

// AppendSnapshot appends the monitor's versioned state: resource,
// effective configuration, round counters, the shift guard, the entropy
// detector and every component's detector state, key-sorted. The report
// ring is not serialised; a restored monitor publishes its first report
// on its next Observe.
func (m *Monitor) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, monSnapVersion)
	dst = binc.AppendString(dst, m.resource)
	dst = appendConfigSnapshot(dst, m.cfg)
	dst = binc.AppendVarint(dst, m.rounds)
	dst = binc.AppendVarint(dst, m.shiftRounds)
	dst = binc.AppendUvarint(dst, uint64(m.entropyStreak))
	dst = m.guard.AppendSnapshot(dst)
	dst = m.entropy.AppendSnapshot(dst)
	names := make([]string, 0, len(m.comps))
	for name := range m.comps {
		names = append(names, name)
	}
	sort.Strings(names)
	dst = binc.AppendUvarint(dst, uint64(len(names)))
	for _, name := range names {
		st := m.comps[name]
		dst = binc.AppendString(dst, name)
		dst = st.trend.AppendSnapshot(dst)
		dst = binc.AppendBool(dst, st.ph != nil)
		if st.ph != nil {
			dst = st.ph.AppendSnapshot(dst)
		}
		dst = binc.AppendFloat(dst, st.prevValue)
		dst = binc.AppendFloat(dst, st.prevUsage)
		dst = binc.AppendBool(dst, st.havePrev)
		dst = binc.AppendUvarint(dst, uint64(st.streak))
		dst = binc.AppendVarint(dst, st.firstAlarm)
		dst = binc.AppendFloat(dst, st.share)
	}
	return dst
}

// Snapshot returns the monitor's versioned binary state.
func (m *Monitor) Snapshot() []byte { return m.AppendSnapshot(nil) }

// RestoreMonitorSnapshot builds a Monitor from a snapshot read off p. The
// snapshot's configuration must already be in canonical (defaulted) form
// and every embedded detector must carry the configuration the monitor
// would construct it with — both are what Monitor.AppendSnapshot writes,
// so only corrupt or hand-altered snapshots fail these checks.
func RestoreMonitorSnapshot(p *binc.Parser) (*Monitor, error) {
	if v := p.Byte(); p.Err() == nil && v != monSnapVersion {
		return nil, fmt.Errorf("detect: monitor snapshot v%d: %w", v, binc.ErrVersion)
	}
	resource := p.String(maxSnapString)
	cfg := parseConfigSnapshot(p)
	if err := p.Err(); err != nil {
		return nil, err
	}
	if cfg != cfg.withDefaults() {
		return nil, fmt.Errorf("detect: monitor snapshot config not canonical")
	}
	m := NewMonitor(resource, cfg)
	// Probes carry the exact constructor-normalised configuration the
	// monitor's own detectors run with, for validating embedded blobs.
	probeTrend := NewOnlineTrend(cfg.Window, cfg.Alpha)
	var probePH *PageHinkley
	if cfg.ChangePoint {
		probePH = NewPageHinkley(cfg.PHDelta, cfg.PHLambda, cfg.PHWarmup)
	}
	m.rounds = p.Varint()
	m.shiftRounds = p.Varint()
	m.entropyStreak = p.Count(maxSnapCounter)
	if err := m.guard.RestoreSnapshot(p); err != nil {
		return nil, err
	}
	if m.guard.threshold != cfg.ShiftThreshold || m.guard.hold != cfg.ShiftHold ||
		m.guard.ewma != cfg.ShiftEWMA || m.guard.margin != cfg.ShiftNoiseMargin {
		return nil, fmt.Errorf("detect: monitor snapshot shift guard config mismatch")
	}
	if err := m.entropy.RestoreSnapshot(p); err != nil {
		return nil, err
	}
	if m.entropy.trend.window != probeTrend.window || m.entropy.trend.alpha != probeTrend.alpha {
		return nil, fmt.Errorf("detect: monitor snapshot entropy window config mismatch")
	}
	nComps := p.Count(maxSnapComps)
	if err := p.Err(); err != nil {
		return nil, err
	}
	prev := ""
	for i := 0; i < nComps; i++ {
		name := p.String(maxSnapString)
		if p.Err() != nil {
			return nil, p.Err()
		}
		if i > 0 && name <= prev {
			return nil, fmt.Errorf("detect: monitor snapshot components not key-sorted (%q after %q)", name, prev)
		}
		prev = name
		st := &componentState{trend: NewOnlineTrend(cfg.Window, cfg.Alpha)}
		if err := st.trend.RestoreSnapshot(p); err != nil {
			return nil, err
		}
		if st.trend.window != probeTrend.window || st.trend.alpha != probeTrend.alpha {
			return nil, fmt.Errorf("detect: monitor snapshot trend config mismatch for %q", name)
		}
		hasPH := p.Bool()
		if p.Err() == nil && hasPH != cfg.ChangePoint {
			return nil, fmt.Errorf("detect: monitor snapshot change-point presence mismatch for %q", name)
		}
		if hasPH {
			st.ph = NewPageHinkley(cfg.PHDelta, cfg.PHLambda, cfg.PHWarmup)
			if err := st.ph.RestoreSnapshot(p); err != nil {
				return nil, err
			}
			if st.ph.delta != probePH.delta || st.ph.lambda != probePH.lambda || st.ph.warmup != probePH.warmup {
				return nil, fmt.Errorf("detect: monitor snapshot page-hinkley config mismatch for %q", name)
			}
		}
		st.prevValue = p.Float()
		st.prevUsage = p.Float()
		st.havePrev = p.Bool()
		st.streak = p.Count(maxSnapCounter)
		st.firstAlarm = p.Varint()
		st.share = p.Float()
		if p.Err() != nil {
			return nil, p.Err()
		}
		m.comps[name] = st
	}
	if err := p.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// RestoreMonitor builds a Monitor from a Snapshot buffer.
func RestoreMonitor(data []byte) (*Monitor, error) {
	p := binc.NewParser(data)
	m, err := RestoreMonitorSnapshot(p)
	if err != nil {
		return nil, err
	}
	if err := p.Done(); err != nil {
		return nil, err
	}
	return m, nil
}

// ---- Report ----

// AppendSnapshot appends the report's versioned state. The aggregation
// plane serialises pending per-round reports with this (rounds ingested
// but not yet folded into an epoch), so a restored aggregator folds them
// exactly as the original would have.
func (r *Report) AppendSnapshot(dst []byte) []byte {
	dst = append(dst, reportSnapVersion)
	dst = binc.AppendString(dst, r.Resource)
	dst = binc.AppendVarint(dst, r.Round)
	dst = binc.AppendVarint(dst, r.Time.UnixNano())
	dst = binc.AppendBool(dst, r.Suppressed)
	dst = binc.AppendFloat(dst, r.ShiftDistance)
	dst = binc.AppendVarint(dst, r.ShiftRounds)
	dst = binc.AppendFloat(dst, r.Entropy)
	dst = binc.AppendBool(dst, r.EntropyObserved)
	dst = binc.AppendBool(dst, r.EntropyAlarm)
	dst = binc.AppendString(dst, r.EntropySuspect)
	dst = binc.AppendUvarint(dst, uint64(len(r.Components)))
	for i := range r.Components {
		v := &r.Components[i]
		dst = binc.AppendString(dst, v.Component)
		dst = binc.AppendBool(dst, v.Alarm)
		dst = binc.AppendFloat(dst, v.Score)
		dst = append(dst, byte(v.Trend.Direction))
		dst = binc.AppendVarint(dst, v.Trend.S)
		dst = binc.AppendFloat(dst, v.Trend.Z)
		dst = binc.AppendFloat(dst, v.Trend.P)
		dst = binc.AppendFloat(dst, v.Trend.SenSlope)
		dst = binc.AppendUvarint(dst, uint64(v.Streak))
		dst = binc.AppendUvarint(dst, uint64(v.Samples))
		dst = binc.AppendFloat(dst, v.Share)
		dst = binc.AppendVarint(dst, v.FirstAlarmRound)
		dst = binc.AppendBool(dst, v.ChangePoint)
	}
	return dst
}

// RestoreReportSnapshot builds a freshly allocated Report from a snapshot
// read off p.
func RestoreReportSnapshot(p *binc.Parser) (*Report, error) {
	if v := p.Byte(); p.Err() == nil && v != reportSnapVersion {
		return nil, fmt.Errorf("detect: report snapshot v%d: %w", v, binc.ErrVersion)
	}
	r := &Report{}
	r.Resource = p.String(maxSnapString)
	r.Round = p.Varint()
	r.Time = time.Unix(0, p.Varint()).UTC()
	r.Suppressed = p.Bool()
	r.ShiftDistance = p.Float()
	r.ShiftRounds = p.Varint()
	r.Entropy = p.Float()
	r.EntropyObserved = p.Bool()
	r.EntropyAlarm = p.Bool()
	r.EntropySuspect = p.String(maxSnapString)
	n := p.Count(maxSnapComps)
	if p.Err() != nil {
		return nil, p.Err()
	}
	r.Components = make([]Verdict, 0, n)
	for i := 0; i < n; i++ {
		var v Verdict
		v.Component = p.String(maxSnapString)
		v.Alarm = p.Bool()
		v.Score = p.Float()
		dir := p.Byte()
		if p.Err() == nil && dir > byte(metrics.TrendDecreasing) {
			return nil, fmt.Errorf("detect: report snapshot trend direction %d", dir)
		}
		v.Trend.Direction = metrics.TrendDirection(dir)
		v.Trend.S = p.Varint()
		v.Trend.Z = p.Float()
		v.Trend.P = p.Float()
		v.Trend.SenSlope = p.Float()
		v.Streak = p.Count(maxSnapCounter)
		v.Samples = p.Count(maxSnapCounter)
		v.Share = p.Float()
		v.FirstAlarmRound = p.Varint()
		v.ChangePoint = p.Bool()
		if p.Err() != nil {
			return nil, p.Err()
		}
		r.Components = append(r.Components, v)
	}
	return r, nil
}

package detect

import (
	"math"
	"time"

	"repro/internal/metrics"
)

// EntropyDetector implements CHAOS-style aging detection: it watches the
// Shannon entropy of the per-component resource-consumption distribution.
// A healthy system spreads its consumption across components in a roughly
// stationary pattern; an aging component accumulates a steadily growing
// share, so the distribution concentrates and its entropy drifts downward.
// The detector therefore feeds the normalised entropy of every round's
// consumption-delta shares into an OnlineTrend and alarms on a significant
// decreasing trend.
//
// Entropy is normalised by log(k) (k = number of components with any
// consumption) so the signal is comparable as components come and go; a
// single-component round yields entropy 0 and is still well-defined.
//
// Like OnlineTrend, it is single-owner: only the sampling goroutine calls
// Observe.
type EntropyDetector struct {
	trend *OnlineTrend

	last    float64
	haveObs bool
}

// NewEntropyDetector creates a detector whose entropy series is tested
// over the given window at significance alpha.
func NewEntropyDetector(window int, alpha float64) *EntropyDetector {
	return &EntropyDetector{trend: NewOnlineTrend(window, alpha)}
}

// Reset discards the entropy history (used after a workload shift: the
// pre-shift distribution is no longer the baseline the entropy trend
// should be judged against).
func (e *EntropyDetector) Reset() {
	e.trend.Reset()
	e.haveObs = false
}

// Observe absorbs one round of per-component consumption deltas (the
// amount each component consumed since the previous round; negative deltas
// are clamped to zero). Rounds where nothing was consumed carry no
// distributional information and are skipped.
func (e *EntropyDetector) Observe(now time.Time, deltas []float64) {
	var total float64
	k := 0
	for _, d := range deltas {
		if d > 0 {
			total += d
			k++
		}
	}
	if total <= 0 || k == 0 {
		return
	}
	var h float64
	for _, d := range deltas {
		if d <= 0 {
			continue
		}
		p := d / total
		h -= p * math.Log(p)
	}
	if k > 1 {
		h /= math.Log(float64(k))
	}
	e.last = h
	e.haveObs = true
	e.trend.Push(now, h)
}

// Last returns the most recent normalised entropy and whether any round
// has been observed.
func (e *EntropyDetector) Last() (float64, bool) { return e.last, e.haveObs }

// Result returns the Mann-Kendall verdict over the entropy series. Aging
// concentration shows as TrendDecreasing.
func (e *EntropyDetector) Result() metrics.TrendResult { return e.trend.Result() }

// Alarming reports whether the entropy shows a significant decreasing
// trend — the CHAOS aging signal.
func (e *EntropyDetector) Alarming() bool {
	return e.trend.Result().Direction == metrics.TrendDecreasing
}

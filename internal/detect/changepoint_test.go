package detect

import (
	"fmt"
	"math"
	"testing"
	"time"
)

// stepSeries is a synthetic per-invocation cost series: `flat` rounds at
// the base level with small deterministic jitter, then a step of `jump`
// that persists. This is the signature of a constant-Extra CPU hog
// switching on — a level shift, not a trend.
func stepSeries(n, flat int, base, jitter, jump float64) []float64 {
	out := make([]float64, n)
	for i := range out {
		v := base + jitter*math.Sin(float64(i)*1.7)
		if i >= flat {
			v += jump
		}
		out[i] = v
	}
	return out
}

func TestPageHinkleyCatchesStep(t *testing.T) {
	ph := NewPageHinkley(0, 0, 0) // defaults
	series := stepSeries(60, 30, 0.100, 0.002, 0.040)
	trippedAt := -1
	for i, v := range series {
		if ph.Push(v) && trippedAt < 0 {
			trippedAt = i
		}
	}
	if trippedAt < 0 {
		t.Fatal("Page-Hinkley never tripped on a 40% level step")
	}
	if trippedAt < 30 {
		t.Fatalf("tripped at sample %d, before the step at 30", trippedAt)
	}
	if trippedAt > 40 {
		t.Fatalf("tripped only at sample %d, more than 10 samples after the step", trippedAt)
	}
	if ph.Magnitude() <= 0 {
		t.Fatalf("tripped detector reports magnitude %v", ph.Magnitude())
	}
}

func TestPageHinkleyQuietOnFlatAndNoise(t *testing.T) {
	// Pure noise around a level must never trip, and neither must a
	// perfectly constant series.
	for name, series := range map[string][]float64{
		"noisy":    stepSeries(200, 200, 0.100, 0.004, 0),
		"constant": stepSeries(200, 200, 0.100, 0, 0),
	} {
		ph := NewPageHinkley(0, 0, 0)
		for i, v := range series {
			if ph.Push(v) {
				t.Fatalf("%s series tripped at sample %d", name, i)
			}
		}
	}
}

func TestPageHinkleyResetRecalibrates(t *testing.T) {
	ph := NewPageHinkley(0, 0, 0)
	for _, v := range stepSeries(45, 30, 0.100, 0.002, 0.040) {
		ph.Push(v)
	}
	if !ph.Tripped() {
		t.Fatal("precondition: detector should have tripped")
	}
	ph.Reset()
	if ph.Tripped() || ph.Ready() {
		t.Fatal("Reset did not clear state")
	}
	// After the reset the shifted level becomes the new baseline; staying
	// there must not re-trip.
	for i, v := range stepSeries(60, 60, 0.140, 0.002, 0) {
		if ph.Push(v) {
			t.Fatalf("re-tripped at sample %d after recalibration", i)
		}
	}
}

// observeStepCPU drives a Monitor with a per-invocation CPU step: every
// round each component gains `du` invocations, and the hogged component's
// per-invocation cost steps from base to base+jump at round `flat`.
func observeStepCPU(m *Monitor, rounds, flat int, base, jump float64) {
	t0 := time.Unix(0, 0)
	var cumHog, cumOK float64
	var usage float64
	for r := 0; r < rounds; r++ {
		const du = 100
		usage += du
		cost := base
		if r >= flat {
			cost = base + jump
		}
		cumHog += cost * du
		cumOK += base * du
		m.Observe(t0.Add(time.Duration(r)*30*time.Second), []Observation{
			{Component: "hog", Value: cumHog, Usage: usage},
			{Component: "ok", Value: cumOK, Usage: usage},
		})
	}
}

func TestMonitorChangePointCatchesCPUStep(t *testing.T) {
	// The per-invocation CPU detector with the production slope floor: a
	// constant 40ms hog is a step that the floored trend cannot flag
	// (that is the ROADMAP gap), but the change-point detector must.
	base := Config{Window: 20, MinSamples: 6, Consecutive: 3, MinSlope: 5e-4, PerInvocation: true}

	trendOnly := NewMonitor("cpu", base)
	observeStepCPU(trendOnly, 40, 15, 0.100, 0.040)
	if rep := trendOnly.Latest(); len(rep.Alarms()) != 0 {
		t.Fatalf("trend-only monitor alarmed on a level step: %s", rep)
	}

	cpCfg := base
	cpCfg.ChangePoint = true
	cp := NewMonitor("cpu", cpCfg)
	observeStepCPU(cp, 40, 15, 0.100, 0.040)
	rep := cp.Latest()
	top, ok := rep.Top()
	if !ok {
		t.Fatalf("change-point monitor raised no alarm:\n%s", rep)
	}
	if top.Component != "hog" || !top.ChangePoint {
		t.Fatalf("wrong verdict: %+v", top)
	}
	for _, v := range rep.Components {
		if v.Component == "ok" && v.Alarm {
			t.Fatalf("healthy component alarmed: %+v", v)
		}
	}
	if !(rep.String() != "" && top.Score > 0) {
		t.Fatalf("alarm without a usable score: %+v", top)
	}
}

func TestMonitorChangePointOffByDefault(t *testing.T) {
	cfg := Config{Window: 20, MinSamples: 6, Consecutive: 3}
	m := NewMonitor("cpu", cfg)
	if m.Config().ChangePoint {
		t.Fatal("ChangePoint must default to off")
	}
	// And the zero-value path must not allocate PH state.
	observeStepCPU(m, 5, 99, 0.1, 0)
	for c, st := range m.comps {
		if st.ph != nil {
			t.Fatalf("component %s has PH state with ChangePoint off", c)
		}
	}
}

func ExamplePageHinkley() {
	ph := NewPageHinkley(0, 0, 4)
	for i := 0; i < 20; i++ {
		v := 1.0
		if i >= 10 {
			v = 1.5
		}
		if ph.Push(v) {
			fmt.Printf("tripped at %d\n", i)
			break
		}
	}
	// Output: tripped at 10
}

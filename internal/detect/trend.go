package detect

import (
	"math"
	"time"

	"repro/internal/metrics"
)

// OnlineTrend is an incremental Mann-Kendall trend detector over a sliding
// window of the most recent Window observations. Where
// metrics.MannKendall re-scans the whole series in O(n²) per query, this
// detector maintains the S statistic and the tie table across pushes and
// evictions, so absorbing one sample costs O(Window) comparisons and a
// verdict costs O(1) (plus an O(Window²) Sen-slope estimate that is only
// computed when the test is significant).
//
// It is not safe for concurrent use: one goroutine — in this repo the
// manager's sampling round — owns it. Consumers that need the verdict from
// other goroutines read the Monitor's published Report instead.
type OnlineTrend struct {
	window int
	alpha  float64

	xs   []float64 // ring buffer, seconds since first sample
	ys   []float64 // ring buffer, values
	head int       // index of the oldest element
	n    int       // current fill

	s     int64             // Mann-Kendall S over the window
	ties  map[float64]int64 // value -> multiplicity, for the variance correction
	t0    time.Time
	seen  int64 // total samples ever absorbed
	dirty bool  // Sen slope cache invalid
	slope float64
}

// NewOnlineTrend creates a detector with the given window size (minimum 4,
// the smallest n for which the normal approximation of S means anything)
// and Mann-Kendall significance level alpha (default 0.05 when out of
// (0,1)).
func NewOnlineTrend(window int, alpha float64) *OnlineTrend {
	if window < 4 {
		window = 4
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	return &OnlineTrend{
		window: window,
		alpha:  alpha,
		xs:     make([]float64, window),
		ys:     make([]float64, window),
		ties:   make(map[float64]int64),
	}
}

// Window returns the configured window size.
func (o *OnlineTrend) Window() int { return o.window }

// Len returns the current number of samples in the window.
func (o *OnlineTrend) Len() int { return o.n }

// Seen returns the total number of samples ever pushed.
func (o *OnlineTrend) Seen() int64 { return o.seen }

// Reset discards the window, e.g. after a workload shift invalidated the
// history the trend was estimated against.
func (o *OnlineTrend) Reset() {
	o.head, o.n, o.s = 0, 0, 0
	o.ties = make(map[float64]int64)
	o.dirty = true
}

// at returns the i-th oldest buffered sample, i in [0, n).
func (o *OnlineTrend) at(i int) (x, y float64) {
	j := (o.head + i) % o.window
	return o.xs[j], o.ys[j]
}

// Push absorbs one observation. When the window is full the oldest
// observation is evicted first; S is maintained incrementally through both
// halves, which is what makes the update O(Window) instead of O(Window²).
func (o *OnlineTrend) Push(t time.Time, v float64) {
	if o.seen == 0 {
		o.t0 = t
	}
	o.seen++
	if o.n == o.window {
		// Evict the oldest: remove its sign contributions against every
		// survivor (it was the earlier element of each of those pairs).
		_, oldest := o.at(0)
		for i := 1; i < o.n; i++ {
			_, yi := o.at(i)
			o.s -= sign(yi - oldest)
		}
		if c := o.ties[oldest] - 1; c > 0 {
			o.ties[oldest] = c
		} else {
			delete(o.ties, oldest)
		}
		o.head = (o.head + 1) % o.window
		o.n--
	}
	// Insert the newest: it is the later element of every new pair.
	for i := 0; i < o.n; i++ {
		_, yi := o.at(i)
		o.s += sign(v - yi)
	}
	j := (o.head + o.n) % o.window
	o.xs[j] = t.Sub(o.t0).Seconds()
	o.ys[j] = v
	o.n++
	o.ties[v]++
	o.dirty = true
}

// Result computes the Mann-Kendall verdict over the current window. The
// Sen slope is estimated only when the trend is significant; otherwise the
// cached (possibly stale) slope is reported with the direction TrendNone.
func (o *OnlineTrend) Result() metrics.TrendResult {
	res := metrics.TrendResult{S: o.s}
	n := o.n
	if n < 4 {
		return res
	}
	varS := float64(n*(n-1)*(2*n+5)) / 18
	for _, t := range o.ties {
		if t > 1 {
			varS -= float64(t*(t-1)*(2*t+5)) / 18
		}
	}
	if varS <= 0 {
		return res
	}
	switch {
	case o.s > 0:
		res.Z = float64(o.s-1) / math.Sqrt(varS)
	case o.s < 0:
		res.Z = float64(o.s+1) / math.Sqrt(varS)
	}
	res.P = 2 * (1 - metrics.StdNormalCDF(math.Abs(res.Z)))
	if res.P < o.alpha {
		if o.s > 0 {
			res.Direction = metrics.TrendIncreasing
		} else {
			res.Direction = metrics.TrendDecreasing
		}
		if o.dirty {
			o.slope = o.senSlope()
			if o.slope == 0 {
				// Staircase fallback: a resource that grows in sparse
				// jumps (a leak hit once per many sampling rounds — the
				// signature of a lightly loaded cluster replica) yields a
				// significant Mann-Kendall verdict whose *median*
				// pairwise slope is still exactly zero, because most
				// pairs lie on the same tread. The endpoint slope over
				// the window is the average growth rate and is safe here
				// precisely because the test already confirmed a
				// significant monotone trend — but only when the total
				// rise is material relative to the level, so the
				// floating-point jitter of a genuinely constant series
				// (~1e-16 relative) never masquerades as growth.
				x0, y0 := o.at(0)
				xn, yn := o.at(o.n - 1)
				rise := yn - y0
				if xn > x0 && math.Abs(rise) > 1e-9*math.Max(math.Abs(y0), math.Abs(yn)) {
					o.slope = rise / (xn - x0)
				}
			}
			o.dirty = false
		}
	}
	res.SenSlope = o.slope
	return res
}

// senSlope estimates the median pairwise slope over the window, units
// per second, via the shared metrics.SenSlope estimator. O(Window²) —
// called only on significant trends, where a slopes buffer of that size
// is allocated anyway.
func (o *OnlineTrend) senSlope() float64 {
	xs := make([]float64, o.n)
	ys := make([]float64, o.n)
	for i := 0; i < o.n; i++ {
		xs[i], ys[i] = o.at(i)
	}
	return metrics.SenSlope(xs, ys)
}

func sign(d float64) int64 {
	switch {
	case d > 0:
		return 1
	case d < 0:
		return -1
	}
	return 0
}

package detect

import (
	"math"
	"time"

	"repro/internal/metrics"
)

// OnlineTrend is an incremental Mann-Kendall trend detector over a sliding
// window of the most recent Window observations. Where
// metrics.MannKendall re-scans the whole series in O(n²) per query, this
// detector maintains the S statistic, the tie table AND the sorted
// multiset of pairwise slopes (metrics.SlopeStore) across pushes and
// evictions, so absorbing one sample costs O(Window) slope updates and a
// verdict — Sen slope included — costs O(1). Earlier revisions recomputed
// the O(Window²) Sen estimate from scratch on every significant round;
// that recompute (and its scratch allocations) was the dominant cost of a
// monitoring round and is gone.
//
// Steady-state pushes allocate nothing: the ring buffers and the slope
// store are pre-sized at construction and the tie table only grows while
// new distinct values appear.
//
// It is not safe for concurrent use: one goroutine — in this repo the
// manager's sampling round — owns it. Consumers that need the verdict from
// other goroutines read the Monitor's published Report instead.
type OnlineTrend struct {
	window int
	alpha  float64

	xs   []float64 // ring buffer, seconds since first sample
	ys   []float64 // ring buffer, values
	head int       // index of the oldest element
	n    int       // current fill

	s    int64             // Mann-Kendall S over the window
	ties map[float64]int64 // value -> multiplicity, for the variance correction
	// tieCorr is Σ t·(t-1)·(2t+5) over tie groups, maintained exactly in
	// integer arithmetic as multiplicities change, so Result never has to
	// iterate the tie table.
	tieCorr int64
	slopes  *metrics.SlopeStore
	t0      time.Time
	seen    int64 // total samples ever absorbed

	// Per-push batches for the slope store's merge pass, reused across
	// pushes so steady-state maintenance allocates nothing.
	removals []float64
	inserts  []float64
}

// NewOnlineTrend creates a detector with the given window size (minimum 4,
// the smallest n for which the normal approximation of S means anything)
// and Mann-Kendall significance level alpha (default 0.05 when out of
// (0,1)).
func NewOnlineTrend(window int, alpha float64) *OnlineTrend {
	if window < 4 {
		window = 4
	}
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.05
	}
	return &OnlineTrend{
		window:   window,
		alpha:    alpha,
		xs:       make([]float64, window),
		ys:       make([]float64, window),
		ties:     make(map[float64]int64),
		slopes:   metrics.NewSlopeStore(window),
		removals: make([]float64, 0, window),
		inserts:  make([]float64, 0, window),
	}
}

// Window returns the configured window size.
func (o *OnlineTrend) Window() int { return o.window }

// Len returns the current number of samples in the window.
func (o *OnlineTrend) Len() int { return o.n }

// Seen returns the total number of samples ever pushed.
func (o *OnlineTrend) Seen() int64 { return o.seen }

// Reset discards the window, e.g. after a workload shift invalidated the
// history the trend was estimated against. The buffers, the tie table and
// the slope store are kept, so a reset-refill cycle allocates nothing.
func (o *OnlineTrend) Reset() {
	o.head, o.n, o.s, o.tieCorr = 0, 0, 0, 0
	clear(o.ties)
	o.slopes.Reset()
}

// tieTerm is one tie group's contribution to the variance correction.
func tieTerm(t int64) int64 { return t * (t - 1) * (2*t + 5) }

// retie moves value v's multiplicity from m to m' = m+d, keeping the
// correction sum exact.
func (o *OnlineTrend) retie(v float64, d int64) {
	m := o.ties[v]
	o.tieCorr += tieTerm(m+d) - tieTerm(m)
	if m+d > 0 {
		o.ties[v] = m + d
	} else {
		delete(o.ties, v)
	}
}

// at returns the i-th oldest buffered sample, i in [0, n).
func (o *OnlineTrend) at(i int) (x, y float64) {
	j := (o.head + i) % o.window
	return o.xs[j], o.ys[j]
}

// Push absorbs one observation. When the window is full the oldest
// observation is evicted first; S and the slope multiset are maintained
// incrementally through both halves, which is what makes the update
// O(Window) instead of O(Window²).
func (o *OnlineTrend) Push(t time.Time, v float64) {
	if o.seen == 0 {
		o.t0 = t
	}
	o.seen++
	o.removals = o.removals[:0]
	o.inserts = o.inserts[:0]
	if o.n == o.window {
		// Evict the oldest: remove its sign contributions against every
		// survivor (it was the earlier element of each of those pairs),
		// and batch the pairwise slopes it participated in for removal.
		// Each slope value is recomputed from the very same operands that
		// inserted it, so the float64 is bit-identical and the multiset
		// removal exact.
		oldestX, oldest := o.at(0)
		for i := 1; i < o.n; i++ {
			xi, yi := o.at(i)
			o.s -= sign(yi - oldest)
			if dx := xi - oldestX; dx != 0 {
				o.removals = append(o.removals, (yi-oldest)/dx)
			}
		}
		o.retie(oldest, -1)
		o.head = (o.head + 1) % o.window
		o.n--
	}
	// Insert the newest: it is the later element of every new pair.
	x := t.Sub(o.t0).Seconds()
	for i := 0; i < o.n; i++ {
		xi, yi := o.at(i)
		o.s += sign(v - yi)
		if dx := x - xi; dx != 0 {
			o.inserts = append(o.inserts, (v-yi)/dx)
		}
	}
	o.slopes.Update(o.removals, o.inserts)
	j := (o.head + o.n) % o.window
	o.xs[j] = x
	o.ys[j] = v
	o.n++
	o.retie(v, 1)
}

// Result computes the Mann-Kendall verdict over the current window. The
// Sen slope is the median of the incrementally maintained slope multiset,
// so reporting it costs O(1) regardless of significance.
func (o *OnlineTrend) Result() metrics.TrendResult {
	res := metrics.TrendResult{S: o.s}
	n := o.n
	if n < 4 {
		return res
	}
	varS := float64(int64(n*(n-1)*(2*n+5))-o.tieCorr) / 18
	if varS <= 0 {
		return res
	}
	switch {
	case o.s > 0:
		res.Z = float64(o.s-1) / math.Sqrt(varS)
	case o.s < 0:
		res.Z = float64(o.s+1) / math.Sqrt(varS)
	}
	res.P = 2 * (1 - metrics.StdNormalCDF(math.Abs(res.Z)))
	res.SenSlope = o.slopes.Median()
	if res.P < o.alpha {
		if o.s > 0 {
			res.Direction = metrics.TrendIncreasing
		} else {
			res.Direction = metrics.TrendDecreasing
		}
		if res.SenSlope == 0 {
			// Staircase fallback: a resource that grows in sparse
			// jumps (a leak hit once per many sampling rounds — the
			// signature of a lightly loaded cluster replica) yields a
			// significant Mann-Kendall verdict whose *median*
			// pairwise slope is still exactly zero, because most
			// pairs lie on the same tread. The endpoint slope over
			// the window is the average growth rate and is safe here
			// precisely because the test already confirmed a
			// significant monotone trend — but only when the total
			// rise is material relative to the level, so the
			// floating-point jitter of a genuinely constant series
			// (~1e-16 relative) never masquerades as growth.
			x0, y0 := o.at(0)
			xn, yn := o.at(o.n - 1)
			rise := yn - y0
			if xn > x0 && math.Abs(rise) > 1e-9*math.Max(math.Abs(y0), math.Abs(yn)) {
				res.SenSlope = rise / (xn - x0)
			}
		}
	}
	return res
}

func sign(d float64) int64 {
	switch {
	case d > 0:
		return 1
	case d < 0:
		return -1
	}
	return 0
}

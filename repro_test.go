package repro

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/tpcw"
)

// toyComponent is a minimal instrumentable component.
type toyComponent struct {
	LeakStore
}

func TestFacadeQuickstart(t *testing.T) {
	weaver := NewWeaver(nil)
	fw, err := NewFramework(FrameworkOptions{Weaver: weaver})
	if err != nil {
		t.Fatal(err)
	}
	comp := &toyComponent{}
	if err := fw.InstrumentComponent("shop.cart", comp); err != nil {
		t.Fatal(err)
	}
	handle := weaver.Weave("shop.cart", "Service", func(args ...any) (any, error) {
		comp.Retain(64 << 10)
		return nil, nil
	})
	for i := 0; i < 10; i++ {
		if _, err := handle(); err != nil {
			t.Fatal(err)
		}
		fw.Manager().Sample(fw.Clock().Now())
	}
	ranking := fw.Manager().Map(ResourceMemory)
	top, ok := ranking.Top()
	if !ok || top.Name != "shop.cart" {
		t.Fatalf("facade ranking top = %+v", top)
	}
}

func TestFacadeJMXRemote(t *testing.T) {
	weaver := NewWeaver(nil)
	fw, err := NewFramework(FrameworkOptions{Weaver: weaver})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewJMXHandler(fw.Server()))
	defer ts.Close()
	client := NewJMXClient(ts.URL, nil)
	names, err := client.Names("aging:*")
	if err != nil || len(names) == 0 {
		t.Fatalf("remote names = %v, %v", names, err)
	}
	out, err := client.Invoke("aging:type=Manager", "Sample")
	if err != nil || out.(float64) < 1 {
		t.Fatalf("remote Sample = %v, %v", out, err)
	}
}

func TestFacadeStack(t *testing.T) {
	stack, err := NewStack(StackConfig{
		Seed:      3,
		Monitored: true,
		Scale:     tpcw.Scale{Items: 100, Customers: 50, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer stack.Close()
	leak, err := stack.InjectLeak(tpcw.CompHome, 64<<10, 10, 9)
	if err != nil {
		t.Fatal(err)
	}
	stack.Driver.Run([]Phase{{Duration: 5 * time.Minute, EBs: 10}})
	if stack.Driver.Completed() == 0 {
		t.Fatal("no load completed through facade stack")
	}
	if leak.Injections() == 0 {
		t.Fatal("leak never fired")
	}
	top, _ := stack.Framework.Manager().Map(ResourceMemory).Top()
	if top.Name != tpcw.CompHome {
		t.Fatalf("stack top suspect = %s", top.Name)
	}
}

func TestFacadePointcuts(t *testing.T) {
	pc := MustPointcut("within(tpcw.*)")
	if !pc.Matches("tpcw.home", "Service") {
		t.Fatal("facade pointcut broken")
	}
	if _, err := ParsePointcut("bogus("); err == nil {
		t.Fatal("bad pointcut accepted")
	}
}

func TestFacadeObjectSize(t *testing.T) {
	buf := make([]byte, 4096)
	if ObjectSizeOf(buf) < 4096 {
		t.Fatal("ObjectSizeOf underestimates")
	}
}

func TestFacadeExperimentRunners(t *testing.T) {
	results := RunAllExperiments(ExperimentConfig{
		TimeScale: 0.05, Seed: 42, EBs: 20, Items: 200, Customers: 100,
	})
	if len(results) != 36 {
		t.Fatalf("experiments = %d, want 36", len(results))
	}
	ids := make([]string, len(results))
	for i, r := range results {
		ids[i] = r.ID
	}
	joined := strings.Join(ids, ",")
	for _, want := range []string{"T1", "F2", "F3", "F4", "F5", "F6", "F7", "E8", "E9", "E10", "E11", "A1", "A2", "A3", "S1", "S2", "S3", "S4", "S5", "S6", "S7", "S8", "S9", "S10", "S11", "S12", "S13", "S14", "S15", "S16", "S17", "S18", "S19", "S20", "S21", "S22"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing experiment %s in %v", want, ids)
		}
	}
	// At this tiny scale only the shape-independent experiments are
	// guaranteed to pass; the full-scale verdicts live in EXPERIMENTS.md.
	for _, r := range results {
		if r.ID == "T1" || r.ID == "F2" || r.ID == "A2" {
			if !r.Pass {
				t.Fatalf("%s failed at any scale:\n%s", r.ID, r)
			}
		}
	}
}

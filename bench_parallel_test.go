package repro

import (
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"repro/internal/aspect"
	"repro/internal/servlet"
	"repro/internal/tpcw"
)

// Parallel counterparts of the wall-clock microbenchmarks: they drive the
// same woven hot paths from GOMAXPROCS goroutines at once. With the
// sharded, lock-free pipeline the per-op cost should stay roughly flat as
// cores are added (throughput scales); a serial-lock pipeline flat-lines
// because every invocation serialises on the weaver and metrics mutexes.

func advisedWeaver(b *testing.B) aspect.Func {
	b.Helper()
	w := aspect.NewWeaver(nil)
	var count atomic.Int64
	if err := w.Register(&aspect.Aspect{
		Name:     "bench.ac",
		Pointcut: aspect.MustPointcut("within(bench.*)"),
		Before:   func(*aspect.JoinPoint) { count.Add(1) },
		After:    func(*aspect.JoinPoint) { count.Add(1) },
	}); err != nil {
		b.Fatal(err)
	}
	return w.Weave("bench.comp", "Service", rawComponent)
}

// BenchmarkAspectAdvisedParallel measures the advised woven handle under
// concurrent dispatch — the steady-state interception cost when many
// requests cross the same component at once.
func BenchmarkAspectAdvisedParallel(b *testing.B) {
	fn := advisedWeaver(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAspectWovenNoMatchParallel measures the zero-lock fast path
// (no aspect matches) under concurrent dispatch.
func BenchmarkAspectWovenNoMatchParallel(b *testing.B) {
	w := aspect.NewWeaver(nil)
	fn := w.Weave("bench.comp", "Service", rawComponent)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := fn(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAspectAdvisedScaling sweeps GOMAXPROCS to show how advised
// dispatch throughput scales with cores: ns/op should hold roughly
// constant (scaling) rather than grow with the core count (serialising).
func BenchmarkAspectAdvisedScaling(b *testing.B) {
	maxProcs := runtime.GOMAXPROCS(0)
	for procs := 1; procs <= maxProcs; procs *= 2 {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			fn := advisedWeaver(b)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := fn(); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

func benchRequestsParallel(b *testing.B, monitored bool) {
	container := benchStack(b, monitored)
	var sessions atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		session := fmt.Sprintf("bench-%d", sessions.Add(1))
		for pb.Next() {
			req := servlet.AcquireRequest()
			req.Interaction = tpcw.CompHome
			req.SessionID = session
			req.SetInt64Param("I_ID", 5)
			resp, _ := container.Invoke(req)
			if !resp.OK() {
				b.Fatalf("request failed: %v", resp.Err)
			}
			servlet.ReleaseRequest(req)
			servlet.ReleaseResponse(resp)
		}
	})
}

// BenchmarkRequestUnmonitoredParallel measures concurrent home-page
// requests through the container with no monitoring attached.
func BenchmarkRequestUnmonitoredParallel(b *testing.B) { benchRequestsParallel(b, false) }

// BenchmarkRequestMonitoredParallel measures the same concurrent requests
// with the full framework attached (AC + agents): the whole
// weaver → metrics → manager recording pipeline under contention.
func BenchmarkRequestMonitoredParallel(b *testing.B) { benchRequestsParallel(b, true) }

// BenchmarkRequestMonitoredScaling sweeps GOMAXPROCS over the monitored
// request path — the end-to-end variant of BenchmarkAspectAdvisedScaling.
func BenchmarkRequestMonitoredScaling(b *testing.B) {
	maxProcs := runtime.GOMAXPROCS(0)
	for procs := 1; procs <= maxProcs; procs *= 2 {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			benchRequestsParallel(b, true)
		})
	}
}
